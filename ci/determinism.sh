#!/usr/bin/env bash
# Shared determinism harness for the CI legs that all follow the same
# shape: build one release binary from nostop-bench, run it with
# NOSTOP_JOBS=1 and NOSTOP_JOBS=8, and byte-diff the stdout (and, when
# the artifact itself is deterministic, the written file). Optional
# --probe VAR=VAL passes add a third run under a kill-switch env var
# whose stdout must also match the serial run.
#
# Usage: ci/determinism.sh <bin> [--artifact <ext>] [--diff-artifact]
#                                [--probe VAR=VAL]...
#
#   <bin>            nostop-bench binary name (fig6, chaos_report, ...)
#   --artifact <ext> the binary takes an output path as its first
#                    positional argument; write it under /tmp with <ext>
#   --diff-artifact  also byte-diff the serial vs parallel artifact
#                    (omit for reports that embed wall times)
#   --probe VAR=VAL  extra run with VAR=VAL set; stdout must match serial
#
# The superbatch leg stays bespoke: its differential is fast-vs-exact
# engine semantics, not a worker-count replay.
set -euo pipefail

bin=$1
shift
artifact_ext=""
diff_artifact=0
probes=()
while [ $# -gt 0 ]; do
  case "$1" in
    --artifact)
      artifact_ext=$2
      shift 2
      ;;
    --diff-artifact)
      diff_artifact=1
      shift
      ;;
    --probe)
      probes+=("$2")
      shift 2
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

cargo build --release -p nostop-bench --bin "$bin"

out="/tmp/determinism-$bin"
mkdir -p "$out"

run() { # run <label> <env assignments...>
  local label=$1
  shift
  local args=()
  if [ -n "$artifact_ext" ]; then
    args+=("$out/$label.$artifact_ext")
  fi
  env "$@" "./target/release/$bin" "${args[@]}" >"$out/$label.txt"
}

run serial NOSTOP_JOBS=1
run parallel NOSTOP_JOBS=8
diff "$out/serial.txt" "$out/parallel.txt"
if [ "$diff_artifact" = 1 ] && [ -n "$artifact_ext" ]; then
  diff "$out/serial.$artifact_ext" "$out/parallel.$artifact_ext"
fi
for probe in ${probes[@]+"${probes[@]}"}; do
  label="probe-${probe%%=*}"
  run "$label" "$probe"
  diff "$out/serial.txt" "$out/$label.txt"
done
echo "determinism: $bin output byte-identical across runs"
