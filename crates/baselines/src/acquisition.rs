//! Acquisition functions for Bayesian optimization.
//!
//! Expected Improvement for minimization:
//!
//! ```text
//! EI(x) = (y* − μ(x) − ξ) Φ(z) + σ(x) φ(z),   z = (y* − μ(x) − ξ) / σ(x)
//! ```
//!
//! where `y*` is the incumbent (best observed) value and ξ a small
//! exploration margin. Φ/φ are computed via an Abramowitz–Stegun erf
//! approximation — accurate to ~1.5e-7, far below measurement noise.

/// Standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Expected improvement (minimization) at a point with posterior
/// `(mean, variance)` given incumbent `best` and exploration margin `xi`.
pub fn expected_improvement(mean: f64, variance: f64, best: f64, xi: f64) -> f64 {
    // Guard on *variance*, before the sqrt: a denormal σ² squeezes through
    // a σ-based check yet still produces a subnormal divisor for z, turning
    // EI into ±inf·0 noise. Anything below 1e-18 (σ < 1e-9, ten orders
    // under the posterior's 1e-12 variance floor) deterministically takes
    // the zero-variance branch instead.
    let variance = variance.max(0.0);
    if variance < 1e-18 {
        return (best - mean - xi).max(0.0);
    }
    let sigma = variance.sqrt();
    let improvement = best - mean - xi;
    let z = improvement / sigma;
    (improvement * normal_cdf(z) + sigma * normal_pdf(z)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_known_values() {
        // erf(0) = 0, erf(1) ≈ 0.8427008, erf(−1) = −erf(1), erf(∞) → 1.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        let mut prev = 0.0;
        for i in -40..=40 {
            let c = normal_cdf(i as f64 / 10.0);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn ei_prefers_low_mean_at_equal_uncertainty() {
        let best = 10.0;
        let a = expected_improvement(8.0, 1.0, best, 0.0);
        let b = expected_improvement(9.5, 1.0, best, 0.0);
        assert!(a > b);
    }

    #[test]
    fn ei_prefers_uncertainty_at_equal_mean() {
        let best = 10.0;
        let certain = expected_improvement(10.5, 0.01, best, 0.0);
        let uncertain = expected_improvement(10.5, 4.0, best, 0.0);
        assert!(uncertain > certain);
    }

    #[test]
    fn ei_is_nonnegative_and_zero_when_hopeless() {
        assert_eq!(expected_improvement(100.0, 0.0, 10.0, 0.0), 0.0);
        for mean in [0.0, 5.0, 20.0] {
            for var in [0.0, 1.0, 10.0] {
                assert!(expected_improvement(mean, var, 10.0, 0.01) >= 0.0);
            }
        }
    }

    #[test]
    fn tiny_variance_routes_through_zero_variance_branch() {
        // σ² = 0 and σ² = 1e-300 (subnormal σ territory) must hit the
        // deterministic branch: EI is exactly the clamped improvement.
        for var in [0.0, 1e-300] {
            assert_eq!(expected_improvement(8.0, var, 10.0, 0.5), 1.5);
            assert_eq!(expected_improvement(12.0, var, 10.0, 0.0), 0.0);
        }
        // Negative variance (floating-point cancellation upstream) clamps
        // into the same branch rather than producing NaN.
        assert_eq!(expected_improvement(8.0, -1e-9, 10.0, 0.0), 2.0);
        // σ² = 1e-18 sits exactly on the threshold: the analytic branch,
        // with σ = 1e-9 still a normal double, and a finite result that the
        // deterministic branch bounds from below.
        let at_threshold = expected_improvement(8.0, 1e-18, 10.0, 0.0);
        assert!(at_threshold.is_finite());
        assert!((at_threshold - 2.0).abs() < 1e-9, "{at_threshold}");
    }

    #[test]
    fn xi_margin_discounts_marginal_improvements() {
        let no_margin = expected_improvement(9.9, 0.01, 10.0, 0.0);
        let margin = expected_improvement(9.9, 0.01, 10.0, 0.5);
        assert!(no_margin > margin);
    }
}
