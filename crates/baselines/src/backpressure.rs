//! Spark Streaming's back-pressure rate controller.
//!
//! The comparator named in the paper's abstract. Spark's
//! `PIDRateEstimator` does not touch batch interval or executors — it
//! *throttles ingestion* so that processing keeps up, trading data
//! freshness (records queue in Kafka) for stability. The implementation
//! mirrors `org.apache.spark.streaming.scheduler.rate.PIDRateEstimator`,
//! including its default gains (proportional 1.0, integral 0.2,
//! derivative 0.0) and minimum rate (100 records/s).

/// A PID estimator for the per-batch ingestion rate limit.
#[derive(Debug, Clone)]
pub struct PidRateEstimator {
    /// Batch interval in seconds (Spark passes it in milliseconds).
    batch_interval_s: f64,
    proportional: f64,
    integral: f64,
    derivative: f64,
    min_rate: f64,
    /// Time of the latest update, seconds.
    latest_time_s: f64,
    /// The latest computed rate (records/s); `None` until the first update.
    latest_rate: Option<f64>,
    latest_error: f64,
}

impl PidRateEstimator {
    /// Spark's defaults for a given batch interval.
    pub fn spark_default(batch_interval_s: f64) -> Self {
        PidRateEstimator::new(batch_interval_s, 1.0, 0.2, 0.0, 100.0)
    }

    /// Full constructor; panics on non-positive interval or negative gains.
    pub fn new(
        batch_interval_s: f64,
        proportional: f64,
        integral: f64,
        derivative: f64,
        min_rate: f64,
    ) -> Self {
        assert!(batch_interval_s > 0.0, "batch interval must be positive");
        assert!(
            proportional >= 0.0 && integral >= 0.0 && derivative >= 0.0,
            "PID gains must be non-negative"
        );
        assert!(min_rate > 0.0, "minimum rate must be positive");
        PidRateEstimator {
            batch_interval_s,
            proportional,
            integral,
            derivative,
            min_rate,
            latest_time_s: -1.0,
            latest_rate: None,
            latest_error: 0.0,
        }
    }

    /// The current rate estimate, if one has been computed.
    pub fn latest_rate(&self) -> Option<f64> {
        self.latest_rate
    }

    /// Update the batch interval (NoStop-style deployments never call
    /// this; it exists for completeness).
    pub fn set_batch_interval(&mut self, batch_interval_s: f64) {
        assert!(batch_interval_s > 0.0);
        self.batch_interval_s = batch_interval_s;
    }

    /// Compute the new rate limit from one completed batch — the port of
    /// `PIDRateEstimator.compute`.
    ///
    /// * `time_s` — batch completion time (must increase across calls);
    /// * `elements` — records processed in the batch;
    /// * `processing_delay_s` — the batch's processing time;
    /// * `scheduling_delay_s` — the batch's queue wait.
    ///
    /// Returns `Some(new_rate)` when an update is produced (valid inputs,
    /// monotonic time), like Spark's `Option[Double]`.
    pub fn compute(
        &mut self,
        time_s: f64,
        elements: u64,
        processing_delay_s: f64,
        scheduling_delay_s: f64,
    ) -> Option<f64> {
        if time_s <= self.latest_time_s || elements == 0 || processing_delay_s <= 0.0 {
            return None;
        }
        let delay_since_update = time_s - self.latest_time_s;
        // Per-second processing speed of this batch.
        let processing_rate = elements as f64 / processing_delay_s;
        let latest_rate = match self.latest_rate {
            Some(r) => r,
            None => {
                // First valid batch seeds the estimator without an update,
                // exactly like Spark's `firstRun` handling.
                self.latest_time_s = time_s;
                self.latest_rate = Some(processing_rate);
                self.latest_error = 0.0;
                return Some(processing_rate.max(self.min_rate));
            }
        };
        let error = latest_rate - processing_rate;
        // The integral term: how many elements the queue holds, expressed
        // as a rate over the batch interval.
        let historical_error = scheduling_delay_s * processing_rate / self.batch_interval_s;
        let d_error = (error - self.latest_error) / delay_since_update;
        let new_rate = (latest_rate
            - self.proportional * error
            - self.integral * historical_error
            - self.derivative * d_error)
            .max(self.min_rate);
        self.latest_time_s = time_s;
        self.latest_rate = Some(new_rate);
        self.latest_error = error;
        Some(new_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> PidRateEstimator {
        PidRateEstimator::spark_default(10.0)
    }

    #[test]
    fn first_batch_seeds_the_rate() {
        let mut e = estimator();
        assert_eq!(e.latest_rate(), None);
        let r = e.compute(10.0, 50_000, 5.0, 0.0).unwrap();
        assert_eq!(r, 10_000.0); // 50k records / 5s
        assert_eq!(e.latest_rate(), Some(10_000.0));
    }

    #[test]
    fn overload_reduces_the_rate() {
        let mut e = estimator();
        e.compute(10.0, 100_000, 10.0, 0.0); // seeds at 10k/s
                                             // Next batch: processing slowed to 5k/s with queueing.
        let r = e.compute(25.0, 75_000, 15.0, 5.0).unwrap();
        assert!(r < 10_000.0, "rate must drop under overload: {r}");
    }

    #[test]
    fn scheduling_delay_drives_the_integral_term() {
        let mut quiet = estimator();
        quiet.compute(10.0, 100_000, 10.0, 0.0);
        let r_no_queue = quiet.compute(20.0, 100_000, 10.0, 0.0).unwrap();

        let mut queued = estimator();
        queued.compute(10.0, 100_000, 10.0, 0.0);
        let r_queue = queued.compute(20.0, 100_000, 10.0, 8.0).unwrap();
        assert!(
            r_queue < r_no_queue,
            "queued system must throttle harder: {r_queue} vs {r_no_queue}"
        );
    }

    #[test]
    fn rate_never_falls_below_minimum() {
        let mut e = estimator();
        e.compute(10.0, 1_000, 10.0, 0.0);
        // Catastrophic overload for many batches.
        let mut r = f64::MAX;
        for i in 1..50 {
            if let Some(new) = e.compute(10.0 + i as f64 * 10.0, 1_000, 100.0, 500.0) {
                r = new;
            }
        }
        assert_eq!(r, 100.0, "clamped at Spark's minRate");
    }

    #[test]
    fn invalid_inputs_produce_no_update() {
        let mut e = estimator();
        e.compute(10.0, 1_000, 1.0, 0.0);
        assert!(e.compute(5.0, 1_000, 1.0, 0.0).is_none(), "time went back");
        assert!(e.compute(20.0, 0, 1.0, 0.0).is_none(), "empty batch");
        assert!(e.compute(30.0, 1_000, 0.0, 0.0).is_none(), "zero delay");
    }

    #[test]
    fn steady_state_converges_to_processing_rate() {
        let mut e = estimator();
        // System processes exactly 8k/s, no queueing.
        let mut t = 10.0;
        e.compute(t, 80_000, 10.0, 0.0);
        let mut r = 0.0;
        for _ in 0..20 {
            t += 10.0;
            r = e.compute(t, 80_000, 10.0, 0.0).unwrap();
        }
        assert!((r - 8_000.0).abs() < 50.0, "steady rate {r}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = PidRateEstimator::spark_default(0.0);
    }
}
