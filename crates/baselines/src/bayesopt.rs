//! The Bayesian-optimization comparator (§6.4, Fig. 8).
//!
//! Standard GP-EI loop over the same scaled configuration space NoStop
//! searches: a handful of random initial probes, then each iteration fits
//! the GP to all observations and proposes the candidate (from a random
//! pool) maximizing Expected Improvement. Each proposal costs **one**
//! system reconfiguration + measurement window — half of SPSA's per-
//! iteration cost — but BO typically needs many more iterations, which is
//! exactly the search-time gap Fig. 8 reports. Model fitting itself rides
//! the incremental GP fast path (O(n²) per observation, batched posterior
//! scoring of the candidate pool), so the comparison measures the search
//! strategies rather than the surrogate's refit cost.

use crate::acquisition::expected_improvement;
use crate::gp::{GaussianProcess, Kernel};
use crate::tuner::{BestTracker, Tuner};
use nostop_core::space::ConfigSpace;
use nostop_simcore::SimRng;

/// GP-EI Bayesian optimization over a [`ConfigSpace`].
pub struct BayesOpt {
    space: ConfigSpace,
    gp: GaussianProcess,
    rng: SimRng,
    tracker: BestTracker,
    /// Random probes before the model drives the search.
    n_initial: usize,
    /// Candidate pool size per EI maximization.
    n_candidates: usize,
    /// EI exploration margin.
    xi: f64,
    /// The proposal awaiting an observation (scaled space).
    pending_scaled: Option<Vec<f64>>,
}

impl BayesOpt {
    /// A tuner over `space` with default kernel and budget-free operation.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        BayesOpt {
            space,
            gp: GaussianProcess::new(Kernel::default()),
            rng: SimRng::seed_from_u64(seed),
            tracker: BestTracker::default(),
            n_initial: 5,
            n_candidates: 256,
            xi: 0.1,
            pending_scaled: None,
        }
    }

    /// Override the number of random initial probes.
    pub fn with_initial_probes(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one initial probe");
        self.n_initial = n;
        self
    }

    /// Override the GP kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.gp = GaussianProcess::new(kernel);
        self
    }

    /// Force the surrogate's update mode (incremental fast path vs
    /// full-refit probe), overriding `NOSTOP_NO_GP_INCREMENTAL`. Must be
    /// applied before any observations; used by differential tests and
    /// the tuner arena's in-binary mode-equivalence gate.
    pub fn with_gp_incremental(mut self, incremental: bool) -> Self {
        assert!(self.gp.is_empty(), "set the GP mode before observing");
        self.gp = self.gp.with_incremental(incremental);
        self
    }

    fn random_scaled(&mut self) -> Vec<f64> {
        (0..self.space.dim())
            .map(|_| self.rng.uniform(self.space.scaled_lo, self.space.scaled_hi))
            .collect()
    }

    fn propose_scaled(&mut self) -> Vec<f64> {
        if self.gp.len() < self.n_initial {
            return self.random_scaled();
        }
        let best = self.gp.best_y().expect("observations exist");
        // Draw the whole candidate pool up front, then score it with one
        // batched posterior pass — a single forward-solve sweep over the
        // factor instead of `n_candidates` independent triangular solves.
        // The posteriors (and hence the argmax) are bitwise identical to
        // the one-at-a-time loop this replaces.
        let mut best_candidate = self.random_scaled();
        let candidates: Vec<Vec<f64>> = (0..self.n_candidates)
            .map(|_| self.random_scaled())
            .collect();
        let posteriors = self.gp.posterior_batch(&candidates);
        let mut best_ei = f64::NEG_INFINITY;
        for (c, (mean, var)) in candidates.into_iter().zip(posteriors) {
            let ei = expected_improvement(mean, var, best, self.xi);
            if ei > best_ei {
                best_ei = ei;
                best_candidate = c;
            }
        }
        best_candidate
    }
}

impl Tuner for BayesOpt {
    fn name(&self) -> &'static str {
        "bayesian-optimization"
    }

    fn propose(&mut self) -> Vec<f64> {
        let scaled = self.propose_scaled();
        let physical = self.space.to_physical(&scaled);
        // Store the *quantized* point: the system runs the quantized
        // configuration, so the model must be trained on it.
        self.pending_scaled = Some(self.space.to_scaled(&physical));
        physical
    }

    fn observe(&mut self, physical: &[f64], objective: f64) {
        self.tracker.observe(physical, objective);
        let scaled = self
            .pending_scaled
            .take()
            .unwrap_or_else(|| self.space.to_scaled(physical));
        if objective.is_finite() {
            self.gp.add(scaled, objective);
        }
    }

    fn best(&self) -> Option<(Vec<f64>, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> usize {
        self.tracker.evaluations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noisy 2-D test objective over the paper space with minimum at
    /// interval ≈ 8 s, executors = 16.
    fn objective(rng: &mut SimRng, physical: &[f64]) -> f64 {
        let (i, e) = (physical[0], physical[1]);
        (i - 8.0).powi(2) / 10.0 + (e - 16.0).powi(2) / 20.0 + 8.0 + rng.normal(0.0, 0.2)
    }

    #[test]
    fn finds_a_near_optimal_configuration() {
        let mut bo = BayesOpt::new(ConfigSpace::paper_default(), 3);
        let mut noise = SimRng::seed_from_u64(9);
        for _ in 0..40 {
            let p = bo.propose();
            let y = objective(&mut noise, &p);
            bo.observe(&p, y);
        }
        let (cfg, obj) = bo.best().expect("40 observations");
        assert!((cfg[0] - 8.0).abs() < 4.0, "interval near 8: {cfg:?}");
        assert!((cfg[1] - 16.0).abs() < 6.0, "executors near 16: {cfg:?}");
        assert!(obj < 10.5, "objective near the floor of 8: {obj}");
        assert_eq!(bo.evaluations(), 40);
    }

    #[test]
    fn proposals_respect_physical_bounds_and_quantization() {
        let mut bo = BayesOpt::new(ConfigSpace::paper_default(), 1);
        for i in 0..30 {
            let p = bo.propose();
            assert!((1.0..=40.0).contains(&p[0]), "{p:?}");
            assert!((1.0..=20.0).contains(&p[1]), "{p:?}");
            assert_eq!(p[1].fract(), 0.0, "executors quantized: {p:?}");
            bo.observe(&p, 10.0 + i as f64 * 0.1);
        }
    }

    #[test]
    fn model_phase_beats_random_phase_on_smooth_objective() {
        let mut bo = BayesOpt::new(ConfigSpace::paper_default(), 7).with_initial_probes(5);
        let mut noise = SimRng::seed_from_u64(2);
        let mut random_phase = Vec::new();
        let mut model_phase = Vec::new();
        for i in 0..35 {
            let p = bo.propose();
            let y = objective(&mut noise, &p);
            bo.observe(&p, y);
            if i < 5 {
                random_phase.push(y);
            } else if i >= 25 {
                model_phase.push(y);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&model_phase) < mean(&random_phase),
            "late proposals should be better: {} vs {}",
            mean(&model_phase),
            mean(&random_phase)
        );
    }

    #[test]
    fn non_finite_observation_does_not_poison_the_model() {
        let mut bo = BayesOpt::new(ConfigSpace::paper_default(), 5);
        let p = bo.propose();
        bo.observe(&p, f64::NAN);
        // Still functional afterwards.
        let p2 = bo.propose();
        bo.observe(&p2, 5.0);
        assert_eq!(bo.best().unwrap().1, 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut bo = BayesOpt::new(ConfigSpace::paper_default(), 11);
            let mut ys = Vec::new();
            for i in 0..15 {
                let p = bo.propose();
                let y = p[0] + p[1] + (i % 3) as f64;
                bo.observe(&p, y);
                ys.push(p);
            }
            ys
        };
        assert_eq!(run(), run());
    }
}
