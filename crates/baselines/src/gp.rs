//! Gaussian-process regression with an RBF kernel.
//!
//! The surrogate model behind the Bayesian-optimization comparator.
//! Observations live in the *scaled* configuration space (every dimension
//! in the same `[1, 20]` range — the same normalization NoStop uses), so a
//! single isotropic length scale is appropriate. Targets are centered; the
//! posterior reverts to the prior mean away from data.

use crate::linalg::{cholesky_solve, dot, solve_lower, Matrix};

/// RBF (squared-exponential) kernel hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    /// Signal variance σ_f².
    pub signal_variance: f64,
    /// Length scale ℓ (isotropic, scaled space).
    pub length_scale: f64,
    /// Observation noise variance σ_n².
    pub noise_variance: f64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel {
            signal_variance: 25.0,
            length_scale: 4.0,
            noise_variance: 1.0,
        }
    }
}

impl Kernel {
    /// Kernel value `k(a, b)`.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
        self.signal_variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

/// A Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    y_mean: f64,
    /// Cholesky factor of `K + σ_n² I`.
    chol: Option<Matrix>,
    /// `(K + σ_n² I)⁻¹ (y − ȳ)`.
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// An empty GP with the given kernel.
    pub fn new(kernel: Kernel) -> Self {
        GaussianProcess {
            kernel,
            x: Vec::new(),
            y: Vec::new(),
            y_mean: 0.0,
            chol: None,
            alpha: Vec::new(),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The smallest observed target, if any.
    pub fn best_y(&self) -> Option<f64> {
        self.y.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Add an observation and refit.
    pub fn add(&mut self, x: Vec<f64>, y: f64) {
        assert!(y.is_finite(), "target must be finite");
        if let Some(first) = self.x.first() {
            assert_eq!(first.len(), x.len(), "dimension mismatch");
        }
        self.x.push(x);
        self.y.push(y);
        self.refit();
    }

    fn refit(&mut self) {
        let n = self.x.len();
        self.y_mean = self.y.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = self.y.iter().map(|v| v - self.y_mean).collect();
        // Build K + σ_n² I with a small jitter for numerical safety.
        let jitter = 1e-8 * self.kernel.signal_variance.max(1.0);
        let k = Matrix::from_fn(n, |i, j| {
            self.kernel.eval(&self.x[i], &self.x[j])
                + if i == j {
                    self.kernel.noise_variance + jitter
                } else {
                    0.0
                }
        });
        let chol = k
            .cholesky()
            .expect("kernel matrix with noise must be positive definite");
        self.alpha = cholesky_solve(&chol, &centered);
        self.chol = Some(chol);
    }

    /// Posterior mean and variance at `x`.
    ///
    /// With no observations this is the prior: `(0-centered mean, σ_f²)`.
    pub fn posterior(&self, x: &[f64]) -> (f64, f64) {
        let Some(chol) = &self.chol else {
            return (self.y_mean, self.kernel.signal_variance);
        };
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean = self.y_mean + dot(&k_star, &self.alpha);
        let v = solve_lower(chol, &k_star);
        let var = (self.kernel.eval(x, x) - dot(&v, &v)).max(1e-12);
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp_with(points: &[(&[f64], f64)]) -> GaussianProcess {
        let mut gp = GaussianProcess::new(Kernel {
            signal_variance: 4.0,
            length_scale: 2.0,
            noise_variance: 1e-4,
        });
        for (x, y) in points {
            gp.add(x.to_vec(), *y);
        }
        gp
    }

    #[test]
    fn empty_gp_returns_prior() {
        let gp = GaussianProcess::new(Kernel::default());
        let (mean, var) = gp.posterior(&[10.0, 10.0]);
        assert_eq!(mean, 0.0);
        assert_eq!(var, Kernel::default().signal_variance);
        assert!(gp.is_empty());
        assert_eq!(gp.best_y(), None);
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let gp = gp_with(&[(&[1.0, 1.0], 3.0), (&[5.0, 5.0], 7.0), (&[9.0, 2.0], 1.0)]);
        for (x, y) in [(&[1.0, 1.0], 3.0), (&[5.0, 5.0], 7.0), (&[9.0, 2.0], 1.0)] {
            let (mean, var) = gp.posterior(x);
            assert!((mean - y).abs() < 0.05, "mean {mean} vs {y}");
            assert!(var < 0.05, "var {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = gp_with(&[(&[5.0, 5.0], 2.0)]);
        let (_, var_near) = gp.posterior(&[5.5, 5.0]);
        let (_, var_far) = gp.posterior(&[19.0, 19.0]);
        assert!(var_far > var_near);
        // Far from data the posterior reverts to the (centered) prior mean.
        let (mean_far, _) = gp.posterior(&[19.0, 19.0]);
        assert!((mean_far - 2.0).abs() < 0.1, "reverts to mean: {mean_far}");
    }

    #[test]
    fn posterior_mean_smoothly_interpolates() {
        let gp = gp_with(&[(&[0.0], 0.0), (&[4.0], 4.0)]);
        let (mid, _) = gp.posterior(&[2.0]);
        assert!(mid > 0.5 && mid < 3.5, "between endpoints: {mid}");
    }

    #[test]
    fn best_y_tracks_minimum() {
        let gp = gp_with(&[(&[1.0], 5.0), (&[2.0], 3.0), (&[3.0], 9.0)]);
        assert_eq!(gp.best_y(), Some(3.0));
        assert_eq!(gp.len(), 3);
    }

    #[test]
    fn handles_many_points_without_numerical_collapse() {
        let mut gp = GaussianProcess::new(Kernel::default());
        for i in 0..120 {
            let x = (i % 20) as f64 + 1.0;
            let y = (x - 10.0).powi(2) / 5.0 + ((i * 7) % 3) as f64 * 0.1;
            gp.add(vec![x, 10.0], y);
        }
        // Posterior at the optimum should be lower than at the edge.
        let (m_opt, _) = gp.posterior(&[10.0, 10.0]);
        let (m_edge, _) = gp.posterior(&[1.0, 10.0]);
        assert!(m_opt < m_edge);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_target_rejected() {
        let mut gp = GaussianProcess::new(Kernel::default());
        gp.add(vec![1.0], f64::INFINITY);
    }
}
