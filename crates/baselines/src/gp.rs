//! Gaussian-process regression with an RBF kernel.
//!
//! The surrogate model behind the Bayesian-optimization comparator.
//! Observations live in the *scaled* configuration space (every dimension
//! in the same `[1, 20]` range — the same normalization NoStop uses), so a
//! single isotropic length scale is appropriate. Targets are centered; the
//! posterior reverts to the prior mean away from data.
//!
//! # Fast path
//!
//! Because the Gram matrix depends only on the inputs, adding an
//! observation only *borders* `K + σ_n² I` with one new column — so
//! [`GaussianProcess::add`] extends the existing Cholesky factor with a
//! single forward solve plus diagonal update
//! ([`Matrix::extend_cholesky`], O(n²)) instead of refactoring from
//! scratch (O(n³)). The new point's kernel column is computed once and
//! reused for both the factor extension and the Gram border (kernel-row
//! cache). `alpha` *is* re-solved every add — recentering the targets
//! shifts every entry of `y − ȳ` — but that is two triangular solves,
//! still O(n²).
//!
//! Setting `NOSTOP_NO_GP_INCREMENTAL=1` (or
//! [`GaussianProcess::with_incremental`]`(false)`) routes every add
//! through the full-refit probe path. The two paths share `linalg`'s
//! single dot kernel, making their factors — and therefore posteriors —
//! bitwise identical; the differential suite in
//! `crates/baselines/tests/gp_differential.rs` pins this.

use crate::linalg::{cholesky_solve_into, dot, solve_lower_in_place, solve_lower_multi, Matrix};

/// True when the `NOSTOP_NO_GP_INCREMENTAL=1` kill switch is set — new GPs
/// then fit via the full O(n³) refit path so CI can differentially compare
/// it against the incremental path.
fn incremental_disabled_by_env() -> bool {
    std::env::var_os("NOSTOP_NO_GP_INCREMENTAL").is_some_and(|v| v == "1")
}

/// RBF (squared-exponential) kernel hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    /// Signal variance σ_f².
    pub signal_variance: f64,
    /// Length scale ℓ (isotropic, scaled space).
    pub length_scale: f64,
    /// Observation noise variance σ_n².
    pub noise_variance: f64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel {
            signal_variance: 25.0,
            length_scale: 4.0,
            noise_variance: 1.0,
        }
    }
}

impl Kernel {
    /// Kernel value `k(a, b)`.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
        self.signal_variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

/// A Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    y_mean: f64,
    /// Cholesky factor of `K + (σ_n² + jitter) I`; dimension `x.len()`.
    chol: Matrix,
    /// `(K + σ_n² I)⁻¹ (y − ȳ)`.
    alpha: Vec<f64>,
    /// Incremental rank-1 factor updates (default) vs full refit (probe).
    incremental: bool,
    /// Kernel-row cache: the newest point's kernel column, computed once
    /// per add and fed straight into the factor extension.
    kcol: Vec<f64>,
    /// Scratch: centered targets, reused across fits.
    centered: Vec<f64>,
    /// Scratch: Gram matrix for the full-refit probe path.
    gram: Matrix,
}

impl GaussianProcess {
    /// An empty GP with the given kernel.
    pub fn new(kernel: Kernel) -> Self {
        GaussianProcess {
            kernel,
            x: Vec::new(),
            y: Vec::new(),
            y_mean: 0.0,
            chol: Matrix::zeros(0),
            alpha: Vec::new(),
            incremental: !incremental_disabled_by_env(),
            kcol: Vec::new(),
            centered: Vec::new(),
            gram: Matrix::zeros(0),
        }
    }

    /// Select the fitting path explicitly (tests, benches, probes). The
    /// fitted model is bitwise identical either way; only the cost differs.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Whether adds go through the incremental fast path.
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The smallest observed target, if any.
    pub fn best_y(&self) -> Option<f64> {
        self.y.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    fn jitter(&self) -> f64 {
        1e-8 * self.kernel.signal_variance.max(1.0)
    }

    /// Add an observation and refit.
    pub fn add(&mut self, x: Vec<f64>, y: f64) {
        assert!(y.is_finite(), "target must be finite");
        if let Some(first) = self.x.first() {
            assert_eq!(first.len(), x.len(), "dimension mismatch");
        }
        if self.incremental {
            // Kernel-row cache: the new point's column, computed once.
            self.kcol.clear();
            for xi in &self.x {
                self.kcol.push(self.kernel.eval(xi, &x));
            }
            let diag = self.kernel.eval(&x, &x) + self.kernel.noise_variance + self.jitter();
            self.chol.reserve(self.x.len() + 1);
            if !self.chol.extend_cholesky(&self.kcol, diag) {
                panic!("kernel matrix with noise must be positive definite");
            }
            self.x.push(x);
            self.y.push(y);
            self.resolve_alpha();
        } else {
            self.x.push(x);
            self.y.push(y);
            self.refit();
        }
    }

    /// Recenter the targets and re-solve `alpha` from the current factor.
    fn resolve_alpha(&mut self) {
        let n = self.x.len();
        self.y_mean = self.y.iter().sum::<f64>() / n as f64;
        let y_mean = self.y_mean;
        self.centered.clear();
        self.centered.extend(self.y.iter().map(|v| v - y_mean));
        cholesky_solve_into(&self.chol, &self.centered, &mut self.alpha);
    }

    /// Probe path: rebuild the full Gram matrix and refactor from scratch
    /// into reused scratch storage.
    fn refit(&mut self) {
        let n = self.x.len();
        let jitter = self.jitter();
        self.gram.n = n;
        self.gram.data.clear();
        self.gram.data.resize(n * n, 0.0);
        for (i, xi) in self.x.iter().enumerate() {
            for (j, xj) in self.x.iter().enumerate() {
                self.gram.data[i * n + j] = self.kernel.eval(xi, xj)
                    + if i == j {
                        self.kernel.noise_variance + jitter
                    } else {
                        0.0
                    };
            }
        }
        if !self.gram.cholesky_into(&mut self.chol) {
            panic!("kernel matrix with noise must be positive definite");
        }
        self.resolve_alpha();
    }

    /// Posterior mean and variance at `x`.
    ///
    /// With no observations this is the prior: `(0-centered mean, σ_f²)`.
    pub fn posterior(&self, x: &[f64]) -> (f64, f64) {
        if self.x.is_empty() {
            return (self.y_mean, self.kernel.signal_variance);
        }
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean = self.y_mean + dot(&k_star, &self.alpha);
        let mut v = k_star;
        solve_lower_in_place(&self.chol, &mut v);
        let var = (self.kernel.eval(x, x) - dot(&v, &v)).max(1e-12);
        (mean, var)
    }

    /// Posterior mean and variance at every candidate, sharing one
    /// multi-RHS forward-solve sweep over the factor instead of one
    /// triangular solve per candidate. Bitwise identical to calling
    /// [`GaussianProcess::posterior`] per point.
    pub fn posterior_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if self.x.is_empty() {
            return xs
                .iter()
                .map(|_| (self.y_mean, self.kernel.signal_variance))
                .collect();
        }
        let n = self.x.len();
        let count = xs.len();
        // Candidate-major block of k* columns.
        let mut work = vec![0.0; count * n];
        for (block, xc) in work.chunks_exact_mut(n).zip(xs) {
            for (slot, xi) in block.iter_mut().zip(&self.x) {
                *slot = self.kernel.eval(xi, xc);
            }
        }
        let mut out: Vec<(f64, f64)> = work
            .chunks_exact(n)
            .map(|k_star| (self.y_mean + dot(k_star, &self.alpha), 0.0))
            .collect();
        solve_lower_multi(&self.chol, &mut work, count);
        for ((post, v), xc) in out.iter_mut().zip(work.chunks_exact(n)).zip(xs) {
            post.1 = (self.kernel.eval(xc, xc) - dot(v, v)).max(1e-12);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp_with(points: &[(&[f64], f64)]) -> GaussianProcess {
        let mut gp = GaussianProcess::new(Kernel {
            signal_variance: 4.0,
            length_scale: 2.0,
            noise_variance: 1e-4,
        });
        for (x, y) in points {
            gp.add(x.to_vec(), *y);
        }
        gp
    }

    #[test]
    fn empty_gp_returns_prior() {
        let gp = GaussianProcess::new(Kernel::default());
        let (mean, var) = gp.posterior(&[10.0, 10.0]);
        assert_eq!(mean, 0.0);
        assert_eq!(var, Kernel::default().signal_variance);
        assert!(gp.is_empty());
        assert_eq!(gp.best_y(), None);
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let gp = gp_with(&[(&[1.0, 1.0], 3.0), (&[5.0, 5.0], 7.0), (&[9.0, 2.0], 1.0)]);
        for (x, y) in [(&[1.0, 1.0], 3.0), (&[5.0, 5.0], 7.0), (&[9.0, 2.0], 1.0)] {
            let (mean, var) = gp.posterior(x);
            assert!((mean - y).abs() < 0.05, "mean {mean} vs {y}");
            assert!(var < 0.05, "var {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = gp_with(&[(&[5.0, 5.0], 2.0)]);
        let (_, var_near) = gp.posterior(&[5.5, 5.0]);
        let (_, var_far) = gp.posterior(&[19.0, 19.0]);
        assert!(var_far > var_near);
        // Far from data the posterior reverts to the (centered) prior mean.
        let (mean_far, _) = gp.posterior(&[19.0, 19.0]);
        assert!((mean_far - 2.0).abs() < 0.1, "reverts to mean: {mean_far}");
    }

    #[test]
    fn posterior_mean_smoothly_interpolates() {
        let gp = gp_with(&[(&[0.0], 0.0), (&[4.0], 4.0)]);
        let (mid, _) = gp.posterior(&[2.0]);
        assert!(mid > 0.5 && mid < 3.5, "between endpoints: {mid}");
    }

    #[test]
    fn best_y_tracks_minimum() {
        let gp = gp_with(&[(&[1.0], 5.0), (&[2.0], 3.0), (&[3.0], 9.0)]);
        assert_eq!(gp.best_y(), Some(3.0));
        assert_eq!(gp.len(), 3);
    }

    #[test]
    fn handles_many_points_without_numerical_collapse() {
        let mut gp = GaussianProcess::new(Kernel::default());
        for i in 0..120 {
            let x = (i % 20) as f64 + 1.0;
            let y = (x - 10.0).powi(2) / 5.0 + ((i * 7) % 3) as f64 * 0.1;
            gp.add(vec![x, 10.0], y);
        }
        // Posterior at the optimum should be lower than at the edge.
        let (m_opt, _) = gp.posterior(&[10.0, 10.0]);
        let (m_edge, _) = gp.posterior(&[1.0, 10.0]);
        assert!(m_opt < m_edge);
    }

    #[test]
    fn incremental_and_refit_posteriors_are_bitwise_identical() {
        let mut fast = GaussianProcess::new(Kernel::default()).with_incremental(true);
        let mut probe = GaussianProcess::new(Kernel::default()).with_incremental(false);
        for i in 0..40 {
            let x = vec![(i % 13) as f64 + 1.0, (i % 7) as f64 * 2.0 + 1.0];
            let y = (x[0] - 6.0).powi(2) * 0.3 + x[1] * 0.1;
            fast.add(x.clone(), y);
            probe.add(x, y);
            let q = [i as f64 * 0.4 + 1.0, 10.0];
            let (mf, vf) = fast.posterior(&q);
            let (mp, vp) = probe.posterior(&q);
            assert_eq!(mf.to_bits(), mp.to_bits(), "mean at add {i}");
            assert_eq!(vf.to_bits(), vp.to_bits(), "variance at add {i}");
        }
    }

    #[test]
    fn posterior_batch_matches_per_point_bitwise() {
        let gp = gp_with(&[
            (&[1.0, 2.0], 3.0),
            (&[5.0, 5.0], 7.0),
            (&[9.0, 2.0], 1.0),
            (&[3.0, 8.0], 4.0),
        ]);
        let cands: Vec<Vec<f64>> = (0..32)
            .map(|i| vec![1.0 + (i % 9) as f64, 1.0 + (i % 5) as f64 * 3.0])
            .collect();
        let batch = gp.posterior_batch(&cands);
        assert_eq!(batch.len(), cands.len());
        for (c, got) in cands.iter().zip(&batch) {
            let want = gp.posterior(c);
            assert_eq!(got.0.to_bits(), want.0.to_bits());
            assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    #[test]
    fn posterior_batch_on_empty_gp_returns_prior() {
        let gp = GaussianProcess::new(Kernel::default());
        let batch = gp.posterior_batch(&[vec![1.0], vec![2.0]]);
        assert_eq!(batch, vec![(0.0, 25.0), (0.0, 25.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_target_rejected() {
        let mut gp = GaussianProcess::new(Kernel::default());
        gp.add(vec![1.0], f64::INFINITY);
    }
}
