//! Exhaustive grid search.
//!
//! The "naive approach" §1 dismisses as "prohibitively time-consuming":
//! enumerate a lattice over the configuration space and measure every
//! point. Included so the benches can quantify exactly *how* prohibitive —
//! each grid point costs a full reconfiguration + measurement window of
//! real streaming time.

use crate::tuner::{BestTracker, Tuner};
use nostop_core::space::ConfigSpace;

/// Enumerates a `points_per_dim`-lattice over the space, row-major.
pub struct GridSearch {
    space: ConfigSpace,
    points_per_dim: usize,
    next_index: usize,
    tracker: BestTracker,
}

impl GridSearch {
    /// A grid with `points_per_dim` levels per dimension.
    pub fn new(space: ConfigSpace, points_per_dim: usize) -> Self {
        assert!(points_per_dim >= 2, "grid needs at least 2 levels");
        GridSearch {
            space,
            points_per_dim,
            next_index: 0,
            tracker: BestTracker::default(),
        }
    }

    /// The densest lattice whose point count fits an evaluation budget —
    /// at least 2 levels per dimension even when that already exceeds the
    /// budget, which is exactly how grid search becomes infeasible as
    /// dimensionality grows (a 2-level lattice at dim 8 is already 256
    /// points).
    pub fn auto(space: ConfigSpace, budget: usize) -> Self {
        let dim = space.dim() as u32;
        let mut levels = 2usize;
        while (levels + 1)
            .checked_pow(dim)
            .is_some_and(|total| total <= budget)
        {
            levels += 1;
        }
        GridSearch::new(space, levels)
    }

    /// Total number of grid points.
    pub fn total_points(&self) -> usize {
        self.points_per_dim.pow(self.space.dim() as u32)
    }

    fn point(&self, mut index: usize) -> Vec<f64> {
        let mut scaled = Vec::with_capacity(self.space.dim());
        for _ in 0..self.space.dim() {
            let level = index % self.points_per_dim;
            index /= self.points_per_dim;
            let frac = level as f64 / (self.points_per_dim - 1) as f64;
            scaled
                .push(self.space.scaled_lo + frac * (self.space.scaled_hi - self.space.scaled_lo));
        }
        self.space.to_physical(&scaled)
    }
}

impl Tuner for GridSearch {
    fn name(&self) -> &'static str {
        "grid-search"
    }

    fn propose(&mut self) -> Vec<f64> {
        let idx = self.next_index.min(self.total_points() - 1);
        self.next_index += 1;
        self.point(idx)
    }

    fn observe(&mut self, physical: &[f64], objective: f64) {
        self.tracker.observe(physical, objective);
    }

    fn best(&self) -> Option<(Vec<f64>, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> usize {
        self.tracker.evaluations()
    }

    fn finished(&self) -> bool {
        self.next_index >= self.total_points()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_the_full_lattice_once() {
        let mut gs = GridSearch::new(ConfigSpace::paper_default(), 5);
        assert_eq!(gs.total_points(), 25);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..25 {
            assert!(!gs.finished());
            let p = gs.propose();
            seen.insert(format!("{:.1},{:.0}", p[0], p[1]));
            gs.observe(&p, 1.0);
        }
        assert!(gs.finished());
        assert_eq!(seen.len(), 25, "all lattice points distinct");
    }

    #[test]
    fn corners_hit_the_physical_extremes() {
        let mut gs = GridSearch::new(ConfigSpace::paper_default(), 3);
        let mut points = Vec::new();
        for _ in 0..9 {
            points.push(gs.propose());
        }
        assert!(points.contains(&vec![1.0, 1.0]));
        assert!(points.contains(&vec![40.0, 20.0]));
        // Centre: executors 10.5 rounds half-away-from-zero to 11.
        assert!(points.contains(&vec![20.5, 11.0]));
    }

    #[test]
    fn finds_grid_optimum() {
        let mut gs = GridSearch::new(ConfigSpace::paper_default(), 9);
        while !gs.finished() {
            let p = gs.propose();
            let y = (p[0] - 20.0).powi(2) + (p[1] - 10.0).powi(2);
            gs.observe(&p, y);
        }
        let (cfg, _) = gs.best().unwrap();
        assert!((cfg[0] - 20.0).abs() <= 3.0, "{cfg:?}");
        assert!((cfg[1] - 10.0).abs() <= 2.0, "{cfg:?}");
    }

    #[test]
    fn auto_sizes_lattice_to_budget() {
        // Dim 2, budget 48: 6 levels (36 pts) fit, 7 (49) would not.
        let g2 = GridSearch::auto(ConfigSpace::paper_default(), 48);
        assert_eq!(g2.total_points(), 36);
        // Dim 8: even the minimum 2-level lattice (256 pts) blows the
        // budget — grid search is structurally infeasible here.
        let g8 = GridSearch::auto(ConfigSpace::extended(), 48);
        assert_eq!(g8.total_points(), 256);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_grid_rejected() {
        let _ = GridSearch::new(ConfigSpace::paper_default(), 1);
    }
}
