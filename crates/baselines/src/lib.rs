//! Comparator methods for the NoStop evaluation.
//!
//! The paper compares NoStop against three alternatives:
//!
//! * **Bayesian Optimization** (§6.4, Fig. 8) — "among the most commonly
//!   used algorithms in Random Search". Implemented from scratch:
//!   a Gaussian-process surrogate ([`gp`]) over the scaled configuration
//!   space with an RBF kernel and Cholesky solves ([`linalg`]), driven by
//!   the Expected Improvement acquisition ([`acquisition`], [`bayesopt`]).
//! * **Spark Back Pressure** (abstract) — Spark's `PIDRateEstimator`
//!   ([`backpressure`]), which throttles ingestion instead of adapting the
//!   configuration; faithful to Spark's constants.
//! * **Default configuration** (§6.3, Fig. 7) — a static configuration;
//!   the experiment driver simply never tunes.
//!
//! [`random_search`] and [`grid_search`] round out the comparison set, and
//! every configuration-proposing method implements the common
//! [`tuner::Tuner`] trait so the experiment harness can drive them all
//! through the identical measurement procedure NoStop uses.

pub mod acquisition;
pub mod backpressure;
pub mod bayesopt;
pub mod gp;
pub mod grid_search;
pub mod linalg;
pub mod random_search;
pub mod spsa_tuner;
pub mod tuner;

pub use backpressure::PidRateEstimator;
pub use bayesopt::BayesOpt;
pub use grid_search::GridSearch;
pub use random_search::RandomSearch;
pub use spsa_tuner::SpsaTuner;
pub use tuner::Tuner;
