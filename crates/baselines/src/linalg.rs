//! Minimal dense linear algebra for the Gaussian process.
//!
//! Only what GP regression needs: symmetric positive-definite matrices,
//! Cholesky factorization, and triangular solves. Matrices are row-major
//! `Vec<f64>` with explicit dimension.
//!
//! Every inner product in this module — the Cholesky inner loops, the
//! forward solves (single and multi-RHS), and the rank-1 factor extension —
//! goes through the one unrolled [`dot`] kernel. That is a correctness
//! property, not just a speed one: incremental factor extension
//! ([`Matrix::extend_cholesky`]) is *bitwise* identical to refactoring the
//! grown Gram matrix from scratch ([`Matrix::cholesky_into`]) because the
//! new-row recurrence and the full factorization execute the same additions
//! in the same order. The GP's `NOSTOP_NO_GP_INCREMENTAL` probe mode leans
//! on this.

/// A square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension (rows = cols = n).
    pub n: usize,
    /// Row-major entries, length `n * n`.
    pub data: Vec<f64>,
}

/// Unrolled dot product — the single inner-product kernel shared by every
/// factorization and solve in this module (see module docs for why the
/// summation order must be canonical).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Ensure backing storage for a `dim × dim` matrix without touching the
    /// current contents — lets callers pre-size factors so in-place growth
    /// ([`Matrix::extend_cholesky`]) stays allocation-free at steady state.
    pub fn reserve(&mut self, dim: usize) {
        let need = dim * dim;
        if need > self.data.len() {
            self.data.reserve(need - self.data.len());
        }
    }

    /// Cholesky factorization `A = L Lᵀ` for symmetric positive-definite
    /// `A`. Returns the lower-triangular factor, or `None` if the matrix
    /// is not (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        let mut l = Matrix::zeros(0);
        if self.cholesky_into(&mut l) {
            Some(l)
        } else {
            None
        }
    }

    /// Cholesky factorization into a caller-owned factor, reusing its
    /// storage (allocation-free once `l` has capacity). Returns `false` —
    /// leaving `l` in an unspecified state — if `self` is not numerically
    /// positive definite.
    pub fn cholesky_into(&self, l: &mut Matrix) -> bool {
        let n = self.n;
        l.n = n;
        l.data.clear();
        l.data.resize(n * n, 0.0);
        for i in 0..n {
            // Rows `0..i` are finished and read-only; row `i` is written
            // left to right, so the in-row prefix is valid for the dots.
            let (done, rest) = l.data.split_at_mut(i * n);
            let row_i = &mut rest[..n];
            for j in 0..i {
                let row_j = &done[j * n..j * n + j];
                let s = self.data[i * n + j] - dot(&row_i[..j], row_j);
                row_i[j] = s / done[j * n + j];
            }
            let s = self.data[i * n + i] - dot(&row_i[..i], &row_i[..i]);
            if s <= 0.0 {
                return false;
            }
            row_i[i] = s.sqrt();
        }
        true
    }

    /// Extend a Cholesky factor of an `n × n` matrix to the factor of the
    /// `(n+1) × (n+1)` matrix bordered by column `col` and diagonal `diag`
    /// — one forward solve plus a diagonal update, O(n²) instead of an
    /// O(n³) refactorization. The growth is in place (backwards row
    /// re-stride over the existing buffer).
    ///
    /// Returns `false` and leaves the factor unchanged if the bordered
    /// matrix is not numerically positive definite. The computed row is
    /// bitwise identical to what a full [`Matrix::cholesky_into`] of the
    /// bordered matrix would produce.
    pub fn extend_cholesky(&mut self, col: &[f64], diag: f64) -> bool {
        let n = self.n;
        assert_eq!(col.len(), n, "border column must match factor dimension");
        self.grow();
        let m = self.n;
        let (done, last) = self.data.split_at_mut(n * m);
        let row = &mut last[..m];
        for (j, &c) in col.iter().enumerate() {
            let row_j = &done[j * m..j * m + j];
            let s = c - dot(&row[..j], row_j);
            row[j] = s / done[j * m + j];
        }
        let s = diag - dot(&row[..n], &row[..n]);
        if s <= 0.0 {
            self.shrink();
            return false;
        }
        row[n] = s.sqrt();
        true
    }

    /// Re-stride `n × n` → `(n+1) × (n+1)` in place, zero-filling the new
    /// row and column. Rows move to strictly higher offsets, so walking
    /// them back to front never clobbers an unmoved row.
    fn grow(&mut self) {
        let n = self.n;
        let m = n + 1;
        self.data.resize(m * m, 0.0);
        for i in (1..n).rev() {
            self.data.copy_within(i * n..i * n + n, i * m);
            self.data[i * m + n] = 0.0;
        }
        if n > 0 {
            self.data[n] = 0.0;
        }
        self.n = m;
    }

    /// Inverse of [`Matrix::grow`]: drop the last row and column in place.
    fn shrink(&mut self) {
        let m = self.n;
        debug_assert!(m > 0);
        let n = m - 1;
        for i in 1..n {
            self.data.copy_within(i * m..i * m + n, i * n);
        }
        self.data.truncate(n * n);
        self.n = n;
    }
}

/// Solve `L x = b` in place (forward substitution): on entry `x` holds `b`,
/// on exit the solution.
pub fn solve_lower_in_place(l: &Matrix, x: &mut [f64]) {
    let n = l.n;
    assert_eq!(x.len(), n, "dimension mismatch");
    for i in 0..n {
        let row = &l.data[i * n..i * n + i];
        let (head, tail) = x.split_at_mut(i);
        let s = tail[0] - dot(row, head);
        tail[0] = s / l.data[i * n + i];
    }
}

/// Solve `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    solve_lower_in_place(l, &mut x);
    x
}

/// Multi-right-hand-side forward substitution: `xs` holds `count`
/// candidate-major rows of length `l.n`, each a `b` on entry and the
/// solution of `L x = b` on exit. One sweep over the factor's rows serves
/// every right-hand side, so `L` streams through cache once; per-candidate
/// arithmetic is bitwise identical to [`solve_lower`].
pub fn solve_lower_multi(l: &Matrix, xs: &mut [f64], count: usize) {
    let n = l.n;
    assert_eq!(xs.len(), count * n, "dimension mismatch");
    for i in 0..n {
        let row = &l.data[i * n..i * n + i];
        let d = l.data[i * n + i];
        for x in xs.chunks_exact_mut(n) {
            let (head, tail) = x.split_at_mut(i);
            let s = tail[0] - dot(row, head);
            tail[0] = s / d;
        }
    }
}

/// Solve `Lᵀ x = b` in place (backward substitution): on entry `x` holds
/// `b`, on exit the solution.
pub fn solve_upper_transposed_in_place(l: &Matrix, x: &mut [f64]) {
    let n = l.n;
    assert_eq!(x.len(), n, "dimension mismatch");
    for i in (0..n).rev() {
        let mut s = x[i];
        // Column `i` of L below the diagonal (stride-n walk).
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            s -= l.data[j * n + i] * xj;
        }
        x[i] = s / l.data[i * n + i];
    }
}

/// Solve `Lᵀ x = b` for lower-triangular `L` (backward substitution).
pub fn solve_upper_transposed(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    solve_upper_transposed_in_place(l, &mut x);
    x
}

/// Solve `A x = b` given the Cholesky factor `L` of `A`, writing into a
/// caller-owned buffer (allocation-free once `out` has capacity).
pub fn cholesky_solve_into(l: &Matrix, b: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend_from_slice(b);
    solve_lower_in_place(l, out);
    solve_upper_transposed_in_place(l, out);
}

/// Solve `A x = b` given the Cholesky factor `L` of `A`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    cholesky_solve_into(l, b, &mut out);
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index style mirrors the matrix algebra being verified
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A known SPD matrix.
        Matrix {
            n: 3,
            data: vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0],
        }
    }

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let raw = Matrix::from_fn(n, |_, _| rand01() - 0.5);
        Matrix::from_fn(n, |i, j| {
            let mut s = 0.0;
            for k in 0..n {
                s += raw.get(k, i) * raw.get(k, j);
            }
            s + if i == j { n as f64 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs_original() {
        let a = spd3();
        let l = a.cholesky().expect("SPD");
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
        // L Lᵀ = A.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let m = Matrix {
            n: 2,
            data: vec![1.0, 2.0, 2.0, 1.0], // eigenvalues 3, -1
        };
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn cholesky_into_reuses_storage_and_matches() {
        let a = random_spd(17, 5);
        let fresh = a.cholesky().expect("SPD");
        let mut scratch = Matrix::zeros(0);
        scratch.reserve(17);
        let cap = scratch.data.capacity();
        assert!(a.cholesky_into(&mut scratch));
        assert_eq!(scratch, fresh);
        assert_eq!(scratch.data.capacity(), cap, "no reallocation");
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 0.5];
        // b = A x.
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn triangular_solves_are_inverses() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = [3.0, 1.0, -2.0];
        let y = solve_lower(&l, &b);
        // L y = b.
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..=i {
                s += l.get(i, j) * y[j];
            }
            assert!((s - b[i]).abs() < 1e-12);
        }
        let x = solve_upper_transposed(&l, &y);
        // Lᵀ x = y.
        for i in 0..3 {
            let mut s = 0.0;
            for j in i..3 {
                s += l.get(j, i) * x[j];
            }
            assert!((s - y[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn extend_matches_full_factorization_bitwise() {
        // Factor the leading (n-1)-minor, extend by the last column, and
        // compare against factoring the full matrix — bitwise.
        for n in [2usize, 3, 7, 24, 41] {
            let a = random_spd(n, n as u64);
            let minor = Matrix::from_fn(n - 1, |i, j| a.get(i, j));
            let mut l = minor.cholesky().expect("SPD minor");
            let col: Vec<f64> = (0..n - 1).map(|j| a.get(n - 1, j)).collect();
            assert!(l.extend_cholesky(&col, a.get(n - 1, n - 1)));
            let full = a.cholesky().expect("SPD");
            assert_eq!(l, full, "n = {n}");
        }
    }

    #[test]
    fn extend_rejects_indefinite_border_and_restores_factor() {
        let a = spd3();
        let mut l = a.cholesky().unwrap();
        let before = l.clone();
        // A border that makes the matrix indefinite: huge column, tiny diag.
        assert!(!l.extend_cholesky(&[100.0, 100.0, 100.0], 1.0));
        assert_eq!(l, before, "failed extension must leave the factor intact");
    }

    #[test]
    fn extend_from_empty_factor() {
        let mut l = Matrix::zeros(0);
        assert!(l.extend_cholesky(&[], 4.0));
        assert_eq!(l.n, 1);
        assert_eq!(l.get(0, 0), 2.0);
    }

    #[test]
    fn multi_rhs_solve_matches_single_bitwise() {
        let a = random_spd(19, 9);
        let l = a.cholesky().unwrap();
        let count = 7;
        let mut xs: Vec<f64> = (0..count * 19).map(|i| (i as f64).sin()).collect();
        let singles: Vec<Vec<f64>> = xs.chunks_exact(19).map(|b| solve_lower(&l, b)).collect();
        solve_lower_multi(&l, &mut xs, count);
        for (c, single) in singles.iter().enumerate() {
            for (k, (&got, &want)) in xs[c * 19..(c + 1) * 19].iter().zip(single).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "candidate {c} entry {k}");
            }
        }
    }

    #[test]
    fn identity_round_trip_large() {
        let a = random_spd(40, 1);
        let l = a.cholesky().expect("SPD by construction");
        let b: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let x = cholesky_solve(&l, &b);
        // Residual ‖A x − b‖∞ small.
        for i in 0..40 {
            let mut s = 0.0;
            for j in 0..40 {
                s += a.get(i, j) * x[j];
            }
            assert!((s - b[i]).abs() < 1e-8);
        }
    }
}
