//! Minimal dense linear algebra for the Gaussian process.
//!
//! Only what GP regression needs: symmetric positive-definite matrices,
//! Cholesky factorization, and triangular solves. Matrices are row-major
//! `Vec<f64>` with explicit dimension — the GP never exceeds a few hundred
//! observations, so simplicity beats cleverness here.

/// A square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension (rows = cols = n).
    pub n: usize,
    /// Row-major entries, length `n * n`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Cholesky factorization `A = L Lᵀ` for symmetric positive-definite
    /// `A`. Returns the lower-triangular factor, or `None` if the matrix
    /// is not (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        let n = self.n;
        let mut l = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }
}

/// Solve `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.n;
    assert_eq!(b.len(), n, "dimension mismatch");
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (j, xj) in x.iter().enumerate().take(i) {
            sum -= l.get(i, j) * xj;
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Solve `Lᵀ x = b` for lower-triangular `L` (backward substitution).
pub fn solve_upper_transposed(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.n;
    assert_eq!(b.len(), n, "dimension mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            sum -= l.get(j, i) * xj;
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Solve `A x = b` given the Cholesky factor `L` of `A`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    solve_upper_transposed(l, &solve_lower(l, b))
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index style mirrors the matrix algebra being verified
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A known SPD matrix.
        Matrix {
            n: 3,
            data: vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0],
        }
    }

    #[test]
    fn cholesky_reconstructs_original() {
        let a = spd3();
        let l = a.cholesky().expect("SPD");
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
        // L Lᵀ = A.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let m = Matrix {
            n: 2,
            data: vec![1.0, 2.0, 2.0, 1.0], // eigenvalues 3, -1
        };
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 0.5];
        // b = A x.
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn triangular_solves_are_inverses() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = [3.0, 1.0, -2.0];
        let y = solve_lower(&l, &b);
        // L y = b.
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..=i {
                s += l.get(i, j) * y[j];
            }
            assert!((s - b[i]).abs() < 1e-12);
        }
        let x = solve_upper_transposed(&l, &y);
        // Lᵀ x = y.
        for i in 0..3 {
            let mut s = 0.0;
            for j in i..3 {
                s += l.get(j, i) * x[j];
            }
            assert!((s - y[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_round_trip_large() {
        // Random SPD via AᵀA + n·I, then verify solve accuracy.
        let n = 40;
        let mut seed = 1u64;
        let mut rand01 = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let raw = Matrix::from_fn(n, |_, _| rand01() - 0.5);
        let a = Matrix::from_fn(n, |i, j| {
            let mut s = 0.0;
            for k in 0..n {
                s += raw.get(k, i) * raw.get(k, j);
            }
            s + if i == j { n as f64 } else { 0.0 }
        });
        let l = a.cholesky().expect("SPD by construction");
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = cholesky_solve(&l, &b);
        // Residual ‖A x − b‖∞ small.
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += a.get(i, j) * x[j];
            }
            assert!((s - b[i]).abs() < 1e-8);
        }
    }
}
