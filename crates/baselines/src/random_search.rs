//! Uniform random search over the configuration space.
//!
//! The simplest member of the "Random Search" family the paper situates
//! Bayesian optimization in (§6.4) — a sanity baseline: any model-guided
//! method must beat it.

use crate::tuner::{BestTracker, Tuner};
use nostop_core::space::ConfigSpace;
use nostop_simcore::SimRng;

/// Proposes configurations uniformly at random (in scaled space, then
/// quantized to physical units).
pub struct RandomSearch {
    space: ConfigSpace,
    rng: SimRng,
    tracker: BestTracker,
}

impl RandomSearch {
    /// A random search over `space`.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: SimRng::seed_from_u64(seed),
            tracker: BestTracker::default(),
        }
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "random-search"
    }

    fn propose(&mut self) -> Vec<f64> {
        let scaled: Vec<f64> = (0..self.space.dim())
            .map(|_| self.rng.uniform(self.space.scaled_lo, self.space.scaled_hi))
            .collect();
        self.space.to_physical(&scaled)
    }

    fn observe(&mut self, physical: &[f64], objective: f64) {
        self.tracker.observe(physical, objective);
    }

    fn best(&self) -> Option<(Vec<f64>, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> usize {
        self.tracker.evaluations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposals_cover_the_space() {
        let mut rs = RandomSearch::new(ConfigSpace::paper_default(), 1);
        let mut saw_low_interval = false;
        let mut saw_high_interval = false;
        for _ in 0..200 {
            let p = rs.propose();
            assert!((1.0..=40.0).contains(&p[0]));
            assert!((1.0..=20.0).contains(&p[1]));
            if p[0] < 10.0 {
                saw_low_interval = true;
            }
            if p[0] > 30.0 {
                saw_high_interval = true;
            }
        }
        assert!(saw_low_interval && saw_high_interval);
    }

    #[test]
    fn eventually_finds_a_decent_point() {
        let mut rs = RandomSearch::new(ConfigSpace::paper_default(), 2);
        for _ in 0..100 {
            let p = rs.propose();
            let y = (p[0] - 8.0).abs() + (p[1] - 16.0).abs();
            rs.observe(&p, y);
        }
        let (_, best) = rs.best().unwrap();
        assert!(best < 6.0, "best {best}");
        assert_eq!(rs.evaluations(), 100);
        assert!(!rs.finished());
    }
}
