//! SPSA behind the common [`Tuner`] interface.
//!
//! The live NoStop controller drives [`Spsa`] through its own two-phase
//! measurement protocol (pause rules, rate-shift resets). The tuner arena
//! instead needs SPSA as *just another* propose → observe method so every
//! contender pays the identical per-evaluation cost. This adapter unrolls
//! each SPSA iteration across two propose/observe round-trips: the first
//! returns `θ⁺`, the second `θ⁻`, and the second observation completes the
//! gradient step. `evaluations()` therefore counts measurements, not
//! iterations — the same currency the other tuners report.

use crate::tuner::{BestTracker, Tuner};
use nostop_core::sa::spsa::{Proposal, Spsa, SpsaParams};
use nostop_core::space::ConfigSpace;
use nostop_simcore::SimRng;

/// One in-flight SPSA iteration, split across two observations.
struct PendingIteration {
    proposal: Proposal,
    y_plus: Option<f64>,
}

/// SPSA as a budget-driven [`Tuner`] over a [`ConfigSpace`].
pub struct SpsaTuner {
    space: ConfigSpace,
    spsa: Spsa,
    tracker: BestTracker,
    pending: Option<PendingIteration>,
}

impl SpsaTuner {
    /// Paper-default gains over `space`, starting from the scaled midpoint.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        let spsa = Spsa::new(
            SpsaParams::paper_default(space.dim()),
            space.scaled_midpoint(),
            SimRng::seed_from_u64(seed),
        );
        SpsaTuner {
            space,
            spsa,
            tracker: BestTracker::default(),
            pending: None,
        }
    }

    /// The current (scaled) iterate, for inspection.
    pub fn theta(&self) -> &[f64] {
        self.spsa.theta()
    }
}

impl Tuner for SpsaTuner {
    fn name(&self) -> &'static str {
        "spsa"
    }

    fn propose(&mut self) -> Vec<f64> {
        match &self.pending {
            // First half of the iteration (or a re-ask before observing).
            None => {
                let proposal = self.spsa.propose();
                let physical = self.space.to_physical(&proposal.theta_plus);
                self.pending = Some(PendingIteration {
                    proposal,
                    y_plus: None,
                });
                physical
            }
            Some(p) if p.y_plus.is_none() => self.space.to_physical(&p.proposal.theta_plus),
            Some(p) => self.space.to_physical(&p.proposal.theta_minus),
        }
    }

    fn observe(&mut self, physical: &[f64], objective: f64) {
        self.tracker.observe(physical, objective);
        let Some(mut p) = self.pending.take() else {
            return; // unsolicited observation: tracked, but no iteration open
        };
        if !objective.is_finite() {
            // A poisoned measurement abandons the whole iteration —
            // `Spsa::update` (correctly) refuses non-finite objectives, and
            // a gradient from half-garbage would be worse than no step.
            return;
        }
        match p.y_plus {
            None => {
                p.y_plus = Some(objective);
                self.pending = Some(p);
            }
            Some(y_plus) => {
                self.spsa.update(&p.proposal, y_plus, objective);
            }
        }
    }

    fn best(&self) -> Option<(Vec<f64>, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> usize {
        self.tracker.evaluations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<F: FnMut(&[f64]) -> f64>(tuner: &mut SpsaTuner, evals: usize, mut f: F) {
        for _ in 0..evals {
            let p = tuner.propose();
            let y = f(&p);
            tuner.observe(&p, y);
        }
    }

    #[test]
    fn converges_on_quadratic_via_tuner_interface() {
        let mut t = SpsaTuner::new(ConfigSpace::paper_default(), 17);
        drive(&mut t, 120, |p| {
            (p[0] - 8.0).powi(2) / 10.0 + (p[1] - 16.0).powi(2) / 20.0
        });
        let (cfg, _) = t.best().expect("observed");
        assert!((cfg[0] - 8.0).abs() < 6.0, "{cfg:?}");
        assert!((cfg[1] - 16.0).abs() < 8.0, "{cfg:?}");
        assert_eq!(t.evaluations(), 120);
    }

    #[test]
    fn alternates_plus_and_minus_points() {
        let mut t = SpsaTuner::new(ConfigSpace::paper_default(), 3);
        let plus = t.propose();
        t.observe(&plus, 1.0);
        let minus = t.propose();
        assert_ne!(plus, minus, "second half probes the opposite perturbation");
        t.observe(&minus, 2.0);
        // Iteration complete: the optimizer stepped.
        assert_eq!(t.spsa.k(), 1);
    }

    #[test]
    fn repeated_propose_before_observe_is_stable() {
        let mut t = SpsaTuner::new(ConfigSpace::paper_default(), 5);
        let a = t.propose();
        let b = t.propose();
        assert_eq!(a, b, "re-asking without observing must not draw new RNG");
    }

    #[test]
    fn non_finite_objective_abandons_the_iteration() {
        let mut t = SpsaTuner::new(ConfigSpace::paper_default(), 7);
        let p = t.propose();
        t.observe(&p, f64::NAN);
        assert_eq!(t.spsa.k(), 0, "no step from a poisoned measurement");
        // The next propose starts a fresh iteration and the tuner still works.
        drive(&mut t, 10, |p| p[0] + p[1]);
        assert!(t.best().is_some());
    }

    #[test]
    fn works_at_dimension_eight() {
        let mut t = SpsaTuner::new(ConfigSpace::extended(), 23);
        drive(&mut t, 40, |p| p.iter().map(|v| (v - 5.0).powi(2)).sum());
        assert_eq!(t.evaluations(), 40);
        assert_eq!(t.spsa.k(), 20, "two evaluations per iteration");
        let (cfg, _) = t.best().unwrap();
        assert_eq!(cfg.len(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut t = SpsaTuner::new(ConfigSpace::extended(), 42);
            let mut seen = Vec::new();
            for i in 0..30 {
                let p = t.propose();
                t.observe(&p, p[0] * 0.3 + p[2] * 0.01 + (i % 4) as f64);
                seen.push(p);
            }
            seen
        };
        assert_eq!(run(), run());
    }
}
