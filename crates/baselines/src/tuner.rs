//! The common interface every configuration-proposing method implements.
//!
//! NoStop itself has a richer interaction model (two measurements per
//! iteration, pause/reset policies), but the comparison methods all follow
//! the same propose → measure → observe loop; the experiment harness in
//! `nostop-bench` drives them through the identical Algorithm-2-style
//! measurement procedure so the Fig-8 comparison is apples to apples.

/// A black-box configuration tuner over a physical parameter space.
pub trait Tuner {
    /// Method name for reports.
    fn name(&self) -> &'static str;

    /// Propose the next configuration to evaluate, in physical units.
    fn propose(&mut self) -> Vec<f64>;

    /// Report the measured objective for a proposed configuration
    /// (smaller is better — the Eq. 3 penalized delay).
    fn observe(&mut self, physical: &[f64], objective: f64);

    /// Best `(configuration, objective)` seen so far.
    fn best(&self) -> Option<(Vec<f64>, f64)>;

    /// Number of configurations evaluated.
    fn evaluations(&self) -> usize;

    /// True when the tuner has exhausted its own search plan (e.g. a grid);
    /// budget-bounded methods return `false` and rely on the driver.
    fn finished(&self) -> bool {
        false
    }
}

/// Shared best-tracking used by the concrete tuners.
#[derive(Debug, Clone, Default)]
pub(crate) struct BestTracker {
    best: Option<(Vec<f64>, f64)>,
    evaluations: usize,
}

impl BestTracker {
    pub(crate) fn observe(&mut self, physical: &[f64], objective: f64) {
        self.evaluations += 1;
        if objective.is_finite()
            && self
                .best
                .as_ref()
                .map(|(_, b)| objective < *b)
                .unwrap_or(true)
        {
            self.best = Some((physical.to_vec(), objective));
        }
    }

    pub(crate) fn best(&self) -> Option<(Vec<f64>, f64)> {
        self.best.clone()
    }

    pub(crate) fn evaluations(&self) -> usize {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_keeps_minimum() {
        let mut t = BestTracker::default();
        t.observe(&[1.0], 10.0);
        t.observe(&[2.0], 5.0);
        t.observe(&[3.0], 7.0);
        let (cfg, obj) = t.best().unwrap();
        assert_eq!(cfg, vec![2.0]);
        assert_eq!(obj, 5.0);
        assert_eq!(t.evaluations(), 3);
    }

    #[test]
    fn tracker_ignores_non_finite() {
        let mut t = BestTracker::default();
        t.observe(&[1.0], f64::NAN);
        assert!(t.best().is_none());
        assert_eq!(t.evaluations(), 1);
    }
}
