//! Differential property suite for the incremental GP fast path.
//!
//! Three contracts, each pinned over randomized problem shapes:
//!
//! 1. **Factor extension** — building a Cholesky factor one border column
//!    at a time with [`Matrix::extend_cholesky`] lands within 1e-9 of the
//!    full factorization of the final matrix (and in fact bitwise: both
//!    paths share the same unrolled dot kernel and recurrence order).
//! 2. **Batched posterior** — [`GaussianProcess::posterior_batch`] is
//!    bitwise identical to scoring each candidate through
//!    [`GaussianProcess::posterior`] one at a time.
//! 3. **Probe equivalence** — a GP fitted through the full-refit probe
//!    path (`with_incremental(false)`, the `NOSTOP_NO_GP_INCREMENTAL=1`
//!    surface) produces posteriors within 1e-9 of the incremental path on
//!    arbitrary add-sequences — after *every* add, not just the last.
//!
//! The suite is part of the CI `tuners` leg, which runs it both plain and
//! under `NOSTOP_NO_GP_INCREMENTAL=1` (the env flips which path
//! `GaussianProcess::new` picks; contract 3 pins the two paths against
//! each other explicitly either way).

use nostop_baselines::gp::{GaussianProcess, Kernel};
use nostop_baselines::linalg::Matrix;
use nostop_simcore::SimRng;
use proptest::prelude::*;

/// A random symmetric positive-definite matrix: `A Aᵀ + n·I` over entries
/// in `[-1, 1]`.
fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = SimRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    Matrix::from_fn(n, |i, j| {
        let mut s = 0.0;
        for k in 0..n {
            s += a[i * n + k] * a[j * n + k];
        }
        s + if i == j { n as f64 } else { 0.0 }
    })
}

/// Random points in the scaled configuration cube `[1, 20]^dim`.
fn random_points(count: usize, dim: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
    (0..count)
        .map(|_| (0..dim).map(|_| rng.uniform(1.0, 20.0)).collect())
        .collect()
}

proptest! {
    #[test]
    fn incremental_factor_matches_full_factorization(
        n in 1usize..28,
        seed in 0u64..1_000_000,
    ) {
        let m = random_spd(n, seed);
        let full = m.cholesky().expect("SPD by construction");

        // Grow a factor from empty, one border column at a time.
        let mut grown = Matrix::zeros(0);
        for k in 0..n {
            let col: Vec<f64> = (0..k).map(|j| m.get(k, j)).collect();
            prop_assert!(
                grown.extend_cholesky(&col, m.get(k, k)),
                "border {k} rejected on an SPD matrix"
            );
        }

        prop_assert_eq!(grown.n, full.n);
        for i in 0..n {
            for j in 0..=i {
                let (a, b) = (grown.get(i, j), full.get(i, j));
                prop_assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "L[{i}][{j}]: incremental {a} vs full {b}"
                );
            }
        }
    }

    #[test]
    fn posterior_batch_matches_per_point_bitwise(
        dim in 1usize..6,
        n_obs in 1usize..24,
        n_cand in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xBA7C4);
        let mut gp = GaussianProcess::new(Kernel::default());
        for (i, x) in random_points(n_obs, dim, &mut rng).into_iter().enumerate() {
            let y = rng.uniform(-5.0, 5.0) + i as f64 * 0.1;
            gp.add(x, y);
        }
        let candidates = random_points(n_cand, dim, &mut rng);
        let batch = gp.posterior_batch(&candidates);
        prop_assert_eq!(batch.len(), candidates.len());
        for (cand, (bm, bv)) in candidates.iter().zip(&batch) {
            let (m, v) = gp.posterior(cand);
            prop_assert_eq!(m.to_bits(), bm.to_bits(), "mean diverged");
            prop_assert_eq!(v.to_bits(), bv.to_bits(), "variance diverged");
        }
    }

    #[test]
    fn probe_refit_tracks_incremental_on_random_add_sequences(
        dim in 1usize..6,
        n_adds in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9B0BE);
        let mut fast = GaussianProcess::new(Kernel::default()).with_incremental(true);
        let mut probe = GaussianProcess::new(Kernel::default()).with_incremental(false);
        let probes = random_points(4, dim, &mut rng);
        for x in random_points(n_adds, dim, &mut rng) {
            let y = rng.uniform(-10.0, 10.0);
            fast.add(x.clone(), y);
            probe.add(x, y);
            for p in &probes {
                let (fm, fv) = fast.posterior(p);
                let (pm, pv) = probe.posterior(p);
                prop_assert!(
                    (fm - pm).abs() <= 1e-9 * pm.abs().max(1.0),
                    "mean: incremental {fm} vs refit {pm} at n={}",
                    fast.len()
                );
                prop_assert!(
                    (fv - pv).abs() <= 1e-9 * pv.abs().max(1.0),
                    "variance: incremental {fv} vs refit {pv} at n={}",
                    fast.len()
                );
            }
        }
    }
}
