//! The "negligible overhead" claim (§4.2.1, contribution 2).
//!
//! NoStop's per-iteration *compute* must be cheap enough to run inline
//! with a production streaming system. This bench measures the controller
//! math in isolation — SPSA propose+update, the policies, the objective,
//! and the configuration-space scaling — by driving a zero-cost in-memory
//! system. The numbers come out in nanoseconds–microseconds per round,
//! versus batch intervals of seconds: overhead ratios around 1e-8.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nostop_core::controller::{NoStop, NoStopConfig};
use nostop_core::sa::{Spsa, SpsaParams};
use nostop_core::space::ConfigSpace;
use nostop_core::system::{BatchObservation, StreamingSystem};
use nostop_simcore::SimRng;
use std::hint::black_box;

/// A free (no simulation) system: constant metrics, instant batches.
struct NullSystem {
    t: f64,
    interval: f64,
}

impl StreamingSystem for NullSystem {
    fn apply_config(&mut self, physical: &[f64]) {
        self.interval = physical[0];
    }
    fn next_batch(&mut self) -> BatchObservation {
        self.t += self.interval;
        BatchObservation {
            completed_at_s: self.t,
            interval_s: self.interval,
            processing_s: self.interval * 0.8,
            scheduling_delay_s: 0.0,
            records: 10_000,
            input_rate: 10_000.0,
            num_executors: 10,
            queued_batches: 0,
            executor_failures: 0,
        }
    }
    fn now_s(&self) -> f64 {
        self.t
    }
}

fn bench_spsa_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsa");
    for dim in [2usize, 5, 20] {
        group.bench_function(format!("propose+update_dim{dim}"), |b| {
            let mut spsa = Spsa::new(
                SpsaParams::paper_default(dim),
                vec![10.0; dim],
                SimRng::seed_from_u64(1),
            );
            b.iter(|| {
                let p = spsa.propose();
                let info = spsa.update(&p, black_box(12.0), black_box(11.0));
                black_box(info.theta[0])
            });
        });
    }
    group.finish();
}

fn bench_controller_round(c: &mut Criterion) {
    c.bench_function("controller/full_round_null_system", |b| {
        b.iter_batched(
            || {
                (
                    NoStop::new(NoStopConfig::paper_default(), 7),
                    NullSystem {
                        t: 0.0,
                        interval: 10.0,
                    },
                )
            },
            |(mut ns, mut sys)| {
                // One optimization round: all controller math + policy
                // bookkeeping, with free measurements.
                black_box(ns.run_round(&mut sys));
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_scaling_and_objective(c: &mut Criterion) {
    let space = ConfigSpace::paper_default();
    c.bench_function("space/to_physical+to_scaled", |b| {
        b.iter(|| {
            let phys = space.to_physical(black_box(&[12.3, 8.7]));
            black_box(space.to_scaled(&phys))
        });
    });
    let penalty = nostop_core::objective::PenaltySchedule::paper_default();
    c.bench_function("objective/eq3", |b| {
        b.iter(|| black_box(penalty.objective(black_box(10.0), black_box(11.5))));
    });
}

criterion_group!(
    benches,
    bench_spsa_iteration,
    bench_controller_round,
    bench_scaling_and_objective
);
criterion_main!(benches);
