//! Simulator performance: how fast virtual streaming time advances.
//!
//! The entire reproduction rests on replaying hours of cluster time in
//! milliseconds; this bench tracks the engine's simulated-batches-per-
//! second across workloads and configurations so regressions in the DES
//! hot path (task list-scheduling, broker accounting, noise sampling) are
//! caught.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, StreamConfig, StreamingEngine};
use std::hint::black_box;

const BATCHES: u64 = 50;

fn engine_for(kind: WorkloadKind, rate: f64, interval_s: f64, executors: u32) -> StreamingEngine {
    StreamingEngine::new(
        EngineParams::paper(kind, 42),
        StreamConfig::new(SimDuration::from_secs_f64(interval_s), executors),
        Box::new(ConstantRate::new(rate)),
    )
}

fn bench_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batches");
    group.throughput(Throughput::Elements(BATCHES));
    for kind in WorkloadKind::ALL {
        let (lo, hi) = kind.paper_rate_range();
        let rate = (lo + hi) / 2.0;
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || engine_for(kind, rate, 10.0, 16),
                |mut engine| {
                    engine.run_batches(BATCHES);
                    black_box(engine.listener().completed())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_task_scale(c: &mut Criterion) {
    // Large intervals mean many tasks per stage — the list scheduler's
    // heap is the hot structure.
    let mut group = c.benchmark_group("engine_task_scale");
    for interval_s in [2.0, 10.0, 40.0] {
        group.bench_function(format!("interval_{interval_s}s"), |b| {
            b.iter_batched(
                || engine_for(WorkloadKind::WordCount, 150_000.0, interval_s, 20),
                |mut engine| {
                    engine.run_batches(20);
                    black_box(engine.now().as_micros())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_reconfiguration(c: &mut Criterion) {
    // Runtime reconfiguration (executor launch/retire + divider re-arm)
    // must not be a hot spot either.
    c.bench_function("engine/reconfigure_every_batch", |b| {
        b.iter_batched(
            || engine_for(WorkloadKind::LogisticRegression, 10_000.0, 10.0, 10),
            |mut engine| {
                for i in 0..20u64 {
                    let execs = 4 + (i % 16) as u32;
                    engine.apply_config(StreamConfig::new(
                        SimDuration::from_secs_f64(5.0 + (i % 30) as f64),
                        execs,
                    ));
                    engine.run_batches(1);
                }
                black_box(engine.listener().completed())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_batches,
    bench_task_scale,
    bench_reconfiguration
);
criterion_main!(benches);
