//! Per-figure micro versions under criterion.
//!
//! Each figure binary's core experiment, shrunk to a few seconds of
//! simulated time, benchmarked so the cost of regenerating every figure is
//! tracked over the library's life. (The binaries in `src/bin/` produce
//! the full-size numbers; these confirm they stay cheap to run.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nostop_bench::driver::{make_system, measure_config, nostop_config, paper_rate};
use nostop_core::controller::NoStop;
use nostop_core::system::StreamingSystem;
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};
use std::hint::black_box;

fn testbed_point(interval_s: f64, executors: u32) -> f64 {
    let engine = StreamingEngine::new(
        EngineParams::testbed(WorkloadKind::LogisticRegression, 42),
        StreamConfig::new(SimDuration::from_secs_f64(interval_s), executors),
        Box::new(ConstantRate::new(10_000.0)),
    );
    let mut sys = SimSystem::new(engine);
    let mut total = 0.0;
    for _ in 0..4 {
        total += sys.next_batch().processing_s;
    }
    total / 4.0
}

fn bench_fig2_point(c: &mut Criterion) {
    c.bench_function("fig2/one_interval_point", |b| {
        b.iter(|| black_box(testbed_point(black_box(10.0), 10)));
    });
}

fn bench_fig3_point(c: &mut Criterion) {
    c.bench_function("fig3/one_executor_point", |b| {
        b.iter(|| black_box(testbed_point(10.0, black_box(18))));
    });
}

fn bench_fig5_trace(c: &mut Criterion) {
    c.bench_function("fig5/one_workload_trace", |b| {
        b.iter(|| {
            let mut rate = paper_rate(WorkloadKind::WordCount, 42);
            let mut acc = 0.0;
            for t in 0..600u64 {
                acc += rate.rate_at(nostop_simcore::SimTime::from_micros(t * 1_000_000));
            }
            black_box(acc)
        });
    });
}

fn bench_fig6_rounds(c: &mut Criterion) {
    c.bench_function("fig6/ten_nostop_rounds", |b| {
        b.iter_batched(
            || {
                let sys = make_system(
                    WorkloadKind::WordCount,
                    42,
                    paper_rate(WorkloadKind::WordCount, 43),
                );
                let ns = NoStop::new(nostop_config(WorkloadKind::WordCount), 42);
                (sys, ns)
            },
            |(mut sys, mut ns)| {
                ns.run(&mut sys, 10);
                black_box(ns.rounds())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_fig7_arm(c: &mut Criterion) {
    c.bench_function("fig7/default_arm_measurement", |b| {
        b.iter_batched(
            || {
                make_system(
                    WorkloadKind::PageAnalyze,
                    42,
                    paper_rate(WorkloadKind::PageAnalyze, 44),
                )
            },
            |mut sys| {
                black_box(
                    measure_config(&mut sys, &[20.5, 10.0], 6, 15)
                        .end_to_end
                        .mean,
                )
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_fig2_point,
    bench_fig3_point,
    bench_fig5_trace,
    bench_fig6_rounds,
    bench_fig7_arm
);
criterion_main!(benches);
