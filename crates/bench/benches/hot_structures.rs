//! Microbenches for the DES hot-path structures, one per optimization:
//! the calendar event queue vs the reference `BinaryHeap` queue, the
//! per-job stage-cost memo vs recomputing the cost kernel per task, the
//! ziggurat normal sampler, and the direct JSON writer/parser for the
//! wire-format boundary. These pin the wins the engine-level numbers in
//! `BENCH_perf.json` are built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nostop_core::listener::StatusReport;
use nostop_simcore::{BinaryHeapEventQueue, EventQueue, SimRng, SimTime};
use nostop_workloads::{CostModel, JobCostTable, WorkloadKind};
use std::hint::black_box;

/// A deterministic schedule shaped like the engine's access pattern:
/// rounds of task completions land within ~2 s of a sliding `now`, with an
/// occasional far batch timer, and each round drains everything due before
/// the next round. Returns `(per-round event times, round horizons)`.
fn event_rounds(per_round: usize) -> (Vec<Vec<SimTime>>, Vec<SimTime>) {
    const ROUNDS: usize = 128;
    let mut rng = SimRng::seed_from_u64(7);
    let mut times = Vec::with_capacity(ROUNDS);
    let mut horizons = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let now = round as f64 * 0.25;
        times.push(
            (0..per_round)
                .map(|_| {
                    let horizon = if rng.bernoulli(0.05) { 40.0 } else { 2.0 };
                    SimTime::from_secs_f64(now + rng.uniform(0.0, horizon))
                })
                .collect(),
        );
        horizons.push(SimTime::from_secs_f64(now + 0.25));
    }
    (times, horizons)
}

macro_rules! drive_queue {
    ($queue:expr, $times:expr, $horizons:expr) => {{
        let mut q = $queue;
        let mut acc = 0u64;
        for (round, horizon) in $times.iter().zip($horizons) {
            for (i, &t) in round.iter().enumerate() {
                q.schedule(t, i as u32);
            }
            while let Some((_, e)) = q.pop_until(*horizon) {
                acc = acc.wrapping_add(e as u64);
            }
        }
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e as u64);
        }
        acc
    }};
}

fn bench_event_queue(c: &mut Criterion) {
    // Two in-flight scales: ~32 events matches a light cell (one
    // completion per executor slot); ~512 matches heavy cells with deep
    // backlogs, where the heap's O(log n) shows and the wheel stays O(1).
    for per_round in [32usize, 512] {
        let (times, horizons) = event_rounds(per_round);
        let events: u64 = times.iter().map(|r| r.len() as u64).sum();
        let mut group = c.benchmark_group(format!("event_queue_{per_round}"));
        group.throughput(Throughput::Elements(events));
        group.bench_function("calendar", |b| {
            b.iter(|| black_box(drive_queue!(EventQueue::new(), times, &horizons)));
        });
        group.bench_function("binary_heap", |b| {
            b.iter(|| black_box(drive_queue!(BinaryHeapEventQueue::new(), times, &horizons)));
        });
        group.finish();
    }
}

fn bench_task_kernel(c: &mut Criterion) {
    // One job's worth of task costs: the memoized table computes each
    // stage class once, the old path re-derived the kernel per task.
    const TASKS_PER_STAGE: u32 = 64;
    const STAGES: u32 = 6;
    const RECORDS: u64 = 1_800_000;
    let cost = CostModel::preset(WorkloadKind::WordCount);
    let base = RECORDS / TASKS_PER_STAGE as u64;
    let mut group = c.benchmark_group("task_kernel");
    group.throughput(Throughput::Elements((TASKS_PER_STAGE * STAGES) as u64));
    group.bench_function("memoized_table", |b| {
        b.iter(|| {
            let table = JobCostTable::new(&cost, RECORDS, TASKS_PER_STAGE, STAGES);
            let mut acc = 0.0;
            for s in 0..STAGES {
                let sc = table.stage(s);
                for task in 0..TASKS_PER_STAGE {
                    let bucket = (task as u64 % 2) as usize;
                    acc += sc.cpu_us[bucket] + sc.shuffle_bytes[bucket];
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("per_task_kernel", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in 0..STAGES {
                for task in 0..TASKS_PER_STAGE {
                    let recs = base + task as u64 % 2;
                    let mut w = cost.task_cpu_us(recs);
                    if s + 1 == STAGES {
                        w += cost.sink_us(recs);
                    }
                    let shuffle = if s > 0 { cost.shuffle_bytes(recs) } else { 0.0 };
                    acc += w + shuffle;
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_normal_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("standard_normal", |b| {
        let mut rng = SimRng::seed_from_u64(11);
        b.iter(|| black_box(rng.standard_normal()));
    });
    group.bench_function("noise_factor", |b| {
        let mut rng = SimRng::seed_from_u64(11);
        b.iter(|| black_box(rng.noise_factor(0.08)));
    });
    group.finish();
}

fn bench_json_boundary(c: &mut Criterion) {
    let report = StatusReport {
        batch_id: 4217,
        submission_time_ms: 63_255_000,
        processing_start_time_ms: 63_255_040,
        processing_end_time_ms: 63_268_912,
        num_records: 1_800_000,
        arrived_records: 1_800_321,
        batch_interval_ms: 15_000,
        ingest_window_ms: 15_000,
        num_executors: 14,
        queued_batches: 2,
        executor_failures: 1,
    };
    let encoded = report.to_json();
    let mut group = c.benchmark_group("json_boundary");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("write_reuse_buffer", |b| {
        let mut buf = String::with_capacity(encoded.len());
        b.iter(|| {
            buf.clear();
            report.write_json(&mut buf);
            black_box(buf.len())
        });
    });
    group.bench_function("parse_canonical", |b| {
        b.iter(|| black_box(StatusReport::from_json(&encoded).expect("valid report")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_task_kernel,
    bench_normal_sampler,
    bench_json_boundary
);
criterion_main!(benches);
