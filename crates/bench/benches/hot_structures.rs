//! Microbenches for the DES hot-path structures, one per optimization:
//! the calendar event queue vs the reference `BinaryHeap` queue, the
//! per-job stage-cost memo vs recomputing the cost kernel per task, the
//! ziggurat normal sampler, and the direct JSON writer/parser for the
//! wire-format boundary. These pin the wins the engine-level numbers in
//! `BENCH_perf.json` are built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nostop_core::listener::StatusReport;
use nostop_simcore::{BinaryHeapEventQueue, EventQueue, SimDuration, SimRng, SimTime};
use nostop_workloads::{block_prefix, round_duration_us, CostModel, JobCostTable, WorkloadKind};
use spark_sim::cluster::Cluster;
use spark_sim::executor::ExecutorManager;
use spark_sim::noise::{NoiseModel, NoiseParams};
use spark_sim::scheduler::simulate_job;
use spark_sim::{JobScratch, SuperbatchArm, SuperbatchStats};
use std::hint::black_box;

/// A deterministic schedule shaped like the engine's access pattern:
/// rounds of task completions land within ~2 s of a sliding `now`, with an
/// occasional far batch timer, and each round drains everything due before
/// the next round. Returns `(per-round event times, round horizons)`.
fn event_rounds(per_round: usize) -> (Vec<Vec<SimTime>>, Vec<SimTime>) {
    const ROUNDS: usize = 128;
    let mut rng = SimRng::seed_from_u64(7);
    let mut times = Vec::with_capacity(ROUNDS);
    let mut horizons = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let now = round as f64 * 0.25;
        times.push(
            (0..per_round)
                .map(|_| {
                    let horizon = if rng.bernoulli(0.05) { 40.0 } else { 2.0 };
                    SimTime::from_secs_f64(now + rng.uniform(0.0, horizon))
                })
                .collect(),
        );
        horizons.push(SimTime::from_secs_f64(now + 0.25));
    }
    (times, horizons)
}

macro_rules! drive_queue {
    ($queue:expr, $times:expr, $horizons:expr) => {{
        let mut q = $queue;
        let mut acc = 0u64;
        for (round, horizon) in $times.iter().zip($horizons) {
            for (i, &t) in round.iter().enumerate() {
                q.schedule(t, i as u32);
            }
            while let Some((_, e)) = q.pop_until(*horizon) {
                acc = acc.wrapping_add(e as u64);
            }
        }
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e as u64);
        }
        acc
    }};
}

fn bench_event_queue(c: &mut Criterion) {
    // Two in-flight scales: ~32 events matches a light cell (one
    // completion per executor slot); ~512 matches heavy cells with deep
    // backlogs, where the heap's O(log n) shows and the wheel stays O(1).
    for per_round in [32usize, 512] {
        let (times, horizons) = event_rounds(per_round);
        let events: u64 = times.iter().map(|r| r.len() as u64).sum();
        let mut group = c.benchmark_group(format!("event_queue_{per_round}"));
        group.throughput(Throughput::Elements(events));
        group.bench_function("calendar", |b| {
            b.iter(|| black_box(drive_queue!(EventQueue::new(), times, &horizons)));
        });
        group.bench_function("binary_heap", |b| {
            b.iter(|| black_box(drive_queue!(BinaryHeapEventQueue::new(), times, &horizons)));
        });
        group.finish();
    }
}

fn bench_task_kernel(c: &mut Criterion) {
    // One job's worth of task costs: the memoized table computes each
    // stage class once, the old path re-derived the kernel per task.
    const TASKS_PER_STAGE: u32 = 64;
    const STAGES: u32 = 6;
    const RECORDS: u64 = 1_800_000;
    let cost = CostModel::preset(WorkloadKind::WordCount);
    let base = RECORDS / TASKS_PER_STAGE as u64;
    let mut group = c.benchmark_group("task_kernel");
    group.throughput(Throughput::Elements((TASKS_PER_STAGE * STAGES) as u64));
    group.bench_function("memoized_table", |b| {
        b.iter(|| {
            let table = JobCostTable::new(&cost, RECORDS, TASKS_PER_STAGE, STAGES);
            let mut acc = 0.0;
            for s in 0..STAGES {
                let sc = table.stage(s);
                for task in 0..TASKS_PER_STAGE {
                    let bucket = (task as u64 % 2) as usize;
                    acc += sc.cpu_us[bucket] + sc.shuffle_bytes[bucket];
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("per_task_kernel", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in 0..STAGES {
                for task in 0..TASKS_PER_STAGE {
                    let recs = base + task as u64 % 2;
                    let mut w = cost.task_cpu_us(recs);
                    if s + 1 == STAGES {
                        w += cost.sink_us(recs);
                    }
                    let shuffle = if s > 0 { cost.shuffle_bytes(recs) } else { 0.0 };
                    acc += w + shuffle;
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_normal_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("standard_normal", |b| {
        let mut rng = SimRng::seed_from_u64(11);
        b.iter(|| black_box(rng.standard_normal()));
    });
    group.bench_function("noise_factor", |b| {
        let mut rng = SimRng::seed_from_u64(11);
        b.iter(|| black_box(rng.noise_factor(0.08)));
    });
    group.finish();
}

fn bench_json_boundary(c: &mut Criterion) {
    let report = StatusReport {
        batch_id: 4217,
        submission_time_ms: 63_255_000,
        processing_start_time_ms: 63_255_040,
        processing_end_time_ms: 63_268_912,
        num_records: 1_800_000,
        arrived_records: 1_800_321,
        batch_interval_ms: 15_000,
        ingest_window_ms: 15_000,
        num_executors: 14,
        queued_batches: 2,
        executor_failures: 1,
    };
    let encoded = report.to_json();
    let mut group = c.benchmark_group("json_boundary");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("write_reuse_buffer", |b| {
        let mut buf = String::with_capacity(encoded.len());
        b.iter(|| {
            buf.clear();
            report.write_json(&mut buf);
            black_box(buf.len())
        });
    });
    group.bench_function("parse_canonical", |b| {
        b.iter(|| black_box(StatusReport::from_json(&encoded).expect("valid report")));
    });
    group.finish();
}

/// The superbatch arithmetic alone: one executor block of 75 tasks, closed
/// form (`block_prefix` over the pre-drawn noise burst) vs the exact
/// path's per-task arithmetic for the same quiet block (contention and
/// slowdown multiplies by 1.0, round-half-up quantization, busy
/// accumulation). The arithmetic is deliberately near-identical — the
/// closed form's engine-level win comes from skipping the per-task
/// contention/fault queries and memo machinery, which the job-level rows
/// below capture.
fn bench_superbatch_kernel(c: &mut Criterion) {
    const TASKS: usize = 75;
    let mut rng = SimRng::seed_from_u64(13);
    let mut factors = Vec::new();
    rng.fill_lognormal(-0.02, 0.2, TASKS, &mut factors);
    let (work0, work1) = (61_000.0f64, 61_800.0f64);
    let rem = 40u32;
    let mut group = c.benchmark_group("superbatch_kernel");
    group.throughput(Throughput::Elements(TASKS as u64));
    group.bench_function("closed_form_block", |b| {
        b.iter(|| {
            black_box(block_prefix(
                black_box(1_000_000),
                work0,
                work1,
                0,
                rem,
                &factors,
            ))
        });
    });
    group.bench_function("per_task_loop", |b| {
        b.iter(|| {
            let mut t = black_box(1_000_000u64);
            let mut busy = 0u64;
            for (i, &f) in factors.iter().enumerate() {
                let w = if (i as u32) < rem { work1 } else { work0 };
                let d = round_duration_us(w * f * black_box(1.0) * black_box(1.0));
                t += d;
                busy += d;
            }
            black_box((t, busy))
        });
    });
    group.finish();
}

/// The whole job: armed (per-block closed form) vs unarmed (exact per-task
/// loop) `simulate_job` on a quiet heterogeneous cluster — the end-to-end
/// form of the superbatch fast path, bit-identical by the differential
/// tests, measured here for speed.
fn bench_superbatch_job(c: &mut Criterion) {
    let mut m = ExecutorManager::new(Cluster::paper_heterogeneous(), SimDuration::ZERO);
    m.bootstrap(14);
    let cost = CostModel::preset(WorkloadKind::WordCount);
    let params = NoiseParams {
        contention_mean_gap_s: 1e9, // quiet by construction
        ..NoiseParams::default()
    };
    let mut group = c.benchmark_group("superbatch_job");
    group.throughput(Throughput::Elements(1));
    for (label, armed) in [("exact_per_task", false), ("closed_form_armed", true)] {
        group.bench_function(label, |b| {
            let mut noise = NoiseModel::new(params, 5, SimRng::seed_from_u64(11));
            let mut stats = SuperbatchStats::default();
            let mut scratch = JobScratch::new();
            let mut execs = m.executors().to_vec();
            b.iter(|| {
                let arm = armed.then_some(SuperbatchArm {
                    use_fast: true,
                    stats: &mut stats,
                });
                black_box(simulate_job(
                    &cost,
                    1_800_000,
                    SimDuration::from_secs(15),
                    SimDuration::from_millis(200),
                    SimTime::from_secs_f64(50.0),
                    &mut execs,
                    SimDuration::ZERO,
                    &mut noise,
                    2,
                    None,
                    &mut scratch,
                    None,
                    arm,
                    &nostop_obs::Recorder::disabled(),
                ))
            });
        });
    }
    group.finish();
}

/// The fleet fast path's per-boundary costs: the structural quiescence
/// probe the classifier runs on every parked tenant, and the
/// delta-driven arbiter barrier against the dense pass for a 100-tenant
/// fleet at a steady-demand barrier — the case the sparse entry point
/// exists for.
fn bench_fleet_fastpath(c: &mut Criterion) {
    use nostop_core::arbiter::{ArbiterPolicy, ResourceRequest};
    use spark_sim::arbiter::ExecutorArbiter;
    use spark_sim::fleet::{FleetSim, TenantSpec};

    // A parked steady tenant well into its periodic orbit: the probe is
    // what classification pays per tenant per boundary.
    let mut fleet = FleetSim::new(
        &[TenantSpec::steady(WorkloadKind::WordCount, 7, 0)],
        None,
        ArbiterPolicy::FairShare,
    );
    fleet.run_epochs(40);
    let engine = fleet.tenant_system(0).engine();
    let mut group = c.benchmark_group("fleet_quiescence");
    group.throughput(Throughput::Elements(1));
    group.bench_function("probe", |b| {
        b.iter(|| black_box(engine.quiescence_probe()));
    });
    group.finish();

    const TENANTS: u32 = 100;
    let reqs: Vec<ResourceRequest> = (0..TENANTS)
        .map(|t| ResourceRequest {
            tenant: t,
            priority: 1 + t % 5,
            want: 4 + t % 7,
        })
        .collect();
    let seeded = || {
        let mut arb = ExecutorArbiter::new(Some(1_000), ArbiterPolicy::FairShare, 3);
        arb.enable_ledger_checkpointing(4_096);
        arb.arbitrate(0, SimTime::ZERO, &reqs);
        arb
    };
    let mut group = c.benchmark_group("arbiter_barrier_100");
    group.throughput(Throughput::Elements(TENANTS as u64));
    group.bench_function("dense_unchanged", |b| {
        let mut arb = seeded();
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            black_box(arb.arbitrate(epoch, SimTime::from_secs_f64(epoch as f64), &reqs))
        });
    });
    group.bench_function("sparse_unchanged", |b| {
        let mut arb = seeded();
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            let grants = arb
                .arbitrate_sparse(epoch, SimTime::from_secs_f64(epoch as f64), &reqs, &[])
                .expect("steady barrier is licensed");
            black_box(grants)
        });
    });
    group.bench_function("sparse_one_changed", |b| {
        let mut arb = seeded();
        let mut reqs = reqs.clone();
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            reqs[0].want = 4 + (epoch % 2) as u32;
            let grants = arb
                .arbitrate_sparse(epoch, SimTime::from_secs_f64(epoch as f64), &reqs, &[0])
                .expect("single riser is licensed");
            black_box(grants)
        });
    });
    group.finish();
}

/// The incremental GP fast path against the O(n³) refit probe: one `add`
/// into a GP already holding `n` observations, plus the batched posterior
/// sweep BayesOpt runs per proposal. The two arms produce bitwise-
/// identical models (pinned by `tests/gp_differential.rs`); only the cost
/// differs — the ISSUE gate is incremental ≥5× at n = 256.
fn bench_gp_fast_path(c: &mut Criterion) {
    use criterion::BatchSize;
    use nostop_baselines::gp::{GaussianProcess, Kernel};

    let make_points = |count: usize, seed: u64| -> Vec<(Vec<f64>, f64)> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let x: Vec<f64> = (0..8).map(|_| rng.uniform(1.0, 20.0)).collect();
                let y = rng.uniform(-10.0, 10.0);
                (x, y)
            })
            .collect()
    };
    let seeded_gp = |n: usize, incremental: bool| -> GaussianProcess {
        let mut gp = GaussianProcess::new(Kernel::default()).with_incremental(incremental);
        for (x, y) in make_points(n, 17) {
            gp.add(x, y);
        }
        gp
    };

    for n in [64usize, 256] {
        let (next_x, next_y) = make_points(1, 99).pop().expect("one point");
        let mut group = c.benchmark_group(format!("gp_add_{n}"));
        group.throughput(Throughput::Elements(1));
        for (label, incremental) in [("incremental", true), ("refit", false)] {
            let base = seeded_gp(n, incremental);
            group.bench_function(label, |b| {
                b.iter_batched(
                    || base.clone(),
                    |mut gp| {
                        gp.add(next_x.clone(), next_y);
                        black_box(gp.len())
                    },
                    BatchSize::SmallInput,
                );
            });
        }
        group.finish();
    }

    // The per-proposal scoring sweep: 128 candidates through one batched
    // forward-solve pass vs 128 independent posterior calls.
    const CANDIDATES: usize = 128;
    let gp = seeded_gp(256, true);
    let cands: Vec<Vec<f64>> = make_points(CANDIDATES, 23)
        .into_iter()
        .map(|(x, _)| x)
        .collect();
    let mut group = c.benchmark_group("gp_posterior_128");
    group.throughput(Throughput::Elements(CANDIDATES as u64));
    group.bench_function("batched", |b| {
        b.iter(|| black_box(gp.posterior_batch(&cands)));
    });
    group.bench_function("per_point", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cand in &cands {
                let (m, v) = gp.posterior(cand);
                acc += m + v;
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_task_kernel,
    bench_normal_sampler,
    bench_json_boundary,
    bench_superbatch_kernel,
    bench_superbatch_job,
    bench_fleet_fastpath,
    bench_gp_fast_path
);
criterion_main!(benches);
