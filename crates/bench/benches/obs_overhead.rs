//! Observability overhead: the disabled path must be free.
//!
//! The acceptance bar for the trace layer is that an engine with the
//! default (disabled) recorder runs within noise of the pre-obs engine —
//! each instrumented site costs one predictable cold branch. The
//! `disabled` arm here is the number compared against the committed
//! `engine_throughput` baseline; the `ring` arm prices what turning the
//! recorder on actually costs, so the gap between the two is the full
//! instrumentation bill. Built with `--features obs-off`, both arms
//! compile to the identical uninstrumented binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nostop_datagen::rate::ConstantRate;
use nostop_obs::Recorder;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, StreamConfig, StreamingEngine};
use std::hint::black_box;

const BATCHES: u64 = 50;

fn engine_for(kind: WorkloadKind) -> StreamingEngine {
    let (lo, hi) = kind.paper_rate_range();
    StreamingEngine::new(
        EngineParams::paper(kind, 42),
        StreamConfig::new(SimDuration::from_secs_f64(10.0), 16),
        Box::new(ConstantRate::new((lo + hi) / 2.0)),
    )
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(BATCHES));
    for kind in [WorkloadKind::WordCount, WorkloadKind::LogisticRegression] {
        group.bench_function(format!("{}/disabled", kind.name()), |b| {
            b.iter_batched(
                || engine_for(kind),
                |mut engine| {
                    engine.run_batches(BATCHES);
                    black_box(engine.listener().completed())
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("{}/ring", kind.name()), |b| {
            b.iter_batched(
                || {
                    let mut engine = engine_for(kind);
                    engine.set_recorder(&Recorder::ring(1 << 14));
                    engine
                },
                |mut engine| {
                    engine.run_batches(BATCHES);
                    black_box(engine.listener().completed())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
