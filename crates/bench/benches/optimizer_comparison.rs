//! Decision-compute cost: SPSA vs the alternatives (supports Fig. 8).
//!
//! The Fig-8 "search time" gap has two components. The measurement cost
//! (streaming time under perturbed configurations) is covered by the
//! `fig8` binary; this bench isolates the *decision* cost per iteration:
//! an SPSA step is a handful of float ops, while BO refits a GP — an
//! O(n³) Cholesky whose n grows every iteration — and maximizes EI over a
//! candidate pool. FDSA is included to show the 2-vs-2p measurement
//! economics SPSA brings (§4.2.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nostop_baselines::gp::{GaussianProcess, Kernel};
use nostop_baselines::{BayesOpt, Tuner};
use nostop_core::sa::{Fdsa, GainSchedule, Spsa, SpsaParams};
use nostop_core::space::ConfigSpace;
use nostop_simcore::SimRng;
use std::hint::black_box;

fn bench_decision_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_per_iteration");

    group.bench_function("spsa_dim2", |b| {
        let mut spsa = Spsa::new(
            SpsaParams::paper_default(2),
            vec![10.0, 10.0],
            SimRng::seed_from_u64(1),
        );
        b.iter(|| {
            let p = spsa.propose();
            black_box(spsa.update(&p, 11.0, 12.0));
        });
    });

    // BO with a model already holding n observations: one propose+observe.
    for n in [10usize, 50, 150] {
        group.bench_function(format!("bayesopt_n{n}"), |b| {
            b.iter_batched(
                || {
                    let mut bo = BayesOpt::new(ConfigSpace::paper_default(), 3);
                    let mut rng = SimRng::seed_from_u64(5);
                    for _ in 0..n {
                        let p = bo.propose();
                        let y = p[0] + rng.uniform(0.0, 2.0);
                        bo.observe(&p, y);
                    }
                    bo
                },
                |mut bo| {
                    let p = bo.propose();
                    bo.observe(&p, black_box(12.0));
                    black_box(bo.evaluations())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_measurement_economics(c: &mut Criterion) {
    // Count objective evaluations to reach a fixed quality on a noisy
    // quadratic: SPSA needs 2/iteration, FDSA 2p — at p = 5 parameters
    // (the paper's future work regime) the gap is the whole point.
    let mut group = c.benchmark_group("evals_to_converge_dim5");
    let target = [4.0, 16.0, 10.0, 7.0, 12.0];
    let objective = move |theta: &[f64], noise: &mut SimRng| {
        theta
            .iter()
            .zip(&target)
            .map(|(t, c)| (t - c).powi(2))
            .sum::<f64>()
            + noise.normal(0.0, 0.5)
    };
    group.bench_function("spsa_100_iters", |b| {
        b.iter_batched(
            || {
                (
                    Spsa::new(
                        SpsaParams {
                            gains: GainSchedule {
                                a: 2.0,
                                big_a: 10.0,
                                c: 1.0,
                                alpha: 0.602,
                                gamma: 0.101,
                            },
                            lower: vec![1.0; 5],
                            upper: vec![20.0; 5],
                            max_step: None,
                        },
                        vec![10.0; 5],
                        SimRng::seed_from_u64(2),
                    ),
                    SimRng::seed_from_u64(9),
                )
            },
            |(mut spsa, mut noise)| black_box(spsa.run(100, |t| objective(t, &mut noise))),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("fdsa_100_iters", |b| {
        b.iter_batched(
            || {
                (
                    Fdsa::new(
                        nostop_core::sa::fdsa::FdsaParams {
                            gains: GainSchedule {
                                a: 2.0,
                                big_a: 10.0,
                                c: 1.0,
                                alpha: 0.602,
                                gamma: 0.101,
                            },
                            lower: vec![1.0; 5],
                            upper: vec![20.0; 5],
                        },
                        vec![10.0; 5],
                    ),
                    SimRng::seed_from_u64(9),
                )
            },
            |(mut fdsa, mut noise)| black_box(fdsa.run(100, |t| objective(t, &mut noise))),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_gp_fit_scaling(c: &mut Criterion) {
    // The O(n³) refit BO pays on every observation.
    let mut group = c.benchmark_group("gp_refit");
    for n in [25usize, 100, 200] {
        group.bench_function(format!("n{n}"), |b| {
            let mut rng = SimRng::seed_from_u64(4);
            let points: Vec<(Vec<f64>, f64)> = (0..n)
                .map(|_| {
                    let x = vec![rng.uniform(1.0, 20.0), rng.uniform(1.0, 20.0)];
                    let y = x[0] + x[1];
                    (x, y)
                })
                .collect();
            b.iter_batched(
                || points.clone(),
                |pts| {
                    let mut gp = GaussianProcess::new(Kernel::default());
                    for (x, y) in pts {
                        gp.add(x, y);
                    }
                    black_box(gp.posterior(&[10.0, 10.0]))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decision_cost,
    bench_measurement_economics,
    bench_gp_fit_scaling
);
criterion_main!(benches);
