//! Real workload kernel throughput.
//!
//! The four executable kernels (SGD logistic/linear regression, wordcount,
//! nginx log analysis) back the examples and calibrate the cost models;
//! this bench records their per-record cost so the DESIGN.md substitution
//! table can cite measured numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nostop_datagen::{RecordGenerator, RecordKind};
use nostop_simcore::SimRng;
use nostop_workloads::{
    LogAnalyzer, StreamingJob, StreamingLinearRegression, StreamingLogisticRegression, WordCount,
};
use std::hint::black_box;

const BATCH: usize = 2_000;

fn records(kind: RecordKind) -> Vec<nostop_datagen::Record> {
    RecordGenerator::new(kind, 8, SimRng::seed_from_u64(7)).take(BATCH)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Elements(BATCH as u64));

    let lr_data = records(RecordKind::LabelledPoint);
    group.bench_function("logistic_regression_batch", |b| {
        b.iter_batched(
            || StreamingLogisticRegression::new(8),
            |mut job| black_box(job.process_batch(&lr_data)),
            BatchSize::SmallInput,
        );
    });

    let lin_data = records(RecordKind::RegressionPoint);
    group.bench_function("linear_regression_batch", |b| {
        b.iter_batched(
            || StreamingLinearRegression::new(8),
            |mut job| black_box(job.process_batch(&lin_data)),
            BatchSize::SmallInput,
        );
    });

    let wc_data = records(RecordKind::TextLine);
    group.bench_function("wordcount_batch", |b| {
        b.iter_batched(
            WordCount::new,
            |mut job| black_box(job.process_batch(&wc_data)),
            BatchSize::SmallInput,
        );
    });

    let log_data = records(RecordKind::NginxLog);
    group.bench_function("log_analyze_batch", |b| {
        b.iter_batched(
            LogAnalyzer::new,
            |mut job| black_box(job.process_batch(&log_data)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_record_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.throughput(Throughput::Elements(BATCH as u64));
    for kind in [
        RecordKind::LabelledPoint,
        RecordKind::TextLine,
        RecordKind::NginxLog,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            let mut gen = RecordGenerator::new(kind, 8, SimRng::seed_from_u64(3));
            b.iter(|| black_box(gen.take(BATCH).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_record_generation);
criterion_main!(benches);
