//! Ablation — gain-sequence choices (§5.6).
//!
//! The paper's guidelines: `A` ≈ 10% of expected iterations (they use 1),
//! `a` ≈ half the scaled configuration range (they use 10), `c` ≈ the
//! std-dev of objective measurements (they use 2). This sweep shows what
//! happens when those guidelines are ignored: a too-small `a` crawls, a
//! too-large one thrashes against the bounds; a too-small `c` makes the
//! gradient estimate noise-dominated.
//!
//! Each `((a, c), seed)` pair is an independent cell on the
//! [`nostop_bench::parallel`] fabric; the table is identical for any
//! `NOSTOP_JOBS`.

use nostop_bench::driver::{make_system, nostop_config, paper_rate};
use nostop_bench::parallel::{grid, map_cells};
use nostop_bench::report::{f, print_section, Table};
use nostop_core::controller::NoStop;
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const KIND: WorkloadKind = WorkloadKind::LogisticRegression;
const SEEDS: [u64; 3] = [5, 15, 25];
const ROUNDS: u64 = 40;

const SETTINGS: [(f64, f64); 5] = [
    (10.0, 2.0), // paper setting
    (2.0, 2.0),  // timid steps
    (40.0, 2.0), // wild steps
    (10.0, 0.3), // perturbation below noise
    (10.0, 6.0), // huge perturbation
];

fn run_with(a: f64, c: f64, seed: u64) -> (Option<u64>, f64) {
    let mut cfg = nostop_config(KIND);
    cfg.gains.a = a;
    cfg.gains.c = c;
    let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0x6A1));
    let mut ns = NoStop::new(cfg, seed);
    ns.run(&mut sys, ROUNDS);
    let converged = ns
        .trace()
        .rounds
        .iter()
        .find(|r| r.paused_after)
        .map(|r| r.round);
    // Mean intrinsic-style delay over the last 10 recorded delays.
    let delays: Vec<f64> = ns.trace().delay_series().iter().map(|&(_, d)| d).collect();
    let tail: Vec<f64> = delays.iter().rev().take(10).copied().collect();
    let mean_tail = if tail.is_empty() {
        f64::NAN
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    (converged, mean_tail)
}

fn main() {
    let cells = grid(&SETTINGS, &SEEDS);
    let results = map_cells(&cells, |&((a, c), seed)| run_with(a, c, seed));

    let mut table = Table::new(&[
        "a",
        "c",
        "converged runs",
        "mean converge round",
        "tail delay_s (mean over seeds)",
    ]);
    for (s, &(a, c)) in SETTINGS.iter().enumerate() {
        let per_seed = &results[s * SEEDS.len()..(s + 1) * SEEDS.len()];
        let mut converge_rounds = Vec::new();
        let mut tails = Vec::new();
        let mut converged_count = 0;
        for &(conv, tail) in per_seed {
            if let Some(r) = conv {
                converged_count += 1;
                converge_rounds.push(r as f64);
            }
            if tail.is_finite() {
                tails.push(tail);
            }
        }
        let cr = summarize(&converge_rounds);
        let td = summarize(&tails);
        table.row(&[
            f(a, 1),
            f(c, 1),
            format!("{converged_count}/{}", SEEDS.len()),
            if converge_rounds.is_empty() {
                "-".into()
            } else {
                f(cr.mean, 1)
            },
            f(td.mean, 1),
        ]);
    }
    print_section(
        "Ablation §5.6: gain-sequence choices (logistic regression, 40 rounds, 3 seeds)",
        &table,
    );
    println!("paper guideline row is (a=10, c=2); deviations converge later or to worse delays");
}
