//! Ablation — first-order vs second-order SPSA driving the controller.
//!
//! 2SPSA (an extension beyond the paper) spends four measurement windows
//! per round instead of two, buying a Hessian-preconditioned step. On the
//! paper's 2-D normalized space the conditioning is mild, so this is a
//! fairness check more than a victory lap: does the extra measurement cost
//! pay for itself online?

use nostop_bench::driver::{make_system, nostop_config, paper_rate};
use nostop_bench::report::{f, pm, print_section, Table};
use nostop_core::controller::{NoStop, OptimizerKind};
use nostop_core::trace::RoundKind;
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const SEEDS: [u64; 4] = [8, 18, 28, 38];
const KIND: WorkloadKind = WorkloadKind::WordCount;
/// Equal measurement budgets: 2SPSA rounds cost 2× the windows.
const FIRST_ORDER_ROUNDS: u64 = 40;
const SECOND_ORDER_ROUNDS: u64 = 20;

struct Outcome {
    best_intrinsic: Vec<f64>,
    converged: usize,
    search_time: Vec<f64>,
}

fn run(kind: OptimizerKind) -> Outcome {
    let rounds = match kind {
        OptimizerKind::FirstOrder => FIRST_ORDER_ROUNDS,
        OptimizerKind::SecondOrder => SECOND_ORDER_ROUNDS,
    };
    let mut out = Outcome {
        best_intrinsic: vec![],
        converged: 0,
        search_time: vec![],
    };
    for &seed in &SEEDS {
        let mut cfg = nostop_config(KIND);
        cfg.optimizer = kind;
        let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0x2A));
        let mut ns = NoStop::new(cfg, seed);
        ns.run(&mut sys, rounds);
        if let Some((_, delay)) = ns.best_config() {
            out.best_intrinsic.push(delay);
        }
        if let Some(r) = ns
            .trace()
            .rounds
            .iter()
            .find(|r| matches!(r.kind, RoundKind::Optimized { .. }) && r.paused_after)
        {
            out.converged += 1;
            out.search_time.push(r.t_s);
        }
    }
    out
}

fn main() {
    let mut table = Table::new(&[
        "optimizer",
        "windows/round",
        "best intrinsic delay_s",
        "converged runs",
        "search time_s",
    ]);
    for (name, kind, windows) in [
        ("1SPSA (paper)", OptimizerKind::FirstOrder, 2),
        ("2SPSA (extension)", OptimizerKind::SecondOrder, 4),
    ] {
        let o = run(kind);
        let d = summarize(&o.best_intrinsic);
        let t = summarize(&o.search_time);
        table.row(&[
            name.to_string(),
            windows.to_string(),
            pm(d.mean, d.std_dev, 1),
            format!("{}/{}", o.converged, SEEDS.len()),
            if o.search_time.is_empty() {
                "-".into()
            } else {
                f(t.mean, 0)
            },
        ]);
    }
    print_section(
        "Ablation: 1SPSA vs 2SPSA controller (WordCount, equal measurement budgets)",
        &table,
    );
    println!(
        "on the paper's well-normalized 2-D space the extra Hessian probes \
         rarely pay; 2SPSA's value is gain-tuning robustness and higher-\
         dimensional spaces (see sa::second_order tests)"
    );
}
