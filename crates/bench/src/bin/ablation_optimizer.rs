//! Ablation — first-order vs second-order SPSA driving the controller.
//!
//! 2SPSA (an extension beyond the paper) spends four measurement windows
//! per round instead of two, buying a Hessian-preconditioned step. On the
//! paper's 2-D normalized space the conditioning is mild, so this is a
//! fairness check more than a victory lap: does the extra measurement cost
//! pay for itself online?
//!
//! Each `(optimizer, seed)` pair is an independent cell on the
//! [`nostop_bench::parallel`] fabric; per-seed numbers merge in grid order
//! so the table is identical for any `NOSTOP_JOBS`.

use nostop_bench::driver::{make_system, nostop_config, paper_rate};
use nostop_bench::parallel::{grid, map_cells};
use nostop_bench::report::{f, pm, print_section, Table};
use nostop_core::controller::{NoStop, OptimizerKind};
use nostop_core::trace::RoundKind;
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const SEEDS: [u64; 4] = [8, 18, 28, 38];
const KIND: WorkloadKind = WorkloadKind::WordCount;
/// Equal measurement budgets: 2SPSA rounds cost 2× the windows.
const FIRST_ORDER_ROUNDS: u64 = 40;
const SECOND_ORDER_ROUNDS: u64 = 20;

/// One `(optimizer, seed)` run: best intrinsic delay (if any) and the
/// convergence time (if the run paused after an optimized round).
fn run_cell(kind: OptimizerKind, seed: u64) -> (Option<f64>, Option<f64>) {
    let rounds = match kind {
        OptimizerKind::FirstOrder => FIRST_ORDER_ROUNDS,
        OptimizerKind::SecondOrder => SECOND_ORDER_ROUNDS,
    };
    let mut cfg = nostop_config(KIND);
    cfg.optimizer = kind;
    let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0x2A));
    let mut ns = NoStop::new(cfg, seed);
    ns.run(&mut sys, rounds);
    let best = ns.best_config().map(|(_, delay)| delay);
    let search_time = ns
        .trace()
        .rounds
        .iter()
        .find(|r| matches!(r.kind, RoundKind::Optimized { .. }) && r.paused_after)
        .map(|r| r.t_s);
    (best, search_time)
}

fn main() {
    const KINDS: [OptimizerKind; 2] = [OptimizerKind::FirstOrder, OptimizerKind::SecondOrder];
    let cells = grid(&KINDS, &SEEDS);
    let results = map_cells(&cells, |&(kind, seed)| run_cell(kind, seed));

    let mut table = Table::new(&[
        "optimizer",
        "windows/round",
        "best intrinsic delay_s",
        "converged runs",
        "search time_s",
    ]);
    for (k, (name, windows)) in [("1SPSA (paper)", 2), ("2SPSA (extension)", 4)]
        .iter()
        .enumerate()
    {
        let per_seed = &results[k * SEEDS.len()..(k + 1) * SEEDS.len()];
        let best_intrinsic: Vec<f64> = per_seed.iter().filter_map(|&(b, _)| b).collect();
        let search_time: Vec<f64> = per_seed.iter().filter_map(|&(_, t)| t).collect();
        let converged = search_time.len();
        let d = summarize(&best_intrinsic);
        let t = summarize(&search_time);
        table.row(&[
            name.to_string(),
            windows.to_string(),
            pm(d.mean, d.std_dev, 1),
            format!("{}/{}", converged, SEEDS.len()),
            if search_time.is_empty() {
                "-".into()
            } else {
                f(t.mean, 0)
            },
        ]);
    }
    print_section(
        "Ablation: 1SPSA vs 2SPSA controller (WordCount, equal measurement budgets)",
        &table,
    );
    println!(
        "on the paper's well-normalized 2-D space the extra Hessian probes \
         rarely pay; 2SPSA's value is gain-tuning robustness and higher-\
         dimensional spaces (see sa::second_order tests)"
    );
}
