//! Ablation — the ρ penalty ramp and cap (§4.2.2).
//!
//! The paper ramps ρ from 1 to 2 by 0.1/iteration: a small early ρ keeps
//! the first (large-gain) steps from overshooting; the later cap keeps the
//! stability penalty from drowning the interval-minimization goal. This
//! sweep compares: no penalty at all (constraint ignored), fixed large ρ
//! from the start, the paper's ramp, and an enormous cap.

use nostop_bench::driver::{make_system, nostop_config, paper_rate};
use nostop_bench::report::{f, print_section, Table};
use nostop_core::controller::NoStop;
use nostop_core::objective::PenaltySchedule;
use nostop_core::trace::RoundKind;
use nostop_workloads::WorkloadKind;

const KIND: WorkloadKind = WorkloadKind::LogisticRegression;
const SEEDS: [u64; 3] = [9, 19, 29];
const ROUNDS: u64 = 40;

struct Outcome {
    stable_frac: f64,
    mean_interval: f64,
    converged: usize,
}

fn run_with(penalty: PenaltySchedule) -> Outcome {
    let mut stable = 0usize;
    let mut total = 0usize;
    let mut intervals = Vec::new();
    let mut converged = 0;
    for &seed in &SEEDS {
        let mut cfg = nostop_config(KIND);
        cfg.penalty = penalty;
        let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0xABA));
        let mut ns = NoStop::new(cfg, seed);
        ns.run(&mut sys, ROUNDS);
        if ns.trace().rounds.iter().any(|r| r.paused_after) {
            converged += 1;
        }
        // Judge the tail iterates: were the measured configs stable, and
        // how small an interval was achieved?
        for r in ns.trace().rounds.iter().rev().take(10) {
            if let RoundKind::Optimized { plus, minus, .. } = &r.kind {
                for m in [plus, minus] {
                    total += 1;
                    if m.processing_s <= m.interval_s {
                        stable += 1;
                    }
                }
                intervals.push(r.theta_physical[0]);
            } else if let RoundKind::Paused { observed } = &r.kind {
                total += 1;
                if observed.processing_s <= observed.interval_s {
                    stable += 1;
                }
                intervals.push(r.theta_physical[0]);
            }
        }
    }
    Outcome {
        stable_frac: if total == 0 {
            0.0
        } else {
            stable as f64 / total as f64
        },
        mean_interval: if intervals.is_empty() {
            f64::NAN
        } else {
            intervals.iter().sum::<f64>() / intervals.len() as f64
        },
        converged,
    }
}

fn main() {
    let mut table = Table::new(&[
        "penalty",
        "tail stable frac",
        "tail mean interval_s",
        "converged runs",
    ]);
    for (name, p) in [
        (
            "none (rho=0.01 fixed)",
            PenaltySchedule::new(0.01, 0.0, 0.01),
        ),
        ("paper ramp 1->2 by 0.1", PenaltySchedule::paper_default()),
        (
            "fixed rho=2 from start",
            PenaltySchedule::new(2.0, 0.0, 2.0),
        ),
        ("huge cap 1->10", PenaltySchedule::new(1.0, 0.5, 10.0)),
    ] {
        let o = run_with(p);
        table.row(&[
            name.to_string(),
            f(o.stable_frac, 2),
            f(o.mean_interval, 1),
            format!("{}/{}", o.converged, SEEDS.len()),
        ]);
    }
    print_section(
        "Ablation §4.2.2: penalty schedule (logistic regression, 40 rounds, 3 seeds)",
        &table,
    );
    println!(
        "no penalty drives the interval down through the stability \
         constraint; the paper's capped ramp balances stability against \
         interval minimization"
    );
}
