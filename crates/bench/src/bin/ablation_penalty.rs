//! Ablation — the ρ penalty ramp and cap (§4.2.2).
//!
//! The paper ramps ρ from 1 to 2 by 0.1/iteration: a small early ρ keeps
//! the first (large-gain) steps from overshooting; the later cap keeps the
//! stability penalty from drowning the interval-minimization goal. This
//! sweep compares: no penalty at all (constraint ignored), fixed large ρ
//! from the start, the paper's ramp, and an enormous cap.
//!
//! Each `(schedule, seed)` pair is an independent cell on the
//! [`nostop_bench::parallel`] fabric; per-seed tallies merge in grid order
//! so the table is identical for any `NOSTOP_JOBS`.

use nostop_bench::driver::{make_system, nostop_config, paper_rate};
use nostop_bench::parallel::{grid, map_cells};
use nostop_bench::report::{f, print_section, Table};
use nostop_core::controller::NoStop;
use nostop_core::objective::PenaltySchedule;
use nostop_core::trace::RoundKind;
use nostop_workloads::WorkloadKind;

const KIND: WorkloadKind = WorkloadKind::LogisticRegression;
const SEEDS: [u64; 3] = [9, 19, 29];
const ROUNDS: u64 = 40;

/// One `(schedule, seed)` run's tallies: stable measurements, total
/// measurements, the tail intervals, and whether the run converged.
struct CellOutcome {
    stable: usize,
    total: usize,
    intervals: Vec<f64>,
    converged: bool,
}

fn run_cell(penalty: PenaltySchedule, seed: u64) -> CellOutcome {
    let mut cfg = nostop_config(KIND);
    cfg.penalty = penalty;
    let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0xABA));
    let mut ns = NoStop::new(cfg, seed);
    ns.run(&mut sys, ROUNDS);
    let converged = ns.trace().rounds.iter().any(|r| r.paused_after);
    // Judge the tail iterates: were the measured configs stable, and how
    // small an interval was achieved?
    let mut stable = 0usize;
    let mut total = 0usize;
    let mut intervals = Vec::new();
    for r in ns.trace().rounds.iter().rev().take(10) {
        if let RoundKind::Optimized { plus, minus, .. } = &r.kind {
            for m in [plus, minus] {
                total += 1;
                if m.processing_s <= m.interval_s {
                    stable += 1;
                }
            }
            intervals.push(r.theta_physical[0]);
        } else if let RoundKind::Paused { observed } = &r.kind {
            total += 1;
            if observed.processing_s <= observed.interval_s {
                stable += 1;
            }
            intervals.push(r.theta_physical[0]);
        }
    }
    CellOutcome {
        stable,
        total,
        intervals,
        converged,
    }
}

fn main() {
    let variants: [(&str, PenaltySchedule); 4] = [
        (
            "none (rho=0.01 fixed)",
            PenaltySchedule::new(0.01, 0.0, 0.01),
        ),
        ("paper ramp 1->2 by 0.1", PenaltySchedule::paper_default()),
        (
            "fixed rho=2 from start",
            PenaltySchedule::new(2.0, 0.0, 2.0),
        ),
        ("huge cap 1->10", PenaltySchedule::new(1.0, 0.5, 10.0)),
    ];
    let schedules: Vec<PenaltySchedule> = variants.iter().map(|&(_, p)| p).collect();
    let cells = grid(&schedules, &SEEDS);
    let results = map_cells(&cells, |&(p, seed)| run_cell(p, seed));

    let mut table = Table::new(&[
        "penalty",
        "tail stable frac",
        "tail mean interval_s",
        "converged runs",
    ]);
    for (v, &(name, _)) in variants.iter().enumerate() {
        let per_seed = &results[v * SEEDS.len()..(v + 1) * SEEDS.len()];
        let stable: usize = per_seed.iter().map(|o| o.stable).sum();
        let total: usize = per_seed.iter().map(|o| o.total).sum();
        let intervals: Vec<f64> = per_seed.iter().flat_map(|o| o.intervals.clone()).collect();
        let converged = per_seed.iter().filter(|o| o.converged).count();
        let stable_frac = if total == 0 {
            0.0
        } else {
            stable as f64 / total as f64
        };
        let mean_interval = if intervals.is_empty() {
            f64::NAN
        } else {
            intervals.iter().sum::<f64>() / intervals.len() as f64
        };
        table.row(&[
            name.to_string(),
            f(stable_frac, 2),
            f(mean_interval, 1),
            format!("{}/{}", converged, SEEDS.len()),
        ]);
    }
    print_section(
        "Ablation §4.2.2: penalty schedule (logistic regression, 40 rounds, 3 seeds)",
        &table,
    );
    println!(
        "no penalty drives the interval down through the stability \
         constraint; the paper's capped ramp balances stability against \
         interval minimization"
    );
}
