//! Ablation — the input-rate reset rule (§5.5).
//!
//! Scenario: streaming linear regression converges under its normal rate,
//! then a 2× surge hits (the e-commerce promotion). With the reset rule,
//! NoStop
//! restarts the optimization with fresh (large) gains and re-converges;
//! without it, the late-k gain sequence is so small that the controller
//! crawls toward the new optimum. The binary reports the delay evolution
//! after the surge under both variants.
//!
//! Each `(variant, seed)` pair is an independent cell on the
//! [`nostop_bench::parallel`] fabric; per-seed outcomes merge in grid
//! order so the table is identical for any `NOSTOP_JOBS`.

use nostop_bench::driver::{make_system, nostop_config, surge_rate};
use nostop_bench::parallel::{grid, map_cells};
use nostop_bench::report::{f, print_section, Table};
use nostop_core::controller::NoStop;
use nostop_core::trace::RoundKind;
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const KIND: WorkloadKind = WorkloadKind::LinearRegression;
const SEEDS: [u64; 3] = [3, 13, 23];
const SURGE_ONSET_S: f64 = 4_000.0;
const SURGE_MAGNITUDE: f64 = 2.0;
const SURGE_SECS: f64 = 100_000.0; // effectively permanent regime change
const ROUNDS: u64 = 130;

struct Outcome {
    resets: usize,
    post_surge_stable_frac: f64,
    post_surge_tail_delay: f64,
    /// Virtual seconds from surge onset to the first clean converged
    /// observation (paused, queue drained) — the recovery time.
    recovery_s: Option<f64>,
}

fn run(with_reset: bool, with_wake: bool, seed: u64) -> Outcome {
    let mut cfg = nostop_config(KIND);
    if !with_reset {
        // Effectively disable the rule (both detectors).
        cfg.reset_threshold_speed = f64::MAX / 4.0;
        cfg.reset_relative = false;
        cfg.reset_level_fraction = None;
    }
    if !with_wake {
        // A paused controller that never wakes — no adaptation mechanism
        // at all once converged (the regime the paper's §5.5 motivation
        // describes).
        cfg.unpause_instability_factor = f64::MAX / 4.0;
    }
    let rate = surge_rate(
        KIND,
        seed ^ 0x5E7,
        SURGE_MAGNITUDE,
        SURGE_ONSET_S,
        SURGE_SECS,
    );
    let mut sys = make_system(KIND, seed, rate);
    let mut ns = NoStop::new(cfg, seed);
    ns.run(&mut sys, ROUNDS);

    let mut stable = 0usize;
    let mut total = 0usize;
    let mut tail = Vec::new();
    let mut recovery_s = None;
    for r in &ns.trace().rounds {
        if r.t_s < SURGE_ONSET_S + 500.0 {
            continue; // pre-surge and immediate transient
        }
        match &r.kind {
            RoundKind::Optimized { plus, minus, .. } => {
                for m in [plus, minus] {
                    total += 1;
                    if m.processing_s <= m.interval_s {
                        stable += 1;
                    }
                }
            }
            RoundKind::Paused { observed } => {
                total += 1;
                if observed.processing_s <= observed.interval_s {
                    stable += 1;
                }
                tail.push(observed.end_to_end_s);
                if recovery_s.is_none() && observed.scheduling_delay_s < 0.5 * observed.interval_s {
                    recovery_s = Some(r.t_s - SURGE_ONSET_S);
                }
            }
            _ => {}
        }
    }
    let tail_delay = if tail.is_empty() {
        f64::NAN
    } else {
        let last: Vec<f64> = tail.iter().rev().take(8).copied().collect();
        last.iter().sum::<f64>() / last.len() as f64
    };
    Outcome {
        recovery_s,
        resets: ns.trace().resets(),
        post_surge_stable_frac: if total == 0 {
            0.0
        } else {
            stable as f64 / total as f64
        },
        post_surge_tail_delay: tail_delay,
    }
}

fn main() {
    const VARIANTS: [(&str, bool, bool); 4] = [
        ("reset + wake (default)", true, true),
        ("wake only", false, true),
        ("reset only", true, false),
        ("neither (frozen pause)", false, false),
    ];
    let arms: Vec<(bool, bool)> = VARIANTS.iter().map(|&(_, r, w)| (r, w)).collect();
    let cells = grid(&arms, &SEEDS);
    let results = map_cells(&cells, |&((with_reset, with_wake), seed)| {
        run(with_reset, with_wake, seed)
    });

    let mut table = Table::new(&[
        "variant",
        "resets fired",
        "post-surge stable frac",
        "recovery time_s",
        "post-surge converged delay_s",
    ]);
    for (v, &(name, _, _)) in VARIANTS.iter().enumerate() {
        let per_seed = &results[v * SEEDS.len()..(v + 1) * SEEDS.len()];
        let mut resets = 0;
        let mut fracs = Vec::new();
        let mut delays = Vec::new();
        let mut recoveries = Vec::new();
        for o in per_seed {
            resets += o.resets;
            fracs.push(o.post_surge_stable_frac);
            if o.post_surge_tail_delay.is_finite() {
                delays.push(o.post_surge_tail_delay);
            }
            if let Some(rec) = o.recovery_s {
                recoveries.push(rec);
            }
        }
        let fr = summarize(&fracs);
        let dl = summarize(&delays);
        let rc = summarize(&recoveries);
        table.row(&[
            name.to_string(),
            resets.to_string(),
            f(fr.mean, 2),
            if recoveries.is_empty() {
                "never".into()
            } else {
                format!(
                    "{} ({}/{} runs)",
                    f(rc.mean, 0),
                    recoveries.len(),
                    SEEDS.len()
                )
            },
            if delays.is_empty() {
                "never re-converged".into()
            } else {
                f(dl.mean, 1)
            },
        ]);
    }
    print_section(
        "Ablation §5.5: reset rule under a 2x permanent surge \
         (linear regression, 3 seeds, 130 rounds)",
        &table,
    );
    println!(
        "with neither mechanism the controller stays parked at the stale \
         pre-surge optimum forever — the §5.5 catastrophe. Either detector \
         recovers; for this moderate (2x) surge the local wake path is the \
         gentler restart, while the reset rule remains the only trigger \
         when the shift happens mid-optimization or moves the optimum far."
    );
}
