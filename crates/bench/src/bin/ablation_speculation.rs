//! Ablation — speculative execution on the heterogeneous cluster.
//!
//! The paper claims NoStop "tackles hardware heterogeneity in a
//! transparent manner" (§1): the controller never sees node speeds, it
//! just measures batch times. This ablation shows how the *substrate*
//! handles heterogeneity underneath: with Spark's speculative execution
//! on, straggler tasks on the slow Xeon node are re-run on faster idle
//! executors, shortening single-wave stages — and the configuration
//! NoStop converges to can afford a smaller interval.
//!
//! Each `(interval, executors)` row is an independent cell on the
//! [`nostop_bench::parallel`] fabric, measuring its no-speculation and
//! with-speculation arms back to back.

use nostop_bench::parallel::map_cells;
use nostop_bench::report::{f, print_section, Table};
use nostop_core::system::StreamingSystem;
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::scheduler::Speculation;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};

fn mean_proc(speculation: Option<Speculation>, interval_s: f64, executors: u32) -> f64 {
    let mut params = EngineParams::paper(WorkloadKind::WordCount, 7);
    params.speculation = speculation;
    let engine = StreamingEngine::new(
        params,
        StreamConfig::new(SimDuration::from_secs_f64(interval_s), executors),
        Box::new(ConstantRate::new(150_000.0)),
    );
    let mut sys = SimSystem::new(engine);
    for _ in 0..2 {
        sys.next_batch();
    }
    (0..10).map(|_| sys.next_batch().processing_s).sum::<f64>() / 10.0
}

fn main() {
    // Short intervals = few tasks = single waves where the slow Xeon's
    // stragglers sit on the critical path; long intervals = many waves
    // where fast executors absorb the imbalance anyway.
    const ROWS: [(f64, u32); 4] = [(3.0, 15), (4.0, 20), (10.0, 20), (20.0, 20)];
    let results = map_cells(&ROWS, |&(interval, executors)| {
        (
            mean_proc(None, interval, executors),
            mean_proc(Some(Speculation::default()), interval, executors),
        )
    });

    let mut table = Table::new(&[
        "interval_s (tasks)",
        "executors",
        "proc_s no speculation",
        "proc_s with speculation",
        "saved %",
    ]);
    for (&(interval, executors), &(without, with)) in ROWS.iter().zip(&results) {
        table.row(&[
            format!("{interval} ({})", (interval / 0.2) as u32),
            executors.to_string(),
            f(without, 2),
            f(with, 2),
            f((without - with) / without * 100.0, 1),
        ]);
    }
    print_section(
        "Ablation: speculative execution on the Table-2 heterogeneous cluster \
         (WordCount, 150k rec/s)",
        &table,
    );
    println!(
        "speculation pays when tasks ≈ executors (single-wave stages, \
         stragglers on the critical path) and fades once multiple waves \
         let fast executors absorb the imbalance"
    );
}
