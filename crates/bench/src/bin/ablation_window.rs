//! Ablation — the metric-collection rules (§5.4).
//!
//! Rule 1: discard the first batch after a configuration change (it pays
//! executor jar shipping). This binary measures the bias that rule
//! removes: the processing time of the first post-scale-up batch vs the
//! settled ones, over many reconfigurations.
//!
//! Rule 2: average over a window of batches. The sweep shows measurement
//! noise (std of the window mean) shrinking as the window grows — and why
//! a couple of batches suffice for SPSA while a paused controller benefits
//! from the additively-grown window.
//!
//! Both sweeps fan their independent cells (rule 1: one per scale-up
//! seed; rule 2: one per window size) over the [`nostop_bench::parallel`]
//! fabric; merged output is identical for any `NOSTOP_JOBS`.
//!
//! The rule-2 sweep computes every window mean from the *same* per-seed
//! batch stream — the engine is deterministic and batch streams are
//! prefix-stable, so a [`ReplayCache`] simulates each seed once at the
//! widest window and every narrower window reads a prefix of that trace.

use nostop_bench::parallel::map_cells;
use nostop_bench::replay::ReplayCache;
use nostop_bench::report::{f, print_section, Table};
use nostop_core::system::StreamingSystem;
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::stats::summarize;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};

/// Rule-1 cell: one scale-up run — `(first post-change, two later)`.
fn scale_up_cell(seed: u64) -> Option<(f64, f64)> {
    let params = EngineParams::paper(WorkloadKind::WordCount, seed);
    let engine = StreamingEngine::new(
        params,
        StreamConfig::new(SimDuration::from_secs(15), 8),
        Box::new(ConstantRate::new(120_000.0)),
    );
    let mut sys = SimSystem::new(engine);
    for _ in 0..4 {
        sys.next_batch();
    }
    // Scale up; the next batches run on fresh executors.
    sys.apply_config(&[15.0, 16.0]);
    let mut post = Vec::new();
    for _ in 0..6 {
        let b = sys.next_batch();
        if b.num_executors == 16 {
            post.push(b.processing_s);
        }
    }
    (post.len() >= 3).then(|| (post[0], post[2]))
}

/// Rule-2 trace: `trace_len` settled processing times for one seed
/// (warm-up batch discarded). Every window size reads a prefix of this.
fn seed_trace(seed: u64, trace_len: usize) -> Vec<f64> {
    let params = EngineParams::paper(WorkloadKind::LogisticRegression, seed);
    let engine = StreamingEngine::new(
        params,
        StreamConfig::new(SimDuration::from_secs(15), 14),
        Box::new(ConstantRate::new(10_000.0)),
    );
    let mut sys = SimSystem::new(engine);
    sys.next_batch(); // warm-up
    (0..trace_len)
        .map(|_| sys.next_batch().processing_s)
        .collect()
}

/// Rule-2 cell: one window size — the std of the window-mean over seeds.
/// Traces come from the shared cache; the fingerprint names everything the
/// trace depends on (workload, config, rate, seed, length).
fn window_noise_cell(
    window: usize,
    traces: &ReplayCache<String, Vec<f64>>,
    trace_len: usize,
) -> f64 {
    let mut means = Vec::new();
    for seed in 0..24u64 {
        let key = format!("lr/15s/14ex/10000rps/seed{seed}/len{trace_len}");
        let trace = traces.get_or_compute(key, || seed_trace(seed, trace_len));
        means.push(trace[..window].iter().sum::<f64>() / window as f64);
    }
    summarize(&means).std_dev
}

fn main() {
    // --- Rule 1: skip-first bias ---
    let seeds: Vec<u64> = (0..20).collect();
    let pairs = map_cells(&seeds, |&seed| scale_up_cell(seed));
    let mut first_batch = Vec::new();
    let mut settled = Vec::new();
    for (first, later) in pairs.into_iter().flatten() {
        first_batch.push(first);
        settled.push(later);
    }
    let fb = summarize(&first_batch);
    let st = summarize(&settled);
    let mut t1 = Table::new(&["batch", "processing_s (mean over 20 scale-ups)"]);
    t1.row(&["first after change".into(), f(fb.mean, 2)]);
    t1.row(&["two batches later".into(), f(st.mean, 2)]);
    t1.row(&[
        "bias removed by skip-first".into(),
        format!(
            "{:.2} s ({:.0}%)",
            fb.mean - st.mean,
            (fb.mean / st.mean - 1.0) * 100.0
        ),
    ]);
    print_section("Ablation §5.4 rule 1: first-batch initialization bias", &t1);

    // --- Rule 2: window size vs measurement noise ---
    const WINDOWS: [usize; 5] = [1, 2, 3, 6, 12];
    let trace_len = *WINDOWS.iter().max().expect("non-empty window sweep");
    let traces: ReplayCache<String, Vec<f64>> = ReplayCache::new();
    let noise = map_cells(&WINDOWS, |&w| window_noise_cell(w, &traces, trace_len));
    let mut t2 = Table::new(&["window (batches)", "std of window-mean processing_s"]);
    for (&window, &std) in WINDOWS.iter().zip(&noise) {
        t2.row(&[window.to_string(), f(std, 3)]);
    }
    eprintln!(
        "[replay] rule-2 traces: {} simulated, {} replayed from cache",
        traces.misses(),
        traces.hits()
    );
    print_section(
        "Ablation §5.4 rule 2: averaging window vs measurement noise \
         (LR, iteration-count variance dominates)",
        &t2,
    );
    println!(
        "the first post-change batch is visibly slower (jar shipping); \
         wider windows cut the noise SPSA's gradient sees — at the cost of \
         slower rounds, which is why the window grows only while paused"
    );
}
