//! NoStop vs Spark Back Pressure vs static default (abstract comparator).
//!
//! Back pressure cannot change batch interval or executors — it throttles
//! ingestion to whatever the (mis)configured system can digest. That keeps
//! the pipeline stable but *silently drops freshness*: records pile up at
//! the source. NoStop instead reconfigures the system to absorb the load.
//! This binary runs all three on logistic regression under the paper's
//! varying rate and reports delay *and* the freshness cost (source lag).
//!
//! Each seed is an independent cell on the [`nostop_bench::parallel`]
//! fabric; the three arms share a cell so their per-seed numbers stay
//! paired, and the merged report is identical for any `NOSTOP_JOBS`.

use nostop_bench::driver::{
    make_system, measure_config, nostop_config, paper_rate, run_backpressure,
};
use nostop_bench::parallel::map_cells;
use nostop_bench::report::{f, pm, print_section, Table};
use nostop_core::controller::NoStop;
use nostop_core::trace::RoundKind;
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const SEEDS: [u64; 5] = [7, 17, 27, 37, 47];
const KIND: WorkloadKind = WorkloadKind::LogisticRegression;
/// A mildly undersized fixed configuration: stable only if throttled.
const FIXED: [f64; 2] = [8.0, 8.0];
const DEFAULT: [f64; 2] = [20.5, 10.0];

/// One seed's numbers: `(static, bp delay, bp lag, bp limit, nostop)`.
fn run_cell(seed: u64) -> (f64, f64, f64, f64, f64) {
    // Static default.
    let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0xAB));
    let s = measure_config(&mut sys, &DEFAULT, 12, 15);
    let static_delay = s.end_to_end.mean;

    // Back pressure on the undersized fixed configuration.
    let bp = run_backpressure(KIND, seed, &FIXED, 20, paper_rate(KIND, seed ^ 0xAB));
    let bp_delay = bp.stats.end_to_end.mean;
    let bp_lag = bp.broker_lag as f64;
    let bp_limit = bp.final_rate_limit.unwrap_or(0.0);

    // NoStop-managed system: steady-state converged delay.
    let mut sys = make_system(KIND, seed, paper_rate(KIND, seed ^ 0xAB));
    let mut ns = NoStop::new(nostop_config(KIND), seed);
    let mut samples = Vec::new();
    for _ in 0..150 {
        ns.run_round(&mut sys);
        if let Some(r) = ns.trace().rounds.last() {
            if let RoundKind::Paused { observed } = &r.kind {
                if observed.scheduling_delay_s < 0.5 * observed.interval_s {
                    samples.push(observed.end_to_end_s);
                }
            }
        }
        if samples.len() >= 10 {
            break;
        }
    }
    let ns_delay = if samples.is_empty() {
        f64::NAN
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    (static_delay, bp_delay, bp_lag, bp_limit, ns_delay)
}

fn main() {
    let results = map_cells(&SEEDS, |&seed| run_cell(seed));

    let delays_static: Vec<f64> = results.iter().map(|r| r.0).collect();
    let delays_bp: Vec<f64> = results.iter().map(|r| r.1).collect();
    let lag_bp: Vec<f64> = results.iter().map(|r| r.2).collect();
    let limits_bp: Vec<f64> = results.iter().map(|r| r.3).collect();
    let delays_ns: Vec<f64> = results.iter().map(|r| r.4).collect();

    let st = summarize(&delays_static);
    let bp = summarize(&delays_bp);
    let ns = summarize(&delays_ns);
    let lag = summarize(&lag_bp);
    let lim = summarize(&limits_bp);

    let mut table = Table::new(&["method", "e2e delay_s", "source lag (records)", "notes"]);
    table.row(&[
        "static default (20.5s, 10ex)".into(),
        pm(st.mean, st.std_dev, 1),
        "0".into(),
        "stable but oversized interval".into(),
    ]);
    table.row(&[
        "back pressure (8s, 8ex fixed)".into(),
        pm(bp.mean, bp.std_dev, 1),
        pm(lag.mean, lag.std_dev, 0),
        format!("ingest throttled to ~{} rec/s", f(lim.mean, 0)),
    ]);
    table.row(&[
        "nostop (managed)".into(),
        pm(ns.mean, ns.std_dev, 1),
        "0".into(),
        "reconfigures instead of throttling".into(),
    ]);
    print_section(
        "NoStop vs Spark Back Pressure vs static default \
         (logistic regression, varying rate, 5 seeds)",
        &table,
    );
    println!(
        "back pressure keeps per-batch delay low by *dropping freshness*: \
         the lag column is data waiting at the source, unprocessed; NoStop \
         achieves low delay while consuming the full stream"
    );
}
