//! The chaos grid — writes `BENCH_chaos.json`.
//!
//! Runs every tuning method (NoStop, Bayesian optimization, the static
//! default) against every fault scenario on the same simulated cluster
//! and workload, with the fault injected mid-run at `FAULT_AT`. Each cell
//! records stability before and after the fault and how many post-fault
//! batches it took the method to restore a sustained stable streak —
//! the "recovery" number the fault-injection tests bound.
//!
//! Scenarios (all deterministic, scheduled off the DES clock):
//!
//! * `baseline` — no faults; sanity anchor for the stability columns.
//! * `executor_crash` — 5 executors killed at once, relaunched 60 s later.
//! * `receiver_outage` — the source produces into the void for 2 minutes.
//! * `stragglers` — one node runs at 0.35× speed for 20 minutes.
//! * `task_failures` — 15% per-attempt task failure for 20 minutes.
//!
//! Every cell is a pure function of `(scenario, method, SEED)`, so the
//! grid runs through the parallel fabric and the report is byte-identical
//! for any `NOSTOP_JOBS` — CI diffs the stdout of a serial and an 8-way
//! run.

use nostop_baselines::{BayesOpt, Tuner};
use nostop_bench::driver::{nostop_config, paper_rate, penalized_objective, stats_of};
use nostop_bench::parallel::{jobs, map_cells};
use nostop_core::controller::NoStop;
use nostop_core::system::{BatchObservation, StreamingSystem};
use nostop_simcore::json::{self, Json};
use nostop_simcore::{SimDuration, SimTime};
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, FaultEvent, FaultPlan, SimSystem, StreamConfig, StreamingEngine};

const KIND: WorkloadKind = WorkloadKind::WordCount;
const SEED: u64 = 7;
/// Virtual time the fault lands at, seconds.
const FAULT_AT: f64 = 1_200.0;
/// Virtual horizon each cell runs to, seconds.
const HORIZON: f64 = 3_600.0;
/// A method has "recovered" when this many consecutive post-fault batches
/// are stable.
const STREAK: usize = 5;
/// NoStop must re-stabilize within this many post-fault batches on the
/// recoverable scenarios — the bound the fault-injection tests also use.
const RECOVERY_BOUND: i64 = 60;

const SCENARIOS: [&str; 5] = [
    "baseline",
    "executor_crash",
    "receiver_outage",
    "stragglers",
    "task_failures",
];
const METHODS: [&str; 3] = ["nostop", "bo", "static"];

fn plan_for(scenario: &str) -> FaultPlan {
    let at = SimTime::from_secs_f64(FAULT_AT);
    match scenario {
        "baseline" => FaultPlan::none(),
        "executor_crash" => FaultPlan::new(vec![FaultEvent::ExecutorCrash {
            at,
            count: 5,
            relaunch_after: Some(SimDuration::from_secs(60)),
        }]),
        "receiver_outage" => FaultPlan::new(vec![FaultEvent::ReceiverOutage {
            from: at,
            until: SimTime::from_secs_f64(FAULT_AT + 120.0),
        }]),
        "stragglers" => FaultPlan::new(vec![FaultEvent::NodeSlowdown {
            node: 2,
            from: at,
            until: SimTime::from_secs_f64(FAULT_AT + 1_200.0),
            factor: 0.35,
        }]),
        "task_failures" => FaultPlan::new(vec![FaultEvent::TaskFailures {
            from: at,
            until: SimTime::from_secs_f64(FAULT_AT + 1_200.0),
            probability: 0.15,
        }]),
        other => panic!("unknown scenario `{other}`"),
    }
}

/// A [`StreamingSystem`] that remembers every batch it handed out, so a
/// method can be driven by its own protocol (controller rounds, tuner
/// iterations, plain polling) and still be scored on the full history.
struct Recording {
    inner: SimSystem,
    log: Vec<BatchObservation>,
}

impl Recording {
    fn new(scenario: &str) -> Self {
        let mut params = EngineParams::paper(KIND, SEED);
        params.faults = plan_for(scenario);
        let engine = StreamingEngine::new(
            params,
            StreamConfig::paper_initial(),
            paper_rate(KIND, SEED ^ 0x5EED),
        );
        Recording {
            inner: SimSystem::new(engine),
            log: Vec::new(),
        }
    }
}

impl StreamingSystem for Recording {
    fn apply_config(&mut self, physical: &[f64]) {
        self.inner.apply_config(physical);
    }
    fn next_batch(&mut self) -> BatchObservation {
        let b = self.inner.next_batch();
        self.log.push(b);
        b
    }
    fn now_s(&self) -> f64 {
        self.inner.now_s()
    }
}

/// Drive one method over the horizon.
fn run_method(method: &str, sys: &mut Recording) {
    match method {
        "nostop" => {
            let mut ns = NoStop::new(nostop_config(KIND), SEED);
            while sys.now_s() < HORIZON {
                ns.run_round(sys);
            }
        }
        "bo" => {
            let mut bo = BayesOpt::new(nostop_config(KIND).space, SEED);
            while sys.now_s() < HORIZON && !bo.finished() {
                let physical = bo.propose();
                sys.apply_config(&physical);
                for _ in 0..15 {
                    let b = sys.next_batch();
                    if (b.interval_s - physical[0]).abs() < 0.051 && b.queued_batches == 0 {
                        break;
                    }
                }
                let window: Vec<BatchObservation> = (0..3).map(|_| sys.next_batch()).collect();
                let stats = stats_of(&window);
                bo.observe(&physical, penalized_objective(physical[0], &stats));
            }
            // Park at the best configuration found and ride out the rest
            // of the horizon — BO has no online recovery story, which is
            // exactly what the chaos columns should show.
            if let Some((best, _)) = bo.best() {
                sys.apply_config(&best);
            }
            while sys.now_s() < HORIZON {
                sys.next_batch();
            }
        }
        "static" => {
            sys.apply_config(&[20.5, 10.0]);
            while sys.now_s() < HORIZON {
                sys.next_batch();
            }
        }
        other => panic!("unknown method `{other}`"),
    }
}

struct CellResult {
    scenario: &'static str,
    method: &'static str,
    batches: usize,
    pre_stable: f64,
    post_stable: f64,
    /// Mean end-to-end delay before/after the fault, seconds — the other
    /// axis: the static default is trivially stable at 20.5 s precisely
    /// because it never tries for a lower delay.
    pre_delay: f64,
    post_delay: f64,
    /// Post-fault batches until `STREAK` consecutive stable ones began
    /// (`-1` = never recovered within the horizon).
    recovery_batches: i64,
    dropped_records: u64,
    executor_failures: u64,
    task_retries: u64,
}

fn stable_fraction(batches: &[&BatchObservation]) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    batches.iter().filter(|b| b.is_stable()).count() as f64 / batches.len() as f64
}

fn mean_delay(batches: &[&BatchObservation]) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    batches.iter().map(|b| b.end_to_end_s()).sum::<f64>() / batches.len() as f64
}

fn run_cell(scenario: &'static str, method: &'static str) -> CellResult {
    let mut sys = Recording::new(scenario);
    run_method(method, &mut sys);
    let pre: Vec<&BatchObservation> = sys
        .log
        .iter()
        .filter(|b| b.completed_at_s < FAULT_AT)
        .collect();
    let post: Vec<&BatchObservation> = sys
        .log
        .iter()
        .filter(|b| b.completed_at_s >= FAULT_AT)
        .collect();
    let recovery_batches = post
        .windows(STREAK)
        .position(|w| w.iter().all(|b| b.is_stable()))
        .map(|i| i as i64)
        .unwrap_or(-1);
    let listener = sys.inner.engine().listener();
    CellResult {
        scenario,
        method,
        batches: sys.log.len(),
        pre_stable: stable_fraction(&pre),
        post_stable: stable_fraction(&post),
        pre_delay: mean_delay(&pre),
        post_delay: mean_delay(&post),
        recovery_batches,
        dropped_records: sys.inner.engine().dropped_records(),
        executor_failures: listener.executor_failures(),
        task_retries: listener.task_retries(),
    }
}

fn main() {
    let cells: Vec<(&'static str, &'static str)> = SCENARIOS
        .iter()
        .flat_map(|&s| METHODS.iter().map(move |&m| (s, m)))
        .collect();
    let results = map_cells(&cells, |&(s, m)| run_cell(s, m));

    // The acceptance contract: NoStop restores a sustained stable streak
    // within a bounded number of post-fault batches on the scenarios a
    // tuner *can* recover from (crash capacity returns; the outage ends).
    for r in &results {
        if r.method == "nostop" && matches!(r.scenario, "executor_crash" | "receiver_outage") {
            assert!(
                (0..=RECOVERY_BOUND).contains(&r.recovery_batches),
                "nostop failed to recover on {}: {} batches (bound {})",
                r.scenario,
                r.recovery_batches,
                RECOVERY_BOUND
            );
        }
    }

    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            json::obj(vec![
                ("scenario", json::str(r.scenario)),
                ("method", json::str(r.method)),
                ("batches", json::uint(r.batches as u64)),
                ("preStableFraction", json::num(r.pre_stable)),
                ("postStableFraction", json::num(r.post_stable)),
                ("preMeanDelayS", json::num(r.pre_delay)),
                ("postMeanDelayS", json::num(r.post_delay)),
                (
                    "recoveryBatches",
                    if r.recovery_batches < 0 {
                        Json::Null
                    } else {
                        json::uint(r.recovery_batches as u64)
                    },
                ),
                ("droppedRecords", json::uint(r.dropped_records)),
                ("executorFailures", json::uint(r.executor_failures)),
                ("taskRetries", json::uint(r.task_retries)),
            ])
        })
        .collect();

    let report = json::obj(vec![
        ("schema", json::str("nostop-chaos/1")),
        ("workload", json::str(KIND.name())),
        ("seed", json::uint(SEED)),
        ("faultAtS", json::num(FAULT_AT)),
        ("horizonS", json::num(HORIZON)),
        ("recoveryStreak", json::uint(STREAK as u64)),
        ("cells", Json::Arr(rows)),
    ]);

    let text = report.to_string_pretty();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    std::fs::write(&path, format!("{text}\n")).expect("write BENCH_chaos.json");
    println!("{text}");
    eprintln!("wrote {path} (jobs={})", jobs());
}
