//! Fig. 2 — effect of batch interval on streaming logistic regression.
//!
//! Paper setup (§3.2): streaming LR on the ten-node local testbed, fixed
//! executors, batch interval swept. Expected shape: (a) batch processing
//! time grows *slowly* (sub-linearly) with the interval and crosses the
//! `y = interval` stability line near 10 s; (b) batch schedule delay is
//! large below the crossover and ≈ 0 above it.

use nostop_bench::report::{f, print_section, Table};
use nostop_core::system::{BatchObservation, StreamingSystem};
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};

const EXECUTORS: u32 = 10;
const RATE: f64 = 10_000.0; // records/s, mid LR range
const BATCHES: usize = 8;

fn measure(interval_s: f64, seed: u64) -> (f64, f64) {
    let params = EngineParams::testbed(WorkloadKind::LogisticRegression, seed);
    let engine = StreamingEngine::new(
        params,
        StreamConfig::new(SimDuration::from_secs_f64(interval_s), EXECUTORS),
        Box::new(ConstantRate::new(RATE)),
    );
    let mut sys = SimSystem::new(engine);
    // Warm-up, then measure.
    for _ in 0..3 {
        sys.next_batch();
    }
    let window: Vec<BatchObservation> = (0..BATCHES).map(|_| sys.next_batch()).collect();
    let proc = window.iter().map(|b| b.processing_s).sum::<f64>() / BATCHES as f64;
    let sched = window.iter().map(|b| b.scheduling_delay_s).sum::<f64>() / BATCHES as f64;
    (proc, sched)
}

fn main() {
    let mut table = Table::new(&[
        "interval_s",
        "processing_s (2a)",
        "schedule_delay_s (2b)",
        "stable",
    ]);
    let mut crossover = None;
    for interval in [
        2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 18.0, 22.0, 26.0, 30.0, 35.0, 40.0,
    ] {
        let (proc, sched) = measure(interval, 42);
        let stable = proc <= interval;
        if stable && crossover.is_none() {
            crossover = Some(interval);
        }
        table.row(&[f(interval, 1), f(proc, 2), f(sched, 2), stable.to_string()]);
    }
    print_section(
        "Fig 2: batch interval vs processing time & schedule delay \
         (streaming LR, 10-node testbed, 10 executors, 10k rec/s)",
        &table,
    );
    match crossover {
        Some(c) => println!(
            "stability crossover at interval ≈ {c} s (paper: ≈ 10 s); \
             schedule delay collapses above it"
        ),
        None => println!("WARNING: no stable interval found — calibration drifted"),
    }
}
