//! Fig. 3 — effect of executor count on streaming logistic regression.
//!
//! Paper setup (§3.2): fixed batch interval, executor count swept.
//! Expected shape: processing time falls steeply as executors are added
//! (parallelism), bottoms out, and *rises* again once per-executor
//! management overhead dominates; the system is stable from ~10 executors
//! and the end-to-end delay is minimized around 20 (paper: "when the
//! number of executors is around 20 … the smallest end-to-end delay").

use nostop_bench::report::{f, print_section, Table};
use nostop_core::system::{BatchObservation, StreamingSystem};
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};

const INTERVAL_S: f64 = 10.0;
const RATE: f64 = 10_000.0;
const BATCHES: usize = 16;

fn measure(executors: u32, seed: u64) -> (f64, f64, f64) {
    let params = EngineParams::testbed(WorkloadKind::LogisticRegression, seed);
    let engine = StreamingEngine::new(
        params,
        StreamConfig::new(SimDuration::from_secs_f64(INTERVAL_S), executors),
        Box::new(ConstantRate::new(RATE)),
    );
    let mut sys = SimSystem::new(engine);
    for _ in 0..3 {
        sys.next_batch();
    }
    let window: Vec<BatchObservation> = (0..BATCHES).map(|_| sys.next_batch()).collect();
    let proc = window.iter().map(|b| b.processing_s).sum::<f64>() / BATCHES as f64;
    let sched = window.iter().map(|b| b.scheduling_delay_s).sum::<f64>() / BATCHES as f64;
    let e2e = window.iter().map(|b| b.end_to_end_s()).sum::<f64>() / BATCHES as f64;
    (proc, sched, e2e)
}

fn main() {
    let mut table = Table::new(&[
        "executors",
        "processing_s (3a)",
        "schedule_delay_s (3b)",
        "end_to_end_s",
        "stable",
    ]);
    let mut best: Option<(u32, f64)> = None;
    for executors in [2u32, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24] {
        let (proc, sched, e2e) = measure(executors, 42);
        let stable = proc <= INTERVAL_S;
        if stable {
            let better = best.map(|(_, d)| e2e < d).unwrap_or(true);
            if better {
                best = Some((executors, e2e));
            }
        }
        table.row(&[
            executors.to_string(),
            f(proc, 2),
            f(sched, 2),
            f(e2e, 2),
            stable.to_string(),
        ]);
    }
    print_section(
        "Fig 3: executor count vs processing time & schedule delay \
         (streaming LR, 10-node testbed, 10 s interval, 10k rec/s)",
        &table,
    );
    match best {
        Some((e, d)) => println!(
            "minimum stable end-to-end delay at {e} executors ({d:.2} s) \
             (paper: around 20 executors)"
        ),
        None => println!("WARNING: no stable executor count — calibration drifted"),
    }
}
