//! Fig. 5 — the varying input-rate traces driving each workload.
//!
//! The generator draws a rate uniformly from the workload's range and
//! holds it for 30 s before redrawing (§6.2.2). This binary is a thin
//! wrapper over the committed `scenarios/fig5-*.json` corpus entries: the
//! experiment definition (workload, rate process, rate seed, horizon)
//! lives in the scenario files and is replayed through
//! [`nostop_bench::scenario`]; only the Fig-5 presentation — per-workload
//! CSV trace plus the summary table — remains here.

use nostop_bench::report::{f, print_section, Table};
use nostop_bench::scenario::{build_rate, default_corpus_dir, parse_scenario, workload_of};
use nostop_simcore::{SimTime, TimeSeries};
use nostop_workloads::WorkloadKind;

const SAMPLE_EVERY_S: u64 = 10;

fn main() {
    let dir = default_corpus_dir();
    let mut summary = Table::new(&[
        "workload",
        "range (rec/s)",
        "observed min",
        "observed max",
        "observed mean",
    ]);
    for kind in WorkloadKind::ALL {
        let path = dir.join(format!("fig5-{}.json", kind.name()));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let spec = parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            workload_of(&spec).unwrap(),
            kind,
            "{} names the wrong workload",
            spec.name
        );
        let mut rate = build_rate(&spec);
        let mut series = TimeSeries::new(kind.name());
        for t in (0..=spec.horizon_s as u64).step_by(SAMPLE_EVERY_S as usize) {
            series.push_at(
                SimTime::from_micros(t * 1_000_000),
                rate.rate_at(SimTime::from_micros(t * 1_000_000)),
            );
        }
        let s = series.summary();
        let (lo, hi) = kind.paper_rate_range();
        summary.row(&[
            kind.name().to_string(),
            format!("[{lo}, {hi}]"),
            f(s.min, 0),
            f(s.max, 0),
            f(s.mean, 0),
        ]);
        println!("--- {} trace (t_s, rate) ---", kind.name());
        print!("{}", series.to_csv());
        println!();
    }
    print_section("Fig 5: input-rate variation per workload (600 s)", &summary);
}
