//! Fig. 5 — the varying input-rate traces driving each workload.
//!
//! The generator draws a rate uniformly from the workload's range and
//! holds it for 30 s before redrawing (§6.2.2). This binary prints each
//! workload's trace over ten minutes plus its summary — the reproduction
//! of the four panels of Fig. 5.

use nostop_bench::driver::paper_rate;
use nostop_bench::report::{f, print_section, Table};
use nostop_simcore::{SimTime, TimeSeries};
use nostop_workloads::WorkloadKind;

const DURATION_S: u64 = 600;
const SAMPLE_EVERY_S: u64 = 10;

fn main() {
    let mut summary = Table::new(&[
        "workload",
        "range (rec/s)",
        "observed min",
        "observed max",
        "observed mean",
    ]);
    for kind in WorkloadKind::ALL {
        let mut rate = paper_rate(kind, 42);
        let mut series = TimeSeries::new(kind.name());
        for t in (0..=DURATION_S).step_by(SAMPLE_EVERY_S as usize) {
            series.push_at(
                SimTime::from_micros(t * 1_000_000),
                rate.rate_at(SimTime::from_micros(t * 1_000_000)),
            );
        }
        let s = series.summary();
        let (lo, hi) = kind.paper_rate_range();
        summary.row(&[
            kind.name().to_string(),
            format!("[{lo}, {hi}]"),
            f(s.min, 0),
            f(s.max, 0),
            f(s.mean, 0),
        ]);
        println!("--- {} trace (t_s, rate) ---", kind.name());
        print!("{}", series.to_csv());
        println!();
    }
    print_section("Fig 5: input-rate variation per workload (600 s)", &summary);
}
