//! Fig. 6 — the optimization evolution for the four workloads.
//!
//! One NoStop run per workload under the paper's varying input rate;
//! prints the per-round end-to-end delay and batch-interval series (the
//! two curves of each Fig. 6 panel). Expected shapes: the batch interval
//! descends from the 20.5 s default toward the stability frontier and
//! flattens once the pause rule fires; the ML workloads' traces are the
//! most dynamic (their per-batch iteration counts vary), WordCount's the
//! most stable.
//!
//! This binary is a thin wrapper over the committed `scenarios/fig6-*.json`
//! corpus entries: the experiment definition (workload, seed, round
//! budget, rate process) lives in the scenario files and the system is
//! built through [`nostop_bench::scenario`]; only the Fig-6 presentation
//! remains here.
//!
//! The four workload runs are independent cells on the
//! [`nostop_bench::parallel`] fabric; each cell renders its evolution
//! block to a string so the merged printout matches a serial run byte for
//! byte.

use nostop_bench::driver::nostop_config;
use nostop_bench::parallel::map_cells;
use nostop_bench::report::{f, print_section, Table};
use nostop_bench::scenario::{build_system, default_corpus_dir, parse_scenario, workload_of};
use nostop_core::controller::NoStop;
use nostop_workloads::WorkloadKind;
use std::fmt::Write as _;

/// One workload cell: the rendered evolution block plus the summary row.
fn run_cell(kind: WorkloadKind) -> (String, Vec<String>) {
    let path = default_corpus_dir().join(format!("fig6-{}.json", kind.name()));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let spec = parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    assert_eq!(
        workload_of(&spec).unwrap(),
        kind,
        "{} names the wrong workload",
        spec.name
    );
    let rounds = spec.rounds.expect("fig6 scenarios declare a round budget");

    let mut sys = build_system(&spec).unwrap_or_else(|e| panic!("{e}"));
    let mut controller = NoStop::new(nostop_config(kind), spec.seed);
    controller.run(&mut sys, rounds);
    let trace = controller.trace();

    let mut block = String::new();
    let _ = writeln!(
        block,
        "--- {} evolution (round, delay_s, interval_s) ---",
        kind.name()
    );
    let delays = trace.delay_series();
    let intervals = trace.interval_series();
    let _ = writeln!(block, "round,delay_s,interval_s");
    for (round, interval) in &intervals {
        let delay = delays
            .iter()
            .find(|(r, _)| r == round)
            .map(|(_, d)| format!("{d:.2}"))
            .unwrap_or_default();
        let _ = writeln!(block, "{round},{delay},{:.1}", interval);
    }

    let phys = controller.current_physical();
    let best = controller
        .best_config()
        .map(|(_, d)| f(d, 2))
        .unwrap_or_else(|| "-".into());
    let converged = trace
        .rounds
        .iter()
        .find(|r| r.paused_after)
        .map(|r| r.round.to_string())
        .unwrap_or_else(|| "-".into());
    let row = vec![
        kind.name().to_string(),
        rounds.to_string(),
        trace.resets().to_string(),
        f(phys[0], 1),
        f(phys[1], 0),
        best,
        converged,
    ];
    (block, row)
}

fn main() {
    let results = map_cells(&WorkloadKind::ALL, |&kind| run_cell(kind));

    let mut summary = Table::new(&[
        "workload",
        "rounds",
        "resets",
        "final interval_s",
        "final executors",
        "best intrinsic delay_s",
        "converged@round",
    ]);
    for (block, row) in &results {
        println!("{block}");
        summary.row(row);
    }
    print_section("Fig 6: optimization evolution summary (seed 42)", &summary);
}
