//! Fig. 7 — performance improvement over the default configuration.
//!
//! Protocol (§6.3): for each workload, run the NoStop-managed system five
//! times (different seeds) and measure the end-to-end delay of its
//! *converged* phases — the batches observed while the controller is
//! parked at the optimum it found (NoStop keeps monitoring and re-adapts
//! when the rate moves, so this is the system's steady state under
//! management). Compared against running the default configuration (the
//! middle of the ranges: 20.5 s interval, 10 executors). Reports
//! mean ± std over the five runs. Expected shape: NoStop significantly
//! lower for all four workloads.
//!
//! Each `(workload, seed)` pair is an independent cell; the runs fan out
//! over the [`nostop_bench::parallel`] fabric (`NOSTOP_JOBS` workers) and
//! the report is identical for any worker count.

use nostop_bench::driver::{make_system, measure_config, nostop_config, paper_rate};
use nostop_bench::parallel::{grid, map_cells};
use nostop_bench::report::{f, pm, print_section, Table};
use nostop_core::controller::NoStop;
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
/// Upper bound on controller rounds per managed run.
const MAX_ROUNDS: u64 = 150;
/// Clean converged samples to collect per run.
const TARGET_SAMPLES: usize = 10;
const MEASURE_BATCHES: usize = 12;
const DEFAULT: [f64; 2] = [20.5, 10.0];

/// One `(workload, seed)` cell: the default arm's mean end-to-end delay
/// and the NoStop-managed arm's converged mean.
fn run_cell(kind: WorkloadKind, seed: u64) -> (f64, f64) {
    // Default arm: fresh system, static configuration.
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0xDEF));
    let default_delay = measure_config(&mut sys, &DEFAULT, MEASURE_BATCHES, 15)
        .end_to_end
        .mean;

    // NoStop arm: the *managed* system — the controller keeps running
    // (pausing at optima, waking and re-adapting when the rate moves),
    // exactly what the paper deploys. The measured delay is the mean over
    // the converged (paused) rounds.
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x5EED));
    let mut ns = NoStop::new(nostop_config(kind), seed);
    // Run until enough *steady-state* converged samples exist: paused
    // observations whose scheduling delay shows the queue has drained
    // (the first paused rounds after a park are still digesting backlog
    // from the search phase).
    let mut paused: Vec<f64> = Vec::new();
    for _ in 0..MAX_ROUNDS {
        ns.run_round(&mut sys);
        if let Some(r) = ns.trace().rounds.last() {
            if let nostop_core::trace::RoundKind::Paused { observed } = &r.kind {
                if observed.scheduling_delay_s < 0.5 * observed.interval_s {
                    paused.push(observed.end_to_end_s);
                }
            }
        }
        if paused.len() >= TARGET_SAMPLES {
            break;
        }
    }
    let nostop_delay = if paused.is_empty() {
        // Never converged within the budget: fall back to the best
        // configuration measured on a fresh system.
        let best = ns
            .best_config()
            .map(|(p, _)| p)
            .unwrap_or_else(|| ns.current_physical());
        let mut fresh = make_system(kind, seed, paper_rate(kind, seed ^ 0xBEE));
        measure_config(&mut fresh, &best, MEASURE_BATCHES, 15)
            .end_to_end
            .mean
    } else {
        paused.iter().sum::<f64>() / paused.len() as f64
    };
    (default_delay, nostop_delay)
}

fn main() {
    let cells = grid(&WorkloadKind::ALL, &SEEDS);
    let results = map_cells(&cells, |&(kind, seed)| run_cell(kind, seed));

    let mut table = Table::new(&["workload", "default e2e_s", "nostop e2e_s", "improvement %"]);
    for (w, kind) in WorkloadKind::ALL.iter().enumerate() {
        let per_seed = &results[w * SEEDS.len()..(w + 1) * SEEDS.len()];
        let default_delays: Vec<f64> = per_seed.iter().map(|&(d, _)| d).collect();
        let nostop_delays: Vec<f64> = per_seed.iter().map(|&(_, n)| n).collect();
        let d = summarize(&default_delays);
        let n = summarize(&nostop_delays);
        let improvement = (d.mean - n.mean) / d.mean * 100.0;
        table.row(&[
            kind.name().to_string(),
            pm(d.mean, d.std_dev, 1),
            pm(n.mean, n.std_dev, 1),
            f(improvement, 1),
        ]);
    }
    print_section(
        "Fig 7: end-to-end delay, default configuration vs NoStop \
         (5 runs each, mean ± std)",
        &table,
    );
}
