//! Fig. 8 — SPSA (NoStop) vs Bayesian optimization.
//!
//! Protocol (§6.4): repeat each method five times per workload; compare
//! the final optimization result (the best configuration's measured
//! delay), the search time (virtual seconds until convergence), and the
//! configuration steps taken. Expected shape: comparable final delays,
//! with SPSA needing *fewer steps and less search time* — the paper's
//! run-time-efficiency claim.

use nostop_baselines::BayesOpt;
use nostop_bench::driver::{
    make_system, measure_config, nostop_config, paper_rate, run_nostop, run_tuner,
};
use nostop_bench::report::{pm, print_section, Table};
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];
const NOSTOP_ROUNDS: u64 = 30;
const BO_ITERATIONS: usize = 45;
const MEASURE_BATCHES: usize = 10;

struct MethodResult {
    final_delay: Vec<f64>,
    search_time: Vec<f64>,
    config_steps: Vec<f64>,
}

fn evaluate_best(kind: WorkloadKind, seed: u64, best: &[f64]) -> f64 {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0xF16));
    measure_config(&mut sys, best, MEASURE_BATCHES, 15)
        .end_to_end
        .mean
}

fn main() {
    let mut table = Table::new(&[
        "workload",
        "method",
        "final e2e_s",
        "search time_s",
        "config steps",
    ]);
    for kind in WorkloadKind::ALL {
        let mut spsa = MethodResult {
            final_delay: vec![],
            search_time: vec![],
            config_steps: vec![],
        };
        let mut bo = MethodResult {
            final_delay: vec![],
            search_time: vec![],
            config_steps: vec![],
        };
        for &seed in &SEEDS {
            // --- NoStop / SPSA ---
            let (run, _) = run_nostop(kind, seed, NOSTOP_ROUNDS);
            let best = run
                .controller
                .best_config()
                .map(|(p, _)| p)
                .unwrap_or_else(|| run.controller.current_physical());
            spsa.final_delay.push(evaluate_best(kind, seed, &best));
            // Search time: until the controller first paused, or the full
            // run if it never did.
            let t = run
                .controller
                .trace()
                .rounds
                .iter()
                .find(|r| r.paused_after)
                .map(|r| r.t_s)
                .unwrap_or(run.virtual_time_s);
            spsa.search_time.push(t);
            // Steps to convergence: two reconfigurations per optimization
            // round before the first pause, plus the parking change.
            let rounds_to_pause = run
                .controller
                .trace()
                .rounds
                .iter()
                .take_while(|r| !r.paused_after)
                .filter(|r| matches!(r.kind, nostop_core::trace::RoundKind::Optimized { .. }))
                .count();
            let steps = if run.controller.trace().rounds.iter().any(|r| r.paused_after) {
                (rounds_to_pause * 2 + 1) as f64
            } else {
                run.controller.config_changes() as f64
            };
            spsa.config_steps.push(steps);

            // --- Bayesian optimization ---
            let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x0B0));
            let mut tuner = BayesOpt::new(nostop_config(kind).space, seed);
            let bo_run = run_tuner(&mut tuner, &mut sys, BO_ITERATIONS);
            let bo_best = bo_run
                .best
                .map(|(p, _)| p)
                .unwrap_or_else(|| vec![20.5, 10.0]);
            bo.final_delay.push(evaluate_best(kind, seed, &bo_best));
            // BO's convergence point, judged by the *same online stopping
            // rule* NoStop uses: pause when the std-dev of the 10 best
            // objectives falls below 1 s. (A post-hoc "last improvement"
            // criterion would grant BO oracle knowledge.)
            let mut rule = nostop_core::policy::PauseRule::paper_default();
            let mut converged_at: Option<usize> = None;
            for (i, step) in bo_run.history.iter().enumerate() {
                rule.record(step.objective);
                if rule.should_pause() {
                    converged_at = Some(i + 1);
                    break;
                }
            }
            let steps = converged_at.unwrap_or(bo_run.history.len());
            let t_converged = bo_run
                .history
                .get(steps.saturating_sub(1))
                .map(|s| s.t_s)
                .unwrap_or(bo_run.virtual_time_s);
            bo.search_time.push(t_converged);
            bo.config_steps.push(steps as f64);
        }
        for (name, m) in [("nostop-spsa", &spsa), ("bayesopt", &bo)] {
            let d = summarize(&m.final_delay);
            let t = summarize(&m.search_time);
            let c = summarize(&m.config_steps);
            table.row(&[
                kind.name().to_string(),
                name.to_string(),
                pm(d.mean, d.std_dev, 1),
                pm(t.mean, t.std_dev, 0),
                pm(c.mean, c.std_dev, 1),
            ]);
        }
    }
    print_section(
        "Fig 8: SPSA vs Bayesian optimization (5 runs each, mean ± std)",
        &table,
    );
    println!(
        "expected shape: comparable final delays; SPSA converges in fewer \
         configuration steps and less search time than BO"
    );
}
