//! Fig. 8 — SPSA (NoStop) vs Bayesian optimization.
//!
//! Protocol (§6.4): repeat each method five times per workload; compare
//! the final optimization result (the best configuration's measured
//! delay), the search time (virtual seconds until convergence), and the
//! configuration steps taken. Expected shape: comparable final delays,
//! with SPSA needing *fewer steps and less search time* — the paper's
//! run-time-efficiency claim.
//!
//! Each `(workload, seed)` pair runs both methods in one independent cell
//! on the [`nostop_bench::parallel`] fabric; per-cell numbers merge in
//! grid order, so the report is identical for any `NOSTOP_JOBS`.

use nostop_baselines::BayesOpt;
use nostop_bench::driver::{
    make_system, measure_config, nostop_config, paper_rate, run_nostop, run_tuner,
};
use nostop_bench::parallel::{grid, map_cells};
use nostop_bench::report::{pm, print_section, Table};
use nostop_simcore::stats::summarize;
use nostop_workloads::WorkloadKind;

const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];
const NOSTOP_ROUNDS: u64 = 30;
const BO_ITERATIONS: usize = 45;
const MEASURE_BATCHES: usize = 10;

/// Per-cell numbers for one method: `(final_delay, search_time, steps)`.
type MethodCell = (f64, f64, f64);

fn evaluate_best(kind: WorkloadKind, seed: u64, best: &[f64]) -> f64 {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0xF16));
    measure_config(&mut sys, best, MEASURE_BATCHES, 15)
        .end_to_end
        .mean
}

/// One `(workload, seed)` cell: run NoStop/SPSA and BO back to back.
fn run_cell(kind: WorkloadKind, seed: u64) -> (MethodCell, MethodCell) {
    // --- NoStop / SPSA ---
    let (run, _) = run_nostop(kind, seed, NOSTOP_ROUNDS);
    let best = run
        .controller
        .best_config()
        .map(|(p, _)| p)
        .unwrap_or_else(|| run.controller.current_physical());
    let spsa_delay = evaluate_best(kind, seed, &best);
    // Search time: until the controller first paused, or the full run if
    // it never did.
    let spsa_time = run
        .controller
        .trace()
        .rounds
        .iter()
        .find(|r| r.paused_after)
        .map(|r| r.t_s)
        .unwrap_or(run.virtual_time_s);
    // Steps to convergence: two reconfigurations per optimization round
    // before the first pause, plus the parking change.
    let rounds_to_pause = run
        .controller
        .trace()
        .rounds
        .iter()
        .take_while(|r| !r.paused_after)
        .filter(|r| matches!(r.kind, nostop_core::trace::RoundKind::Optimized { .. }))
        .count();
    let spsa_steps = if run.controller.trace().rounds.iter().any(|r| r.paused_after) {
        (rounds_to_pause * 2 + 1) as f64
    } else {
        run.controller.config_changes() as f64
    };

    // --- Bayesian optimization ---
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x0B0));
    let mut tuner = BayesOpt::new(nostop_config(kind).space, seed);
    let bo_run = run_tuner(&mut tuner, &mut sys, BO_ITERATIONS);
    let bo_best = bo_run
        .best
        .map(|(p, _)| p)
        .unwrap_or_else(|| vec![20.5, 10.0]);
    let bo_delay = evaluate_best(kind, seed, &bo_best);
    // BO's convergence point, judged by the *same online stopping rule*
    // NoStop uses: pause when the std-dev of the 10 best objectives falls
    // below 1 s. (A post-hoc "last improvement" criterion would grant BO
    // oracle knowledge.)
    let mut rule = nostop_core::policy::PauseRule::paper_default();
    let mut converged_at: Option<usize> = None;
    for (i, step) in bo_run.history.iter().enumerate() {
        rule.record(step.objective);
        if rule.should_pause() {
            converged_at = Some(i + 1);
            break;
        }
    }
    let steps = converged_at.unwrap_or(bo_run.history.len());
    let bo_time = bo_run
        .history
        .get(steps.saturating_sub(1))
        .map(|s| s.t_s)
        .unwrap_or(bo_run.virtual_time_s);

    (
        (spsa_delay, spsa_time, spsa_steps),
        (bo_delay, bo_time, steps as f64),
    )
}

fn main() {
    let cells = grid(&WorkloadKind::ALL, &SEEDS);
    let results = map_cells(&cells, |&(kind, seed)| run_cell(kind, seed));

    let mut table = Table::new(&[
        "workload",
        "method",
        "final e2e_s",
        "search time_s",
        "config steps",
    ]);
    for (w, kind) in WorkloadKind::ALL.iter().enumerate() {
        let per_seed = &results[w * SEEDS.len()..(w + 1) * SEEDS.len()];
        let spsa: Vec<MethodCell> = per_seed.iter().map(|&(s, _)| s).collect();
        let bo: Vec<MethodCell> = per_seed.iter().map(|&(_, b)| b).collect();
        for (name, m) in [("nostop-spsa", &spsa), ("bayesopt", &bo)] {
            let d = summarize(&m.iter().map(|c| c.0).collect::<Vec<_>>());
            let t = summarize(&m.iter().map(|c| c.1).collect::<Vec<_>>());
            let c = summarize(&m.iter().map(|c| c.2).collect::<Vec<_>>());
            table.row(&[
                kind.name().to_string(),
                name.to_string(),
                pm(d.mean, d.std_dev, 1),
                pm(t.mean, t.std_dev, 0),
                pm(c.mean, c.std_dev, 1),
            ]);
        }
    }
    print_section(
        "Fig 8: SPSA vs Bayesian optimization (5 runs each, mean ± std)",
        &table,
    );
    println!(
        "expected shape: comparable final delays; SPSA converges in fewer \
         configuration steps and less search time than BO"
    );
}
