//! Fleet-scale benchmark + chaos grid — writes `BENCH_fleet.json`.
//!
//! Exercises the multi-tenant layer at its headline scale: 100-tenant
//! fleets under every arbiter policy, plus a chaos grid that extends the
//! single-job fault drills to *correlated* multi-tenant faults (every
//! tenant in a cell loses executors at the same instant — a rack event —
//! and must recover under whatever budget the arbiter leaves it).
//!
//! Everything printed to **stdout** is a pure function of `(specs,
//! budget, policy)` — digests, ledger counts, arbiter stats — so CI can
//! diff the output byte-for-byte across `NOSTOP_JOBS` values *and*
//! across the fleet fast path and its probe mode
//! (`NOSTOP_NO_FLEET_FASTPATH=1`). Wall-clock timings go to **stderr**
//! and — as `wall_ms`, best of `NOSTOP_PERF_REPEATS` runs (default 1) —
//! into the report **file only**; the file is the one artifact allowed
//! to differ between hosts and modes.
//!
//! The binary is also its own acceptance test: before writing anything it
//! replays the 100-tenant contended fleet at `NOSTOP_JOBS=1` and at the
//! configured worker count and asserts the byte-level summaries (per-
//! tenant RNG fingerprints, clocks, listener totals, the full arbiter
//! ledger) are identical, and that every scenario's ledger conserves the
//! budget under replay. The 2,000-tenant steady scenario additionally
//! exercises ledger checkpointing and requires the fast path to engage
//! (when enabled).

use nostop_bench::parallel::jobs;
use nostop_core::arbiter::ArbiterPolicy;
use nostop_simcore::json::{self, Json};
use nostop_simcore::{SimDuration, SimTime};
use nostop_workloads::WorkloadKind;
use spark_sim::fleet::{FleetSim, TenantSpec};
use spark_sim::{check_ledger_conservation, FaultEvent, FaultPlan};
use std::time::Instant;

/// Headline fleet size (the replay contract is proven at this scale).
const FLEET_TENANTS: u32 = 100;
/// Controller rounds per tenant in the policy scenarios.
const FLEET_EPOCHS: u64 = 4;
/// Executor budget for the contended scenarios — far below the ~100×8
/// aggregate demand, so every barrier is a real allocation problem.
const FLEET_BUDGET: u32 = 600;
/// Chaos-grid fleet size and budget (smaller cells, more of them).
const CHAOS_TENANTS: u32 = 12;
const CHAOS_BUDGET: u32 = 72;
const CHAOS_EPOCHS: u64 = 8;
/// The sparse-stepping scenario: a steady fleet at real fleet scale.
const STEADY_TENANTS: u32 = 2_000;
const STEADY_EPOCHS: u64 = 40;
/// Ledger tail capacity for the steady scenario's checkpointing mode.
const STEADY_CHECKPOINT_CAP: usize = 4_096;
/// The instant every tenant in a chaos cell loses executors together.
const CHAOS_CRASH_SECS: f64 = 90.0;

/// The three policies every scenario axis sweeps.
const POLICIES: [ArbiterPolicy; 3] = [
    ArbiterPolicy::FairShare,
    ArbiterPolicy::StrictPriority,
    ArbiterPolicy::PreemptWithGrace { grace_epochs: 2 },
];

/// Mixed-workload, mixed-priority tenant population.
fn fleet_specs(n: u32, fleet_seed: u64) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            let kind = WorkloadKind::ALL[(i % 4) as usize];
            let mut spec = TenantSpec::paper(kind, fleet_seed, i);
            spec.priority = 1 + (i % 5);
            spec
        })
        .collect()
}

/// Repeat count for wall-time measurement: `NOSTOP_PERF_REPEATS`
/// (clamped ≥ 1), default 1 — the deterministic outputs are asserted
/// identical across repeats, and the best (lowest) wall time is kept.
fn report_repeats() -> usize {
    std::env::var("NOSTOP_PERF_REPEATS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1usize)
        .max(1)
}

/// One deterministic scenario row: run the fleet (best wall time of
/// [`report_repeats`] runs, digests asserted identical across repeats),
/// assert conservation, and report digests + arbiter accounting.
/// Returns `(row, best_wall_ms)` — the wall time goes to stderr and the
/// report *file*, never to stdout.
fn scenario_row(
    name: &str,
    specs: &[TenantSpec],
    budget: Option<u32>,
    policy: ArbiterPolicy,
    epochs: u64,
) -> (Json, f64) {
    let mut best_wall = f64::INFINITY;
    let mut kept: Option<FleetSim> = None;
    for _ in 0..report_repeats() {
        let start = Instant::now();
        let mut fleet = FleetSim::new(specs, budget, policy);
        fleet.run_epochs(epochs);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(prev) = &kept {
            assert_eq!(
                prev.digest(),
                fleet.digest(),
                "{name}: digest changed between repeats"
            );
        }
        if wall_ms < best_wall {
            best_wall = wall_ms;
        }
        kept = Some(fleet);
    }
    let fleet = kept.expect("at least one repeat");

    check_ledger_conservation(fleet.arbiter().ledger())
        .unwrap_or_else(|e| panic!("{name}: ledger conservation violated: {e}"));
    for (i, _) in specs.iter().enumerate() {
        assert_eq!(
            fleet.tenant_controller(i).rounds(),
            epochs,
            "{name}: tenant {i}'s controller stalled"
        );
    }
    let satisfied = fleet.last_grants().iter().filter(|g| g.satisfied).count();
    let stats = fleet.arbiter().stats();
    eprintln!(
        "scenario {name:<28} {:>3} tenants x{epochs} epochs  {best_wall:>8.1} ms",
        specs.len()
    );
    let row = json::obj(vec![
        ("scenario", json::str(name)),
        ("tenants", json::uint(specs.len() as u64)),
        ("epochs", json::uint(epochs)),
        (
            "budget",
            budget.map(|b| json::uint(b as u64)).unwrap_or(Json::Null),
        ),
        ("policy", json::str(policy.name())),
        ("digest", json::str(format!("{:016x}", fleet.digest()))),
        ("in_use", json::uint(fleet.arbiter().in_use())),
        ("satisfied_tenants", json::uint(satisfied as u64)),
        (
            "ledger_len",
            json::uint(fleet.arbiter().ledger().len() as u64),
        ),
        ("grants", json::uint(stats.grants)),
        ("denies", json::uint(stats.denies)),
        ("queues", json::uint(stats.queues)),
        ("releases", json::uint(stats.releases)),
        ("preemptions", json::uint(stats.preemptions)),
        ("revocations", json::uint(stats.revocations)),
        ("coalesced_rounds", json::uint(stats.coalesced_rounds)),
    ]);
    (row, best_wall)
}

/// The sparse-stepping scenario: 2,000 steady tenants with ledger
/// checkpointing on. The stdout row carries only mode-independent
/// values (the digest, the classification counter, the checkpoint
/// base) so the fast path and probe mode print byte-identical reports;
/// the actually-skipped count joins `wall_ms` in the file only.
/// Returns `(stdout_row, wall_ms, skipped_epochs)`.
fn steady_scale_row() -> (Json, f64, u64) {
    let specs: Vec<TenantSpec> = (0..STEADY_TENANTS)
        .map(|i| {
            let kind = if i % 2 == 0 {
                WorkloadKind::WordCount
            } else {
                WorkloadKind::PageAnalyze
            };
            TenantSpec::steady(kind, 2026, i)
        })
        .collect();
    let mut best_wall = f64::INFINITY;
    let mut kept: Option<FleetSim> = None;
    for _ in 0..report_repeats() {
        let start = Instant::now();
        let mut fleet = FleetSim::new(&specs, None, ArbiterPolicy::FairShare);
        fleet.enable_ledger_checkpointing(STEADY_CHECKPOINT_CAP);
        fleet.run_epochs(STEADY_EPOCHS);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(prev) = &kept {
            assert_eq!(
                prev.digest(),
                fleet.digest(),
                "steady_2000: digest changed between repeats"
            );
        }
        if wall_ms < best_wall {
            best_wall = wall_ms;
        }
        kept = Some(fleet);
    }
    let fleet = kept.expect("at least one repeat");

    fleet
        .arbiter()
        .check_conservation()
        .unwrap_or_else(|e| panic!("steady_2000: ledger conservation violated: {e}"));
    if fleet.fastpath_enabled() {
        assert!(
            fleet.total_skipped_epochs() > 0,
            "steady_2000: the fast path never engaged"
        );
    } else {
        assert_eq!(
            fleet.total_skipped_epochs(),
            0,
            "steady_2000: probe mode must never skip"
        );
    }
    eprintln!(
        "scenario {:<28} {STEADY_TENANTS:>3} tenants x{STEADY_EPOCHS} epochs  {best_wall:>8.1} ms  \
         ({} epochs fast-forwarded)",
        "steady_2000",
        fleet.total_skipped_epochs()
    );
    let row = json::obj(vec![
        ("scenario", json::str("steady_2000")),
        ("tenants", json::uint(STEADY_TENANTS as u64)),
        ("epochs", json::uint(STEADY_EPOCHS)),
        ("budget", Json::Null),
        ("policy", json::str(ArbiterPolicy::FairShare.name())),
        ("digest", json::str(format!("{:016x}", fleet.digest()))),
        ("would_skip_epochs", json::uint(fleet.would_skip_epochs())),
        (
            "ledger_checkpoint_base_seq",
            json::uint(fleet.arbiter().base_seq()),
        ),
        (
            "ledger_len",
            json::uint(fleet.arbiter().ledger().len() as u64),
        ),
    ]);
    (row, best_wall, fleet.total_skipped_epochs())
}

/// Attach the correlated rack fault to every tenant in a population.
fn with_correlated_crash(
    mut specs: Vec<TenantSpec>,
    relaunch: Option<SimDuration>,
) -> Vec<TenantSpec> {
    for spec in specs.iter_mut() {
        spec.params.faults = FaultPlan::new(vec![FaultEvent::ExecutorCrash {
            at: SimTime::from_secs_f64(CHAOS_CRASH_SECS),
            count: 2,
            relaunch_after: relaunch,
        }]);
    }
    specs
}

/// The in-binary acceptance gate: the 100-tenant contended fleet must
/// replay byte-identically at `NOSTOP_JOBS=1` and the configured worker
/// count. Panics (exit ≠ 0) on any divergence.
fn assert_replay_at_scale(specs: &[TenantSpec]) -> u64 {
    let run = |jobs: usize| {
        let start = Instant::now();
        let mut fleet = FleetSim::new(specs, Some(FLEET_BUDGET), ArbiterPolicy::FairShare);
        fleet.set_jobs(jobs);
        fleet.run_epochs(FLEET_EPOCHS);
        let summary = fleet.summary_jsonl();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        eprintln!("replay check: jobs={jobs:<2} {wall_ms:>8.1} ms");
        (summary, fleet.digest())
    };
    let (solo, digest) = run(1);
    let pooled_jobs = jobs().max(2);
    let (pooled, pooled_digest) = run(pooled_jobs);
    assert_eq!(
        solo, pooled,
        "{FLEET_TENANTS}-tenant summary changed between NOSTOP_JOBS=1 and {pooled_jobs}"
    );
    assert_eq!(digest, pooled_digest);
    digest
}

/// The file copy of a row: the stdout row plus its best wall time (and
/// any other host/mode-dependent extras).
fn with_wall(row: &Json, wall_ms: f64) -> Json {
    let mut r = row.clone();
    if let Json::Obj(fields) = &mut r {
        fields.push(("wall_ms".to_string(), json::num(wall_ms)));
    }
    r
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());

    let specs = fleet_specs(FLEET_TENANTS, 2026);
    let replay_digest = assert_replay_at_scale(&specs);

    // --- Policy scenarios at headline scale ---
    let mut scenario_rows = vec![scenario_row(
        "unconstrained",
        &specs,
        None,
        ArbiterPolicy::FairShare,
        FLEET_EPOCHS,
    )];
    for policy in POLICIES {
        scenario_rows.push(scenario_row(
            &format!("contended_{}", policy.name()),
            &specs,
            Some(FLEET_BUDGET),
            policy,
            FLEET_EPOCHS,
        ));
    }

    // --- Sparse stepping at fleet scale ---
    let (steady_row, steady_wall, steady_skipped) = steady_scale_row();

    // --- Chaos grid: policies × correlated multi-tenant faults ---
    let mut chaos_rows = Vec::new();
    for policy in POLICIES {
        for (fault_name, relaunch) in [
            ("rack_crash_relaunch_30s", Some(SimDuration::from_secs(30))),
            ("rack_crash_permanent", None),
        ] {
            let specs = with_correlated_crash(fleet_specs(CHAOS_TENANTS, 777), relaunch);
            let (mut row, wall) = scenario_row(
                &format!("{}__{fault_name}", policy.name()),
                &specs,
                Some(CHAOS_BUDGET),
                policy,
                CHAOS_EPOCHS,
            );
            if let Json::Obj(fields) = &mut row {
                fields.push(("fault".to_string(), json::str(fault_name)));
                fields.push(("crash_at_s".to_string(), json::num(CHAOS_CRASH_SECS)));
            }
            chaos_rows.push((row, wall));
        }
    }

    // Two renderings of the same report: stdout stays a pure function of
    // (specs, budget, policy) for CI byte-diffs; the file additionally
    // carries wall times and the mode-dependent skip count.
    let render = |with_timings: bool| {
        let steady_file_row = if with_timings {
            let mut r = with_wall(&steady_row, steady_wall);
            if let Json::Obj(fields) = &mut r {
                fields.push(("skipped_epochs".to_string(), json::uint(steady_skipped)));
            }
            r
        } else {
            steady_row.clone()
        };
        let pick = |rows: &[(Json, f64)]| -> Vec<Json> {
            rows.iter()
                .map(|(row, wall)| {
                    if with_timings {
                        with_wall(row, *wall)
                    } else {
                        row.clone()
                    }
                })
                .collect()
        };
        json::obj(vec![
            ("schema", json::str("nostop-fleet/1")),
            (
                "replay",
                json::obj(vec![
                    ("tenants", json::uint(FLEET_TENANTS as u64)),
                    ("epochs", json::uint(FLEET_EPOCHS)),
                    ("budget", json::uint(FLEET_BUDGET as u64)),
                    ("digest", json::str(format!("{replay_digest:016x}"))),
                    ("identical_across_jobs", Json::Bool(true)),
                ]),
            ),
            ("scenarios", Json::Arr(pick(&scenario_rows))),
            ("steady_scale", steady_file_row),
            ("chaos_grid", Json::Arr(pick(&chaos_rows))),
        ])
    };

    let file_text = render(true).to_string_pretty();
    std::fs::write(&path, format!("{file_text}\n")).expect("write BENCH_fleet.json");
    println!("{}", render(false).to_string_pretty());
    eprintln!("wrote {path} (jobs={})", jobs());
}
