//! Fleet-scale benchmark + chaos grid — writes `BENCH_fleet.json`.
//!
//! Exercises the multi-tenant layer at its headline scale: 100-tenant
//! fleets under every arbiter policy, plus a chaos grid that extends the
//! single-job fault drills to *correlated* multi-tenant faults (every
//! tenant in a cell loses executors at the same instant — a rack event —
//! and must recover under whatever budget the arbiter leaves it).
//!
//! Everything printed to **stdout** (and written to the report file) is a
//! pure function of `(specs, budget, policy)` — digests, ledger counts,
//! arbiter stats — so CI can diff the output byte-for-byte across
//! `NOSTOP_JOBS` values. Wall-clock timings go to **stderr** only.
//!
//! The binary is also its own acceptance test: before writing anything it
//! replays the 100-tenant contended fleet at `NOSTOP_JOBS=1` and at the
//! configured worker count and asserts the byte-level summaries (per-
//! tenant RNG fingerprints, clocks, listener totals, the full arbiter
//! ledger) are identical, and that every scenario's ledger conserves the
//! budget under replay.

use nostop_bench::parallel::jobs;
use nostop_core::arbiter::ArbiterPolicy;
use nostop_simcore::json::{self, Json};
use nostop_simcore::{SimDuration, SimTime};
use nostop_workloads::WorkloadKind;
use spark_sim::fleet::{FleetSim, TenantSpec};
use spark_sim::{check_ledger_conservation, FaultEvent, FaultPlan};
use std::time::Instant;

/// Headline fleet size (the replay contract is proven at this scale).
const FLEET_TENANTS: u32 = 100;
/// Controller rounds per tenant in the policy scenarios.
const FLEET_EPOCHS: u64 = 4;
/// Executor budget for the contended scenarios — far below the ~100×8
/// aggregate demand, so every barrier is a real allocation problem.
const FLEET_BUDGET: u32 = 600;
/// Chaos-grid fleet size and budget (smaller cells, more of them).
const CHAOS_TENANTS: u32 = 12;
const CHAOS_BUDGET: u32 = 72;
const CHAOS_EPOCHS: u64 = 8;
/// The instant every tenant in a chaos cell loses executors together.
const CHAOS_CRASH_SECS: f64 = 90.0;

/// The three policies every scenario axis sweeps.
const POLICIES: [ArbiterPolicy; 3] = [
    ArbiterPolicy::FairShare,
    ArbiterPolicy::StrictPriority,
    ArbiterPolicy::PreemptWithGrace { grace_epochs: 2 },
];

/// Mixed-workload, mixed-priority tenant population.
fn fleet_specs(n: u32, fleet_seed: u64) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            let kind = WorkloadKind::ALL[(i % 4) as usize];
            let mut spec = TenantSpec::paper(kind, fleet_seed, i);
            spec.priority = 1 + (i % 5);
            spec
        })
        .collect()
}

/// One deterministic scenario row: run the fleet, assert conservation,
/// and report digests + arbiter accounting. Wall time goes to stderr.
fn scenario_row(
    name: &str,
    specs: &[TenantSpec],
    budget: Option<u32>,
    policy: ArbiterPolicy,
    epochs: u64,
) -> Json {
    let start = Instant::now();
    let mut fleet = FleetSim::new(specs, budget, policy);
    fleet.run_epochs(epochs);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    check_ledger_conservation(fleet.arbiter().ledger())
        .unwrap_or_else(|e| panic!("{name}: ledger conservation violated: {e}"));
    for (i, _) in specs.iter().enumerate() {
        assert_eq!(
            fleet.tenant_controller(i).rounds(),
            epochs,
            "{name}: tenant {i}'s controller stalled"
        );
    }
    let satisfied = fleet.last_grants().iter().filter(|g| g.satisfied).count();
    let stats = fleet.arbiter().stats();
    eprintln!(
        "scenario {name:<28} {:>3} tenants x{epochs} epochs  {wall_ms:>8.1} ms",
        specs.len()
    );
    json::obj(vec![
        ("scenario", json::str(name)),
        ("tenants", json::uint(specs.len() as u64)),
        ("epochs", json::uint(epochs)),
        (
            "budget",
            budget.map(|b| json::uint(b as u64)).unwrap_or(Json::Null),
        ),
        ("policy", json::str(policy.name())),
        ("digest", json::str(format!("{:016x}", fleet.digest()))),
        ("in_use", json::uint(fleet.arbiter().in_use())),
        ("satisfied_tenants", json::uint(satisfied as u64)),
        (
            "ledger_len",
            json::uint(fleet.arbiter().ledger().len() as u64),
        ),
        ("grants", json::uint(stats.grants)),
        ("denies", json::uint(stats.denies)),
        ("queues", json::uint(stats.queues)),
        ("releases", json::uint(stats.releases)),
        ("preemptions", json::uint(stats.preemptions)),
        ("revocations", json::uint(stats.revocations)),
        ("coalesced_rounds", json::uint(stats.coalesced_rounds)),
    ])
}

/// Attach the correlated rack fault to every tenant in a population.
fn with_correlated_crash(
    mut specs: Vec<TenantSpec>,
    relaunch: Option<SimDuration>,
) -> Vec<TenantSpec> {
    for spec in specs.iter_mut() {
        spec.params.faults = FaultPlan::new(vec![FaultEvent::ExecutorCrash {
            at: SimTime::from_secs_f64(CHAOS_CRASH_SECS),
            count: 2,
            relaunch_after: relaunch,
        }]);
    }
    specs
}

/// The in-binary acceptance gate: the 100-tenant contended fleet must
/// replay byte-identically at `NOSTOP_JOBS=1` and the configured worker
/// count. Panics (exit ≠ 0) on any divergence.
fn assert_replay_at_scale(specs: &[TenantSpec]) -> u64 {
    let run = |jobs: usize| {
        let start = Instant::now();
        let mut fleet = FleetSim::new(specs, Some(FLEET_BUDGET), ArbiterPolicy::FairShare);
        fleet.set_jobs(jobs);
        fleet.run_epochs(FLEET_EPOCHS);
        let summary = fleet.summary_jsonl();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        eprintln!("replay check: jobs={jobs:<2} {wall_ms:>8.1} ms");
        (summary, fleet.digest())
    };
    let (solo, digest) = run(1);
    let pooled_jobs = jobs().max(2);
    let (pooled, pooled_digest) = run(pooled_jobs);
    assert_eq!(
        solo, pooled,
        "{FLEET_TENANTS}-tenant summary changed between NOSTOP_JOBS=1 and {pooled_jobs}"
    );
    assert_eq!(digest, pooled_digest);
    digest
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());

    let specs = fleet_specs(FLEET_TENANTS, 2026);
    let replay_digest = assert_replay_at_scale(&specs);

    // --- Policy scenarios at headline scale ---
    let mut scenario_rows = vec![scenario_row(
        "unconstrained",
        &specs,
        None,
        ArbiterPolicy::FairShare,
        FLEET_EPOCHS,
    )];
    for policy in POLICIES {
        scenario_rows.push(scenario_row(
            &format!("contended_{}", policy.name()),
            &specs,
            Some(FLEET_BUDGET),
            policy,
            FLEET_EPOCHS,
        ));
    }

    // --- Chaos grid: policies × correlated multi-tenant faults ---
    let mut chaos_rows = Vec::new();
    for policy in POLICIES {
        for (fault_name, relaunch) in [
            ("rack_crash_relaunch_30s", Some(SimDuration::from_secs(30))),
            ("rack_crash_permanent", None),
        ] {
            let specs = with_correlated_crash(fleet_specs(CHAOS_TENANTS, 777), relaunch);
            let mut row = scenario_row(
                &format!("{}__{fault_name}", policy.name()),
                &specs,
                Some(CHAOS_BUDGET),
                policy,
                CHAOS_EPOCHS,
            );
            if let Json::Obj(fields) = &mut row {
                fields.push(("fault".to_string(), json::str(fault_name)));
                fields.push(("crash_at_s".to_string(), json::num(CHAOS_CRASH_SECS)));
            }
            chaos_rows.push(row);
        }
    }

    let report = json::obj(vec![
        ("schema", json::str("nostop-fleet/1")),
        (
            "replay",
            json::obj(vec![
                ("tenants", json::uint(FLEET_TENANTS as u64)),
                ("epochs", json::uint(FLEET_EPOCHS)),
                ("budget", json::uint(FLEET_BUDGET as u64)),
                ("digest", json::str(format!("{replay_digest:016x}"))),
                ("identical_across_jobs", Json::Bool(true)),
            ]),
        ),
        ("scenarios", Json::Arr(scenario_rows)),
        ("chaos_grid", Json::Arr(chaos_rows)),
    ]);

    let text = report.to_string_pretty();
    std::fs::write(&path, format!("{text}\n")).expect("write BENCH_fleet.json");
    println!("{text}");
    eprintln!("wrote {path} (jobs={})", jobs());
}
