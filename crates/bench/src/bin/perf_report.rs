//! The benchmark trajectory — writes `BENCH_perf.json`.
//!
//! Times two layers and records the numbers the performance work is
//! judged by:
//!
//! 1. **Engine matrix** — the DES hot path, single-threaded: a fixed
//!    matrix of `(workload, interval, executors)` cells, each simulating a
//!    few hundred batches on one `StreamingEngine`. Reported as wall time
//!    and simulated batches per second (the unit the scheduler/broker
//!    optimizations move).
//! 2. **Driver matrix** — the experiment fabric: fig7-style and
//!    fig8-style cell grids run twice, once with `NOSTOP_JOBS=1` and once
//!    with the configured worker count. On a multi-core host the second
//!    pass shows the fan-out speedup; on a single-core host it honestly
//!    shows ~1× (the fabric's value there is the byte-identity contract,
//!    not throughput).
//!
//! Plus three single-cell rows: the incremental GP surrogate fit
//! (`gp_fit_256`, the tuner arena's steady state), the adversarial
//! scenario stack (flash crowds + hot-key skew through the
//! `scenario_runner` library), and the steady multi-tenant fleet.
//!
//! Also records the peak RSS (`VmHWM` from `/proc/self/status`, a proxy
//! for the bounded-listener memory guarantee) and the worker counts.
//! Non-deterministic by construction (it measures wall time); everything
//! else in the harness stays deterministic.
//!
//! Engine cells run `NOSTOP_PERF_REPEATS` times (default 3) and keep the
//! best wall time — on shared hosts the best-of-N is the least polluted
//! estimate of what the code costs.
//!
//! `perf_report --smoke [path]` is the CI guard: it re-times the engine
//! matrix and exits non-zero if any cell panics, lands more than 25%
//! below the throughput committed in `BENCH_perf.json` (or `path`), or
//! has no usable committed baseline at all (a stale report is a distinct
//! hard failure, never a silent pass). Nothing is written in smoke mode.

use nostop_baselines::BayesOpt;
use nostop_bench::driver::{
    make_system, measure_config, nostop_config, paper_rate, run_nostop, run_tuner,
};
use nostop_bench::parallel::{grid, jobs, map_cells_weighted};
use nostop_bench::scenario::run_method;
use nostop_bench::smoke::engine_baseline;
use nostop_core::arbiter::ArbiterPolicy;
use nostop_core::scenario::{ClusterKind, RateSpec, ScenarioSpec, SkewSpec};
use nostop_core::system::StreamingSystem;
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::json::{self, Json};
use nostop_simcore::SimDuration;
use nostop_workloads::{CostModel, WorkloadKind};
use spark_sim::fleet::{FleetSim, TenantSpec};
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};
use std::time::Instant;

const ENGINE_BATCHES: usize = 300;
const DRIVER_SEEDS: [u64; 2] = [11, 22];
const FIG8_ROUNDS: u64 = 12;
const BO_ITERATIONS: usize = 15;
/// Throughput floor for `--smoke`: fail below 75% of the committed number.
const SMOKE_FLOOR: f64 = 0.75;

/// Fleet smoke cell: a steady multi-tenant fleet run long enough that
/// most epochs are quiescent, single-threaded so the number tracks
/// per-core work (the worker pool is the driver matrix's story, not this
/// cell's). The cell's story is the sparse fast path: after the arming
/// runway (~25 dense epochs while controllers park and windows cap) the
/// remaining epochs replay in closed form, so epochs/s measures the
/// skip machinery, not the DES.
const FLEET_TENANTS: u32 = 32;
const FLEET_EPOCHS: u64 = 128;
const FLEET_BUDGET: u32 = 640;
/// `--smoke` scale guard: a 2,000-tenant steady fleet must complete with
/// the fast path engaged (skipped epochs > 0).
const SCALE_TENANTS: u32 = 2_000;
const SCALE_EPOCHS: u64 = 40;

/// The committed engine matrix: `(workload, interval_s, executors)`.
const MATRIX: [(WorkloadKind, f64, u32); 6] = [
    (WorkloadKind::LogisticRegression, 15.0, 14),
    (WorkloadKind::LinearRegression, 15.0, 14),
    (WorkloadKind::WordCount, 15.0, 8),
    (WorkloadKind::PageAnalyze, 15.0, 8),
    (WorkloadKind::WordCount, 2.0, 8),
    (WorkloadKind::WordCount, 40.0, 8),
];

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Engine-cell repeat count: `NOSTOP_PERF_REPEATS` (clamped ≥ 1), else 3.
fn engine_repeats() -> usize {
    std::env::var("NOSTOP_PERF_REPEATS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3usize)
        .max(1)
}

/// One engine-matrix cell: simulate `ENGINE_BATCHES` batches at a fixed
/// configuration and return the simulated virtual seconds covered.
fn run_engine_cell(kind: WorkloadKind, interval_s: f64, executors: u32) -> f64 {
    let engine = StreamingEngine::new(
        EngineParams::paper(kind, 7),
        StreamConfig::new(SimDuration::from_secs_f64(interval_s), executors),
        Box::new(ConstantRate::new(match kind {
            WorkloadKind::LogisticRegression | WorkloadKind::LinearRegression => 10_000.0,
            _ => 120_000.0,
        })),
    );
    let mut sys = SimSystem::new(engine);
    let mut virtual_s = 0.0;
    for _ in 0..ENGINE_BATCHES {
        virtual_s += sys.next_batch().interval_s;
    }
    virtual_s
}

/// A fig7-shaped driver cell: measure the default configuration, then a
/// short managed run. Much smaller than the real fig7 cell but the same
/// code path (engine + controller + measurement protocol).
fn fig7_style_cell(kind: WorkloadKind, seed: u64) -> f64 {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0xDEF));
    let default = measure_config(&mut sys, &[20.5, 10.0], 8, 15)
        .end_to_end
        .mean;
    let (run, _) = run_nostop(kind, seed, FIG8_ROUNDS);
    default + run.virtual_time_s
}

/// A fig8-shaped driver cell: a short SPSA run plus a short BO run.
fn fig8_style_cell(kind: WorkloadKind, seed: u64) -> f64 {
    let (run, _) = run_nostop(kind, seed, FIG8_ROUNDS);
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x0B0));
    let mut tuner = BayesOpt::new(nostop_config(kind).space, seed);
    let bo = run_tuner(&mut tuner, &mut sys, BO_ITERATIONS);
    run.virtual_time_s + bo.virtual_time_s
}

/// Relative host-time weight of one driver cell: the cost model's
/// closed-form estimate for a nominal paper batch. Only the ordering
/// matters (heaviest workloads get scheduled first).
fn cell_weight(kind: WorkloadKind) -> f64 {
    let rate = match kind {
        WorkloadKind::LogisticRegression | WorkloadKind::LinearRegression => 10_000.0,
        _ => 120_000.0,
    };
    CostModel::preset(kind).estimate_processing_secs((rate * 15.0) as u64, 8, 75)
}

/// Time one driver grid at a given worker count; returns `(wall_ms, sum)`
/// where the sum pins the work against dead-code elimination and lets the
/// two passes assert they computed the same thing.
fn time_grid(jobs_env: usize, cell: impl Fn(WorkloadKind, u64) -> f64 + Sync) -> (f64, f64) {
    std::env::set_var("NOSTOP_JOBS", jobs_env.to_string());
    let cells = grid(&WorkloadKind::ALL, &DRIVER_SEEDS);
    let (results, wall) = time_ms(|| {
        map_cells_weighted(
            &cells,
            |&(kind, _)| cell_weight(kind),
            |&(kind, seed)| cell(kind, seed),
        )
    });
    (wall, results.iter().sum())
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Best-of-`repeats` engine cell: `(virtual_s, best_wall_ms)`.
fn best_engine_cell(
    kind: WorkloadKind,
    interval: f64,
    executors: u32,
    repeats: usize,
) -> (f64, f64) {
    let mut best: Option<(f64, f64)> = None;
    for _ in 0..repeats {
        let (virtual_s, wall) = time_ms(|| run_engine_cell(kind, interval, executors));
        if best.map(|(_, w)| wall < w).unwrap_or(true) {
            best = Some((virtual_s, wall));
        }
    }
    best.expect("at least one repeat")
}

/// One fleet cell: run the steady 32-tenant fleet on one worker and
/// return its deterministic digest (pins the work against DCE and lets
/// repeats assert they simulated the same fleet). Steady tenants park
/// and arm, so the bulk of the epochs exercise the quiescent-tenant
/// fast-forward and the delta-driven arbiter barrier.
fn run_fleet_cell() -> u64 {
    let specs: Vec<TenantSpec> = (0..FLEET_TENANTS)
        .map(|i| {
            let kind = if i % 2 == 0 {
                WorkloadKind::WordCount
            } else {
                WorkloadKind::PageAnalyze
            };
            let mut spec = TenantSpec::steady(kind, 7, i);
            spec.priority = 1 + (i % 5);
            spec
        })
        .collect();
    let mut fleet = FleetSim::new(&specs, Some(FLEET_BUDGET), ArbiterPolicy::FairShare);
    fleet.set_jobs(1);
    fleet.run_epochs(FLEET_EPOCHS);
    fleet.digest()
}

/// Best-of-`repeats` fleet cell: `(digest, best_wall_ms)`.
fn best_fleet_cell(repeats: usize) -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..repeats {
        let (digest, wall) = time_ms(run_fleet_cell);
        if let Some((prev, _)) = best {
            assert_eq!(prev, digest, "fleet cell digest changed between repeats");
        }
        if best.map(|(_, w)| wall < w).unwrap_or(true) {
            best = Some((digest, wall));
        }
    }
    best.expect("at least one repeat")
}

/// Scenario smoke cell: horizon of the adversarial-arrivals run.
const SCENARIO_HORIZON_S: f64 = 600.0;

/// The inline spec for the scenario cell: flash crowds over a constant
/// base with hot-key partition skew, driven by the static default —
/// exercising the scenario stack end to end (combinators + skewed broker
/// + skew-stretched engine) without any controller variance.
fn scenario_cell_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "perf-smoke".into(),
        workload: "wordcount".into(),
        cluster: ClusterKind::Paper,
        seed: 17,
        rate_seed: None,
        horizon_s: SCENARIO_HORIZON_S,
        rounds: None,
        methods: vec!["static".into()],
        rate: RateSpec::FlashCrowd {
            base: Box::new(RateSpec::Constant { rate: 150_000.0 }),
            mean_gap_secs: 120.0,
            crowd_secs: 45.0,
            pareto_shape: 1.5,
            min_magnitude: 1.5,
            max_magnitude: 3.0,
        },
        skew: SkewSpec::HotKey {
            hot_fraction: 0.125,
            hot_weight: 6.0,
        },
        faults: vec![],
    }
}

/// One scenario cell: replay the inline adversarial spec with the static
/// default and return the batch count (deterministic — repeats assert
/// they simulated the same run).
fn run_scenario_cell() -> u64 {
    let spec = scenario_cell_spec();
    let r = run_method(&spec, "static").expect("scenario smoke cell runs");
    r.batches as u64
}

/// Best-of-`repeats` scenario cell: `(batches, best_wall_ms)`.
fn best_scenario_cell(repeats: usize) -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..repeats {
        let (batches, wall) = time_ms(run_scenario_cell);
        if let Some((prev, _)) = best {
            assert_eq!(
                prev, batches,
                "scenario cell batch count changed between repeats"
            );
        }
        if best.map(|(_, w)| wall < w).unwrap_or(true) {
            best = Some((batches, wall));
        }
    }
    best.expect("at least one repeat")
}

/// GP smoke cell: observations in the incremental fit (the tuner arena's
/// surrogate at full budget ×~5).
const GP_OBSERVATIONS: usize = 256;
const GP_DIM: usize = 8;

/// One GP cell: fit a [`GP_OBSERVATIONS`]-point surrogate through the
/// incremental add path (the BayesOpt steady state) and return a
/// posterior checksum that pins the work and lets repeats assert they
/// fitted the same model.
fn run_gp_cell() -> f64 {
    use nostop_baselines::gp::{GaussianProcess, Kernel};
    let mut rng = nostop_simcore::SimRng::seed_from_u64(29);
    let mut gp = GaussianProcess::new(Kernel::default()).with_incremental(true);
    for _ in 0..GP_OBSERVATIONS {
        let x: Vec<f64> = (0..GP_DIM).map(|_| rng.uniform(1.0, 20.0)).collect();
        let y = rng.uniform(-10.0, 10.0);
        gp.add(x, y);
    }
    let (m, v) = gp.posterior(&[10.5; GP_DIM]);
    m + v
}

/// Best-of-`repeats` GP cell: `(checksum, best_wall_ms)`.
fn best_gp_cell(repeats: usize) -> (f64, f64) {
    let mut best: Option<(f64, f64)> = None;
    for _ in 0..repeats {
        let (check, wall) = time_ms(run_gp_cell);
        if let Some((prev, _)) = best {
            assert_eq!(
                prev.to_bits(),
                check.to_bits(),
                "gp cell checksum changed between repeats"
            );
        }
        if best.map(|(_, w)| wall < w).unwrap_or(true) {
            best = Some((check, wall));
        }
    }
    best.expect("at least one repeat")
}

/// Find the committed `gp_adds_per_s` for the `gp_fit_256` smoke row.
fn gp_baseline(committed: &Json) -> Result<f64, String> {
    let gp = committed
        .get("gp_fit_256")
        .ok_or_else(|| "no committed gp_fit_256 section".to_string())?;
    match gp.field_f64("gp_adds_per_s") {
        Ok(aps) if aps > 0.0 && aps.is_finite() => Ok(aps),
        Ok(aps) => Err(format!(
            "gp_adds_per_s = {aps} (must be a positive finite number)"
        )),
        Err(e) => Err(e.to_string()),
    }
}

/// Find the committed `scenario_batches_per_s` for the scenario smoke row.
fn scenario_baseline(committed: &Json) -> Result<f64, String> {
    let sc = committed
        .get("scenario")
        .ok_or_else(|| "no committed scenario section".to_string())?;
    match sc.field_f64("scenario_batches_per_s") {
        Ok(bps) if bps > 0.0 && bps.is_finite() => Ok(bps),
        Ok(bps) => Err(format!(
            "scenario_batches_per_s = {bps} (must be a positive finite number)"
        )),
        Err(e) => Err(e.to_string()),
    }
}

/// Find the committed `fleet_epochs_per_s` for the fleet smoke row.
fn fleet_baseline(committed: &Json) -> Result<f64, String> {
    let fleet = committed
        .get("fleet")
        .ok_or_else(|| "no committed fleet section".to_string())?;
    match fleet.field_f64("fleet_epochs_per_s") {
        Ok(eps) if eps > 0.0 && eps.is_finite() => Ok(eps),
        Ok(eps) => Err(format!(
            "fleet_epochs_per_s = {eps} (must be a positive finite number)"
        )),
        Err(e) => Err(e.to_string()),
    }
}

/// CI smoke guard: re-time the engine matrix and compare against the
/// committed report at `path`. Returns the process exit code.
fn smoke(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smoke: cannot read {path}: {e}");
            return 1;
        }
    };
    let committed = Json::parse(&text).expect("committed report parses");
    let rows = committed
        .field_array("engine_matrix")
        .expect("engine_matrix array");
    let repeats = engine_repeats();
    let mut regressed = 0;
    let mut unusable = 0;
    for &(kind, interval, executors) in &MATRIX {
        let base_bps = match engine_baseline(rows, kind.name(), interval, executors) {
            Ok(bps) => bps,
            Err(e) => {
                // A cell the committed report cannot price is a hard
                // failure in its own right — NOT a pass, and NOT counted
                // as a regression (nothing got slower; the baseline is
                // stale or corrupt and must be regenerated).
                eprintln!(
                    "smoke: {} @ {interval}s × {executors}: {e} — \
                     regenerate {path} with `perf_report`",
                    kind.name()
                );
                unusable += 1;
                continue;
            }
        };
        let (_, wall) = best_engine_cell(kind, interval, executors, repeats);
        let bps = ENGINE_BATCHES as f64 / (wall / 1e3);
        let ratio = bps / base_bps;
        let verdict = if ratio >= SMOKE_FLOOR { "ok" } else { "FAIL" };
        println!(
            "smoke {:<22} {interval:>5.1}s x{executors:<3} {bps:>9.0} b/s vs {base_bps:>9.0} committed  ({ratio:.2}x) {verdict}",
            kind.name()
        );
        if ratio < SMOKE_FLOOR {
            regressed += 1;
        }
    }
    // 2,000-tenant scale row: a steady fleet at real fleet scale must
    // complete with the sparse fast path engaged. No committed baseline
    // — this is a functional floor (the fast path exists and engages at
    // scale), not a throughput comparison, so it runs once.
    {
        let start = Instant::now();
        let specs: Vec<TenantSpec> = (0..SCALE_TENANTS)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    WorkloadKind::WordCount
                } else {
                    WorkloadKind::PageAnalyze
                };
                TenantSpec::steady(kind, 2026, i)
            })
            .collect();
        let mut fleet = FleetSim::new(&specs, None, ArbiterPolicy::FairShare);
        fleet.set_jobs(1);
        fleet.enable_ledger_checkpointing(4_096);
        fleet.run_epochs(SCALE_EPOCHS);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let eps = SCALE_EPOCHS as f64 / (wall_ms / 1e3);
        fleet
            .arbiter()
            .check_conservation()
            .expect("2000-tenant ledger conserves");
        let skipped = fleet.total_skipped_epochs();
        if fleet.fastpath_enabled() && skipped == 0 {
            eprintln!("smoke: 2000-tenant steady fleet never fast-forwarded");
            regressed += 1;
        }
        println!(
            "smoke {:<22} {SCALE_TENANTS:>3}t x{SCALE_EPOCHS:<4} {eps:>9.1} ep/s  skipped={skipped} ok",
            "fleet(2000 steady)"
        );
    }
    // GP smoke row: the incremental surrogate fit. Same floor, same
    // stale-vs-slow distinction — a missing gp_fit_256 section is a
    // stale report, not a regression, and still fails hard.
    match gp_baseline(&committed) {
        Ok(base_aps) => {
            let (_, wall) = best_gp_cell(repeats);
            let aps = GP_OBSERVATIONS as f64 / (wall / 1e3);
            let ratio = aps / base_aps;
            let verdict = if ratio >= SMOKE_FLOOR { "ok" } else { "FAIL" };
            println!(
                "smoke {:<22} {GP_OBSERVATIONS:>3}obs dim{GP_DIM} {aps:>9.0} add/s vs {base_aps:>9.0} committed  ({ratio:.2}x) {verdict}",
                "gp_fit_256"
            );
            if ratio < SMOKE_FLOOR {
                regressed += 1;
            }
        }
        Err(e) => {
            eprintln!("smoke: gp_fit_256 cell: {e} — regenerate {path} with `perf_report`");
            unusable += 1;
        }
    }
    // Fleet smoke row: same floor, same stale-vs-slow distinction as the
    // engine cells — a missing fleet section is a stale report, not a
    // regression, and still fails hard.
    match fleet_baseline(&committed) {
        Ok(base_eps) => {
            let (_, wall) = best_fleet_cell(repeats);
            let eps = FLEET_EPOCHS as f64 / (wall / 1e3);
            let ratio = eps / base_eps;
            let verdict = if ratio >= SMOKE_FLOOR { "ok" } else { "FAIL" };
            println!(
                "smoke {:<22} {FLEET_TENANTS:>3}t x{FLEET_EPOCHS:<4} {eps:>9.1} ep/s vs {base_eps:>9.1} committed  ({ratio:.2}x) {verdict}",
                "fleet(steady)"
            );
            if ratio < SMOKE_FLOOR {
                regressed += 1;
            }
        }
        Err(e) => {
            eprintln!("smoke: fleet cell: {e} — regenerate {path} with `perf_report`");
            unusable += 1;
        }
    }
    // Scenario smoke row: the adversarial scenario stack (flash crowds +
    // hot-key skew through `scenario_runner`'s library). Same floor, same
    // stale-vs-slow distinction — a missing scenario section is a stale
    // report, not a regression, and still fails hard.
    match scenario_baseline(&committed) {
        Ok(base_bps) => {
            let (batches, wall) = best_scenario_cell(repeats);
            let bps = batches as f64 / (wall / 1e3);
            let ratio = bps / base_bps;
            let verdict = if ratio >= SMOKE_FLOOR { "ok" } else { "FAIL" };
            println!(
                "smoke {:<22} {SCENARIO_HORIZON_S:>4.0}s x{batches:<4} {bps:>9.1} b/s vs {base_bps:>9.1} committed  ({ratio:.2}x) {verdict}",
                "scenario(adversarial)"
            );
            if ratio < SMOKE_FLOOR {
                regressed += 1;
            }
        }
        Err(e) => {
            eprintln!("smoke: scenario cell: {e} — regenerate {path} with `perf_report`");
            unusable += 1;
        }
    }
    if regressed > 0 {
        eprintln!("smoke: {regressed} cell(s) regressed >25% vs {path}");
    }
    if unusable > 0 {
        eprintln!(
            "smoke: {unusable} matrix cell(s) missing from or unusable in {path} — \
             the committed report is stale, not the code slow"
        );
    }
    if regressed + unusable > 0 {
        1
    } else {
        println!(
            "smoke: engine matrix + gp + scenario + fleet cells within 25% of committed throughput"
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    if smoke_mode {
        std::process::exit(smoke(&path));
    }

    let configured_jobs = jobs();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- Layer 1: engine matrix, single-threaded, best-of-N ---
    let repeats = engine_repeats();
    let mut engine_rows = Vec::new();
    for &(kind, interval, executors) in &MATRIX {
        let (virtual_s, wall) = best_engine_cell(kind, interval, executors, repeats);
        engine_rows.push(json::obj(vec![
            ("workload", json::str(kind.name())),
            ("interval_s", json::num(interval)),
            ("executors", json::uint(executors as u64)),
            ("batches", json::uint(ENGINE_BATCHES as u64)),
            ("wall_ms", json::num(wall)),
            (
                "sim_batches_per_s",
                json::num(ENGINE_BATCHES as f64 / (wall / 1e3)),
            ),
            ("virtual_s_simulated", json::num(virtual_s)),
        ]));
    }

    // --- Layer 2: driver grids, serial vs parallel ---
    let mut driver_rows = Vec::new();
    for (name, cell) in [
        (
            "fig7_style",
            &fig7_style_cell as &(dyn Fn(WorkloadKind, u64) -> f64 + Sync),
        ),
        ("fig8_style", &fig8_style_cell),
    ] {
        let (serial_ms, serial_sum) = time_grid(1, cell);
        // With one job the "parallel" pass would re-run the identical
        // serial code and report a fake ~1× "speedup" (previously dressed
        // up as a `degraded` flag). Skip the comparison and say why
        // instead: a single-worker host has no fan-out to measure.
        let comparison = if configured_jobs > 1 {
            let (parallel_ms, parallel_sum) = time_grid(configured_jobs, cell);
            assert_eq!(
                serial_sum.to_bits(),
                parallel_sum.to_bits(),
                "fabric determinism violated in {name}"
            );
            Some((parallel_ms, serial_ms / parallel_ms))
        } else {
            None
        };
        driver_rows.push(json::obj(vec![
            ("grid", json::str(name)),
            (
                "cells",
                json::uint((WorkloadKind::ALL.len() * DRIVER_SEEDS.len()) as u64),
            ),
            ("serial_wall_ms", json::num(serial_ms)),
            (
                "parallel_wall_ms",
                comparison
                    .map(|(ms, _)| json::num(ms))
                    .unwrap_or(Json::Null),
            ),
            ("parallel_jobs", json::uint(configured_jobs as u64)),
            (
                "speedup",
                comparison.map(|(_, s)| json::num(s)).unwrap_or(Json::Null),
            ),
            (
                "parallel_comparison",
                if comparison.is_some() {
                    json::str("measured")
                } else {
                    json::str("n/a: single job configured, nothing to fan out")
                },
            ),
        ]));
    }

    // --- Layer 3: GP surrogate fit, single-threaded, best-of-N ---
    let (gp_check, gp_wall) = best_gp_cell(repeats);
    let gp_row = json::obj(vec![
        ("observations", json::uint(GP_OBSERVATIONS as u64)),
        ("dim", json::uint(GP_DIM as u64)),
        ("wall_ms", json::num(gp_wall)),
        (
            "gp_adds_per_s",
            json::num(GP_OBSERVATIONS as f64 / (gp_wall / 1e3)),
        ),
        ("posterior_check", json::num(gp_check)),
    ]);

    // --- Layer 3b: adversarial scenario cell, single-threaded, best-of-N ---
    let (scenario_batches, scenario_wall) = best_scenario_cell(repeats);
    let scenario_row = json::obj(vec![
        ("horizon_s", json::num(SCENARIO_HORIZON_S)),
        ("batches", json::uint(scenario_batches)),
        ("wall_ms", json::num(scenario_wall)),
        (
            "scenario_batches_per_s",
            json::num(scenario_batches as f64 / (scenario_wall / 1e3)),
        ),
    ]);

    // --- Layer 4: fleet cell, single-threaded, best-of-N ---
    let (fleet_digest, fleet_wall) = best_fleet_cell(repeats);
    let fleet_row = json::obj(vec![
        ("tenants", json::uint(FLEET_TENANTS as u64)),
        ("epochs", json::uint(FLEET_EPOCHS)),
        ("budget", json::uint(FLEET_BUDGET as u64)),
        ("policy", json::str(ArbiterPolicy::FairShare.name())),
        ("wall_ms", json::num(fleet_wall)),
        (
            "fleet_epochs_per_s",
            json::num(FLEET_EPOCHS as f64 / (fleet_wall / 1e3)),
        ),
        ("digest", json::str(format!("{fleet_digest:016x}"))),
    ]);

    let report = json::obj(vec![
        ("schema", json::str("nostop-perf/1")),
        ("configured_jobs", json::uint(configured_jobs as u64)),
        ("available_parallelism", json::uint(parallelism as u64)),
        ("engine_repeats", json::uint(repeats as u64)),
        ("engine_matrix", Json::Arr(engine_rows)),
        ("driver_grids", Json::Arr(driver_rows)),
        ("gp_fit_256", gp_row),
        ("scenario", scenario_row),
        ("fleet", fleet_row),
        (
            "peak_rss_kb",
            peak_rss_kb().map(json::uint).unwrap_or(Json::Null),
        ),
    ]);

    let text = report.to_string_pretty();
    std::fs::write(&path, format!("{text}\n")).expect("write BENCH_perf.json");
    println!("{text}");
    eprintln!("wrote {path}");
}
