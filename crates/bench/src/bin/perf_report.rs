//! The benchmark trajectory — writes `BENCH_perf.json`.
//!
//! Times two layers and records the numbers the performance work is
//! judged by:
//!
//! 1. **Engine matrix** — the DES hot path, single-threaded: a fixed
//!    matrix of `(workload, interval, executors)` cells, each simulating a
//!    few hundred batches on one `StreamingEngine`. Reported as wall time
//!    and simulated batches per second (the unit the scheduler/broker
//!    optimizations move).
//! 2. **Driver matrix** — the experiment fabric: fig7-style and
//!    fig8-style cell grids run twice, once with `NOSTOP_JOBS=1` and once
//!    with the configured worker count. On a multi-core host the second
//!    pass shows the fan-out speedup; on a single-core host it honestly
//!    shows ~1× (the fabric's value there is the byte-identity contract,
//!    not throughput).
//!
//! Also records the peak RSS (`VmHWM` from `/proc/self/status`, a proxy
//! for the bounded-listener memory guarantee) and the worker counts.
//! Non-deterministic by construction (it measures wall time); everything
//! else in the harness stays deterministic.

use nostop_baselines::BayesOpt;
use nostop_bench::driver::{
    make_system, measure_config, nostop_config, paper_rate, run_nostop, run_tuner,
};
use nostop_bench::parallel::{grid, jobs, map_cells};
use nostop_core::system::StreamingSystem;
use nostop_datagen::rate::ConstantRate;
use nostop_simcore::json::{self, Json};
use nostop_simcore::SimDuration;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};
use std::time::Instant;

const ENGINE_BATCHES: usize = 300;
const DRIVER_SEEDS: [u64; 2] = [11, 22];
const FIG8_ROUNDS: u64 = 12;
const BO_ITERATIONS: usize = 15;

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// One engine-matrix cell: simulate `ENGINE_BATCHES` batches at a fixed
/// configuration and return the simulated virtual seconds covered.
fn run_engine_cell(kind: WorkloadKind, interval_s: f64, executors: u32) -> f64 {
    let engine = StreamingEngine::new(
        EngineParams::paper(kind, 7),
        StreamConfig::new(SimDuration::from_secs_f64(interval_s), executors),
        Box::new(ConstantRate::new(match kind {
            WorkloadKind::LogisticRegression | WorkloadKind::LinearRegression => 10_000.0,
            _ => 120_000.0,
        })),
    );
    let mut sys = SimSystem::new(engine);
    let mut virtual_s = 0.0;
    for _ in 0..ENGINE_BATCHES {
        virtual_s += sys.next_batch().interval_s;
    }
    virtual_s
}

/// A fig7-shaped driver cell: measure the default configuration, then a
/// short managed run. Much smaller than the real fig7 cell but the same
/// code path (engine + controller + measurement protocol).
fn fig7_style_cell(kind: WorkloadKind, seed: u64) -> f64 {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0xDEF));
    let default = measure_config(&mut sys, &[20.5, 10.0], 8, 15)
        .end_to_end
        .mean;
    let (run, _) = run_nostop(kind, seed, FIG8_ROUNDS);
    default + run.virtual_time_s
}

/// A fig8-shaped driver cell: a short SPSA run plus a short BO run.
fn fig8_style_cell(kind: WorkloadKind, seed: u64) -> f64 {
    let (run, _) = run_nostop(kind, seed, FIG8_ROUNDS);
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x0B0));
    let mut tuner = BayesOpt::new(nostop_config(kind).space, seed);
    let bo = run_tuner(&mut tuner, &mut sys, BO_ITERATIONS);
    run.virtual_time_s + bo.virtual_time_s
}

/// Time one driver grid at a given worker count; returns `(wall_ms, sum)`
/// where the sum pins the work against dead-code elimination and lets the
/// two passes assert they computed the same thing.
fn time_grid(jobs_env: usize, cell: impl Fn(WorkloadKind, u64) -> f64 + Sync) -> (f64, f64) {
    std::env::set_var("NOSTOP_JOBS", jobs_env.to_string());
    let cells = grid(&WorkloadKind::ALL, &DRIVER_SEEDS);
    let (results, wall) = time_ms(|| map_cells(&cells, |&(kind, seed)| cell(kind, seed)));
    (wall, results.iter().sum())
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let configured_jobs = jobs();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- Layer 1: engine matrix, single-threaded ---
    let matrix: [(WorkloadKind, f64, u32); 6] = [
        (WorkloadKind::LogisticRegression, 15.0, 14),
        (WorkloadKind::LinearRegression, 15.0, 14),
        (WorkloadKind::WordCount, 15.0, 8),
        (WorkloadKind::PageAnalyze, 15.0, 8),
        (WorkloadKind::WordCount, 2.0, 8),
        (WorkloadKind::WordCount, 40.0, 8),
    ];
    let mut engine_rows = Vec::new();
    for &(kind, interval, executors) in &matrix {
        let (virtual_s, wall) = time_ms(|| run_engine_cell(kind, interval, executors));
        engine_rows.push(json::obj(vec![
            ("workload", json::str(kind.name())),
            ("interval_s", json::num(interval)),
            ("executors", json::uint(executors as u64)),
            ("batches", json::uint(ENGINE_BATCHES as u64)),
            ("wall_ms", json::num(wall)),
            (
                "sim_batches_per_s",
                json::num(ENGINE_BATCHES as f64 / (wall / 1e3)),
            ),
            ("virtual_s_simulated", json::num(virtual_s)),
        ]));
    }

    // --- Layer 2: driver grids, serial vs parallel ---
    let mut driver_rows = Vec::new();
    for (name, cell) in [
        (
            "fig7_style",
            &fig7_style_cell as &(dyn Fn(WorkloadKind, u64) -> f64 + Sync),
        ),
        ("fig8_style", &fig8_style_cell),
    ] {
        let (serial_ms, serial_sum) = time_grid(1, cell);
        let (parallel_ms, parallel_sum) = time_grid(configured_jobs, cell);
        assert_eq!(
            serial_sum.to_bits(),
            parallel_sum.to_bits(),
            "fabric determinism violated in {name}"
        );
        driver_rows.push(json::obj(vec![
            ("grid", json::str(name)),
            (
                "cells",
                json::uint((WorkloadKind::ALL.len() * DRIVER_SEEDS.len()) as u64),
            ),
            ("serial_wall_ms", json::num(serial_ms)),
            ("parallel_wall_ms", json::num(parallel_ms)),
            ("parallel_jobs", json::uint(configured_jobs as u64)),
            ("speedup", json::num(serial_ms / parallel_ms)),
        ]));
    }

    let report = json::obj(vec![
        ("schema", json::str("nostop-perf/1")),
        ("configured_jobs", json::uint(configured_jobs as u64)),
        ("available_parallelism", json::uint(parallelism as u64)),
        ("engine_matrix", Json::Arr(engine_rows)),
        ("driver_grids", Json::Arr(driver_rows)),
        (
            "peak_rss_kb",
            peak_rss_kb().map(json::uint).unwrap_or(Json::Null),
        ),
    ]);

    let text = report.to_string_pretty();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    std::fs::write(&path, format!("{text}\n")).expect("write BENCH_perf.json");
    println!("{text}");
    eprintln!("wrote {path}");
}
