use nostop_bench::driver::*;
use nostop_core::controller::{NoStop, RoundOutcome};
use nostop_core::system::StreamingSystem;
use nostop_workloads::WorkloadKind;

fn main() {
    let kind = WorkloadKind::LogisticRegression;
    let seed = 3u64;
    let rate = surge_rate(kind, seed ^ 0x5E7, 2.5, 4_000.0, 100_000.0);
    let mut sys = make_system(kind, seed, rate);
    let mut ns = NoStop::new(nostop_config(kind), seed);
    for r in 0..90 {
        let out = ns.run_round(&mut sys);
        let tag = match out {
            RoundOutcome::Optimized { .. } => "opt",
            RoundOutcome::Paused { .. } => "paused",
            RoundOutcome::Reset => "RESET",
            RoundOutcome::Woke => "woke",
        };
        if sys.now_s() > 3500.0 {
            eprintln!(
                "r{r} t={:.0} k={} phys={:?} {tag}",
                sys.now_s(),
                ns.k(),
                ns.current_physical()
            );
        }
    }
}
