//! The scenario-corpus runner — writes `BENCH_scenarios.json`.
//!
//! Replaces the per-figure-binary pattern: every experiment is a
//! committed `scenarios/*.json` file (workload × rate × skew × faults ×
//! cluster × methods), and this one binary replays the whole corpus.
//! Scenarios with methods run a chaos-style grid (NoStop vs Bayesian
//! optimization vs the static default over the horizon); scenarios with
//! no methods are trace-only (the arrival process is sampled and
//! summarized — the Fig-5 protocol).
//!
//! Every cell is a pure function of its spec, so the grid runs through
//! the parallel fabric and the report is byte-identical at any
//! `NOSTOP_JOBS` — the `scenarios` CI leg diffs a serial and an 8-way
//! run. On top of that, each scenario's cells are fingerprinted with an
//! FNV-1a digest checked against the committed `scenarios/DIGESTS.txt`,
//! so *any* behavioral drift in the engine, combinators, or controller
//! trips the corpus immediately. After an intentional change, regenerate
//! with `scenario_runner --write-digests`.
//!
//! Usage: `scenario_runner [out.json] [--dir scenarios/] [--write-digests]`
//!
//! `--canonicalize` rewrites every corpus file as its canonical pretty
//! serialization and exits — corpus maintenance, not an experiment run.

use nostop_bench::parallel::{jobs, map_cells};
use nostop_bench::scenario::{
    default_corpus_dir, fnv1a64, load_corpus, run_method, sample_rate, workload_of,
};
use nostop_core::scenario::ScenarioSpec;
use nostop_simcore::json::{self, Json};
use std::path::PathBuf;

/// Trace-only scenarios sample the rate at this granularity.
const SAMPLE_EVERY_S: u64 = 10;

fn trace_cell(spec: &ScenarioSpec) -> Json {
    let samples = sample_rate(spec, SAMPLE_EVERY_S);
    let rates: Vec<f64> = samples.iter().map(|&(_, r)| r).collect();
    let n = rates.len() as f64;
    let mean = rates.iter().sum::<f64>() / n;
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    // The full trajectory is pinned by a digest instead of being inlined —
    // the corpus stays reviewable while drift anywhere in the rate stack
    // still trips the comparison.
    let mut csv = String::from("t_s,rate\n");
    for (t, r) in &samples {
        csv.push_str(&format!("{t},{r}\n"));
    }
    json::obj(vec![
        ("kind", json::str("trace")),
        ("samples", json::uint(samples.len() as u64)),
        ("sample_every_s", json::uint(SAMPLE_EVERY_S)),
        ("min_rate", json::num(min)),
        ("max_rate", json::num(max)),
        ("mean_rate", json::num(mean)),
        (
            "trace_digest",
            json::str(format!("{:016x}", fnv1a64(csv.as_bytes()))),
        ),
    ])
}

fn opt_uint(v: Option<u64>) -> Json {
    match v {
        Some(x) => json::uint(x),
        None => Json::Null,
    }
}

fn method_cell(spec: &ScenarioSpec, method: &str) -> Json {
    let r = run_method(spec, method)
        .unwrap_or_else(|e| panic!("scenario `{}` method `{method}`: {e}", spec.name));
    json::obj(vec![
        ("kind", json::str("method")),
        ("method", json::str(method)),
        ("batches", json::uint(r.batches as u64)),
        ("stable_fraction", json::num(r.stable_fraction)),
        ("mean_delay_s", json::num(r.mean_delay_s)),
        ("mean_processing_s", json::num(r.mean_processing_s)),
        ("final_interval_s", json::num(r.final_interval_s)),
        ("final_executors", json::num(r.final_executors)),
        ("resets", opt_uint(r.resets)),
        ("converged_round", opt_uint(r.converged_round)),
        ("rounds", opt_uint(r.rounds)),
    ])
}

fn rate_kind(spec: &ScenarioSpec) -> &'static str {
    use nostop_core::scenario::RateSpec::*;
    match spec.rate {
        Constant { .. } => "constant",
        UniformRandom { .. } => "uniform-random",
        Sinusoid { .. } => "sinusoid",
        Ramp { .. } => "ramp",
        Surge { .. } => "surge",
        FlashCrowd { .. } => "flash-crowd",
        ParetoBurst { .. } => "pareto-burst",
        CorrelatedSurge { .. } => "correlated-surge",
    }
}

struct Args {
    out: String,
    dir: PathBuf,
    write_digests: bool,
    canonicalize: bool,
}

fn parse_args() -> Args {
    let mut out = "BENCH_scenarios.json".to_string();
    let mut dir = None;
    let mut write_digests = false;
    let mut canonicalize = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(argv.next().expect("--dir needs a path"))),
            "--write-digests" => write_digests = true,
            "--canonicalize" => canonicalize = true,
            flag if flag.starts_with("--") => panic!("unknown flag `{flag}`"),
            positional => out = positional.to_string(),
        }
    }
    Args {
        out,
        dir: dir.unwrap_or_else(default_corpus_dir),
        write_digests,
        canonicalize,
    }
}

/// Rewrite every corpus file as `to_json().to_string_pretty()` so the
/// committed corpus is always in canonical form (a root test enforces it).
fn canonicalize(dir: &PathBuf) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read scenario");
        let spec = nostop_bench::scenario::parse_scenario(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let canonical = format!("{}\n", spec.to_json().to_string_pretty());
        if canonical != text {
            std::fs::write(&path, canonical).expect("rewrite scenario");
            eprintln!("canonicalized {}", path.display());
        }
    }
}

fn main() {
    let args = parse_args();
    if args.canonicalize {
        canonicalize(&args.dir);
        return;
    }
    let specs = load_corpus(&args.dir).unwrap_or_else(|e| panic!("corpus: {e}"));

    // One fabric cell per (scenario, method); trace-only scenarios are a
    // single cell. Flat fan-out keeps the slowest grids from serializing
    // behind each other.
    let cells: Vec<(usize, Option<String>)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            if spec.methods.is_empty() {
                vec![(i, None)]
            } else {
                spec.methods.iter().map(|m| (i, Some(m.clone()))).collect()
            }
        })
        .collect();
    let results = map_cells(&cells, |(i, method)| {
        let spec = &specs[*i];
        match method {
            None => trace_cell(spec),
            Some(m) => method_cell(spec, m),
        }
    });

    // Group the flat results back into per-scenario objects (cells and
    // results share one order) and fingerprint each scenario's cells.
    let mut digests: Vec<(String, String)> = Vec::with_capacity(specs.len());
    let mut scenario_objs = Vec::with_capacity(specs.len());
    let mut cursor = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let count = if spec.methods.is_empty() {
            1
        } else {
            spec.methods.len()
        };
        let cell_jsons: Vec<Json> = results[cursor..cursor + count].to_vec();
        debug_assert!(cells[cursor].0 == i);
        cursor += count;
        let cells_text = Json::Arr(cell_jsons.clone()).to_string_pretty();
        let digest = format!("{:016x}", fnv1a64(cells_text.as_bytes()));
        digests.push((spec.name.clone(), digest.clone()));
        let kind = workload_of(spec).unwrap_or_else(|e| panic!("{e}"));
        scenario_objs.push(json::obj(vec![
            ("name", json::str(spec.name.clone())),
            ("workload", json::str(kind.name())),
            ("cluster", json::str(spec.cluster.name())),
            ("seed", json::uint(spec.seed)),
            ("rate_kind", json::str(rate_kind(spec))),
            ("skewed", Json::Bool(!spec.skew.is_none())),
            ("faults", json::uint(spec.faults.len() as u64)),
            ("horizon_s", json::num(spec.horizon_s)),
            ("digest", json::str(digest)),
            ("cells", Json::Arr(cell_jsons)),
        ]));
    }

    // Digest ledger: default-on check against the committed file, with an
    // explicit rewrite escape hatch for intentional behavior changes.
    let ledger_path = args.dir.join("DIGESTS.txt");
    let ledger_text: String = digests
        .iter()
        .map(|(name, d)| format!("{name} {d}\n"))
        .collect();
    if args.write_digests {
        std::fs::write(&ledger_path, &ledger_text).expect("write DIGESTS.txt");
        eprintln!("wrote {}", ledger_path.display());
    } else if ledger_path.is_file() {
        let committed = std::fs::read_to_string(&ledger_path).expect("read DIGESTS.txt");
        if committed != ledger_text {
            eprintln!("digest mismatch against {}:", ledger_path.display());
            eprintln!("--- committed ---\n{committed}--- computed ---\n{ledger_text}");
            panic!(
                "scenario output drifted; if intentional, regenerate with \
                 `scenario_runner --write-digests` and commit both files"
            );
        }
    }

    let report = json::obj(vec![
        ("schema", json::str("nostop-scenarios/1")),
        ("scenarios", Json::Arr(scenario_objs)),
    ]);
    let text = report.to_string_pretty();
    std::fs::write(&args.out, format!("{text}\n")).expect("write scenario report");
    println!("{text}");
    eprintln!("wrote {} (jobs={})", args.out, jobs());
}
