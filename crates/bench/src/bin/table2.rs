//! Table 2 — the evaluation cluster inventory, as encoded in the simulator.

use nostop_bench::report::{print_section, Table};
use spark_sim::Cluster;

fn main() {
    let cluster = Cluster::paper_heterogeneous();
    let mut table = Table::new(&["Node ID", "CPU", "Cores", "Speed", "Disk", "Type"]);
    for n in &cluster.nodes {
        table.row(&[
            (n.id + 1).to_string(),
            n.cpu.clone(),
            n.cores.to_string(),
            format!("{:.2}", n.speed),
            format!("{:?}", n.disk),
            if n.is_master { "Master" } else { "Worker" }.to_string(),
        ]);
    }
    print_section(
        "Table 2: cluster nodes (paper heterogeneous preset)",
        &table,
    );
    println!(
        "total worker cores: {} (supports the paper's 1..=20 executor range)",
        cluster.total_worker_cores()
    );
}
