//! The trace exporter — writes `trace_report.jsonl` and prints a summary.
//!
//! Runs a small grid of instrumented cells — `(workload, fault scenario)`
//! pairs, each a full engine + NoStop controller run with one shared
//! recorder — and emits every cell's trace as JSONL, preceded by a
//! `{"ev":"cell",...}` banner line. The grid goes through the parallel
//! fabric, so the file is **byte-identical for any `NOSTOP_JOBS`**: CI
//! diffs a serial export against an 8-way one, which pins down the whole
//! observability layer (DES timestamps only, per-cell recorders, causal
//! append order) in one check.
//!
//! Each cell's trace is validated with [`nostop_obs::check_jsonl`] before
//! it is written — a malformed trace (unbalanced spans, non-monotone
//! counters) aborts the report rather than shipping garbage.
//!
//! The human summary on stdout aggregates per-cell span statistics and
//! counter totals — the quick look an operator wants before reaching for
//! the raw JSONL. Under `--features obs-off` every trace is empty by
//! construction and the binary degrades to printing headers.

use nostop_bench::driver::{nostop_config, paper_rate};
use nostop_bench::parallel::{jobs, map_cells};
use nostop_core::controller::NoStop;
use nostop_obs::{check_jsonl, span_stats, Recorder, SpanStat};
use nostop_simcore::json;
use nostop_simcore::{SimDuration, SimTime};
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, FaultEvent, FaultPlan, SimSystem, StreamConfig, StreamingEngine};

const SEED: u64 = 7;
/// Controller rounds per cell — enough for spans, probes, faults, and a
/// reconfiguration history without making the CI leg slow.
const ROUNDS: u64 = 8;
/// Ring capacity per cell; sized so no cell evicts (`dropped` stays 0 and
/// the exported counter chain is complete from zero).
const RING: usize = 1 << 16;

const SCENARIOS: [&str; 3] = ["quiet", "crash_relaunch", "degraded"];

fn plan_for(scenario: &str) -> FaultPlan {
    match scenario {
        "quiet" => FaultPlan::none(),
        // A mid-run crash with capacity restored a minute later: exercises
        // the fault instants, the replan path, and the relaunch overhead
        // fields of the reconfigure span.
        "crash_relaunch" => FaultPlan::new(vec![FaultEvent::ExecutorCrash {
            at: SimTime::from_secs_f64(600.0),
            count: 4,
            relaunch_after: Some(SimDuration::from_secs(60)),
        }]),
        // Stragglers + flaky tasks + a receiver outage: retries, drops,
        // and slowdown-stretched stage spans all land in one trace.
        "degraded" => FaultPlan::new(vec![
            FaultEvent::NodeSlowdown {
                node: 1,
                from: SimTime::from_secs_f64(300.0),
                until: SimTime::from_secs_f64(1_500.0),
                factor: 0.5,
            },
            FaultEvent::TaskFailures {
                from: SimTime::from_secs_f64(300.0),
                until: SimTime::from_secs_f64(1_200.0),
                probability: 0.08,
            },
            FaultEvent::ReceiverOutage {
                from: SimTime::from_secs_f64(900.0),
                until: SimTime::from_secs_f64(1_000.0),
            },
        ]),
        other => panic!("unknown scenario `{other}`"),
    }
}

struct CellTrace {
    kind: WorkloadKind,
    scenario: &'static str,
    jsonl: String,
    stats: Vec<SpanStat>,
    counters: Vec<(&'static str, u64)>,
    events: usize,
    dropped: u64,
    virtual_s: f64,
}

fn run_cell(kind: WorkloadKind, scenario: &'static str) -> CellTrace {
    let recorder = Recorder::ring(RING);
    let mut params = EngineParams::paper(kind, SEED);
    params.faults = plan_for(scenario);
    let mut engine = StreamingEngine::new(
        params,
        StreamConfig::paper_initial(),
        paper_rate(kind, SEED ^ 0x7ACE),
    );
    engine.set_recorder(&recorder);
    let mut sys = SimSystem::new(engine);
    let mut ns = NoStop::new(nostop_config(kind), SEED);
    ns.set_recorder(&recorder);
    ns.run(&mut sys, ROUNDS);
    let virtual_s = sys.engine().now().as_secs_f64();

    let snap = recorder.snapshot();
    let jsonl = snap.to_jsonl();
    if let Err(e) = check_jsonl(&jsonl) {
        panic!("{} / {scenario}: malformed trace: {e}", kind.name());
    }
    CellTrace {
        kind,
        scenario,
        stats: span_stats(&snap.events),
        counters: snap.counters,
        events: snap.events.len(),
        dropped: snap.dropped,
        jsonl,
        virtual_s,
    }
}

fn banner(cell: &CellTrace) -> String {
    json::obj(vec![
        ("ev", json::str("cell")),
        ("workload", json::str(cell.kind.name())),
        ("scenario", json::str(cell.scenario)),
        ("seed", json::uint(SEED)),
        ("rounds", json::uint(ROUNDS)),
    ])
    .to_string()
}

fn print_summary(cells: &[CellTrace]) {
    for cell in cells {
        println!(
            "\n== {} / {} — {} events, {} dropped, {:.0} virtual s ==",
            cell.kind.name(),
            cell.scenario,
            cell.events,
            cell.dropped,
            cell.virtual_s
        );
        if !cell.stats.is_empty() {
            println!(
                "  {:<12} {:<12} {:>7} {:>14} {:>12}",
                "track", "span", "count", "total_virt_s", "mean_virt_s"
            );
            for s in &cell.stats {
                let total_s = s.total_us as f64 / 1e6;
                println!(
                    "  {:<12} {:<12} {:>7} {:>14.2} {:>12.2}",
                    s.track,
                    s.name,
                    s.count,
                    total_s,
                    total_s / s.count.max(1) as f64
                );
            }
        }
        if !cell.counters.is_empty() {
            println!("  {:<25} {:>12}", "counter", "total");
            for (name, total) in &cell.counters {
                println!("  {name:<25} {total:>12}");
            }
        }
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_report.jsonl".to_string());

    let cells: Vec<(WorkloadKind, &'static str)> =
        [WorkloadKind::WordCount, WorkloadKind::LogisticRegression]
            .iter()
            .flat_map(|&k| SCENARIOS.iter().map(move |&s| (k, s)))
            .collect();
    let results = map_cells(&cells, |&(kind, scenario)| run_cell(kind, scenario));

    let mut out = String::new();
    for cell in &results {
        out.push_str(&banner(cell));
        out.push('\n');
        out.push_str(&cell.jsonl);
    }
    std::fs::write(&path, &out).expect("write trace report");

    print_summary(&results);
    eprintln!(
        "\nwrote {path} ({} cells, {} lines, jobs={})",
        results.len(),
        out.lines().count(),
        jobs()
    );
}
