//! High-dimensional tuner arena — writes `BENCH_tuners.json`.
//!
//! Races the paper's optimizer (SPSA, wrapped as a [`Tuner`] via
//! `SpsaTuner`) against Bayesian optimization, random search, and grid
//! search on the *same* simulated cluster, at two dimensionalities: the
//! paper's 2-knob `ConfigSpace::paper_default()` and the 8-knob
//! `ConfigSpace::extended()` surface. Every method gets an identical
//! evaluation budget per cell; grid search sizes its lattice to the
//! budget with `GridSearch::auto`, which at dim 8 already needs 256
//! points for the *minimum* 2-level lattice — the "prohibitively
//! time-consuming" story of §1, now quantified.
//!
//! Everything printed to **stdout** is a pure function of the arena
//! constants — trajectories, regrets, winners — so CI can diff the output
//! byte-for-byte across `NOSTOP_JOBS` values *and* across the incremental
//! GP fast path and its full-refit probe mode
//! (`NOSTOP_NO_GP_INCREMENTAL=1`): the probe factorizes the same kernel
//! matrix with the same summation order, so BayesOpt's proposals are
//! bitwise identical either way. Wall-clock timings go to **stderr** and
//! — as `wall_ms`, best of `NOSTOP_PERF_REPEATS` runs — into the report
//! **file only**.
//!
//! The binary is also its own acceptance test: before writing anything it
//! drives two BayesOpt instances over the dim-8 space on a synthetic
//! objective — one pinned to the incremental GP, one to the full-refit
//! probe — and asserts every proposal is bitwise identical.

use nostop_baselines::{BayesOpt, GridSearch, RandomSearch, SpsaTuner, Tuner};
use nostop_bench::driver::{make_system, paper_rate, run_tuner};
use nostop_bench::parallel::{jobs, map_cells};
use nostop_core::space::ConfigSpace;
use nostop_simcore::json::{self, Json};
use nostop_workloads::WorkloadKind;
use std::time::Instant;

/// Evaluation budget per cell: every method may spend exactly this many
/// configuration measurements (grid stops early if its lattice is
/// smaller).
const EVALS: usize = 48;
/// Seeds per (tuner, dim, workload) group — trajectories are averaged
/// across them, regret is computed per seed before averaging.
const SEEDS: [u64; 3] = [11, 22, 33];
/// The workloads raced (the two cheapest presets keep the arena fast).
const KINDS: [WorkloadKind; 2] = [WorkloadKind::WordCount, WorkloadKind::PageAnalyze];
/// The two configuration surfaces.
const DIMS: [usize; 2] = [2, 8];
/// The four methods, in report order.
const TUNERS: [&str; 4] = ["spsa", "bayesopt", "random", "grid"];

fn space_for(dim: usize) -> ConfigSpace {
    match dim {
        2 => ConfigSpace::paper_default(),
        8 => ConfigSpace::extended(),
        _ => unreachable!("arena dims are 2 and 8"),
    }
}

/// Build a fresh tuner for a cell. Each method gets its own decorrelated
/// RNG stream; grid search is deterministic and ignores the seed.
fn make_tuner(name: &str, dim: usize, seed: u64) -> Box<dyn Tuner> {
    let space = space_for(dim);
    match name {
        "spsa" => Box::new(SpsaTuner::new(space, seed.wrapping_mul(7) + 1)),
        "bayesopt" => Box::new(BayesOpt::new(space, seed.wrapping_mul(7) + 2)),
        "random" => Box::new(RandomSearch::new(space, seed.wrapping_mul(7) + 3)),
        "grid" => Box::new(GridSearch::auto(space, EVALS)),
        _ => unreachable!("unknown tuner {name}"),
    }
}

/// One arena cell: a tuner racing on one workload at one seed.
#[derive(Clone, Copy)]
struct Cell {
    tuner: &'static str,
    dim: usize,
    kind: WorkloadKind,
    seed: u64,
}

/// The deterministic outcome of a cell (plus its host-dependent wall
/// time, which never reaches stdout).
struct CellOut {
    /// Best objective seen after evaluation `i`, padded to [`EVALS`] with
    /// the final value when the tuner finishes its budget early.
    best_so_far: Vec<f64>,
    /// Evaluations actually spent (36 for grid at dim 2, else 48).
    evals_used: usize,
    /// Virtual streaming seconds the search consumed.
    virtual_time_s: f64,
    wall_ms: f64,
}

/// Repeat count for wall-time measurement: `NOSTOP_PERF_REPEATS`
/// (clamped ≥ 1), default 1 — the deterministic trajectory is asserted
/// identical across repeats and the best wall time is kept.
fn report_repeats() -> usize {
    std::env::var("NOSTOP_PERF_REPEATS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1usize)
        .max(1)
}

fn run_cell(cell: Cell) -> CellOut {
    let mut best_wall = f64::INFINITY;
    let mut kept: Option<CellOut> = None;
    for _ in 0..report_repeats() {
        let start = Instant::now();
        let mut tuner = make_tuner(cell.tuner, cell.dim, cell.seed);
        let mut sys = make_system(
            cell.kind,
            cell.seed,
            paper_rate(cell.kind, cell.seed ^ 0x5EED),
        );
        let run = run_tuner(tuner.as_mut(), &mut sys, EVALS);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut best = f64::INFINITY;
        let mut best_so_far = Vec::with_capacity(EVALS);
        for step in &run.history {
            best = best.min(step.objective);
            best_so_far.push(best);
        }
        assert!(
            best.is_finite(),
            "{} dim{} {} seed{}: no finite evaluation",
            cell.tuner,
            cell.dim,
            cell.kind.name(),
            cell.seed
        );
        while best_so_far.len() < EVALS {
            best_so_far.push(best);
        }
        let out = CellOut {
            best_so_far,
            evals_used: run.history.len(),
            virtual_time_s: run.virtual_time_s,
            wall_ms,
        };
        if let Some(prev) = &kept {
            let same = prev
                .best_so_far
                .iter()
                .zip(&out.best_so_far)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                same && prev.evals_used == out.evals_used,
                "{} dim{} {} seed{}: trajectory changed between repeats",
                cell.tuner,
                cell.dim,
                cell.kind.name(),
                cell.seed
            );
        }
        if wall_ms < best_wall {
            best_wall = wall_ms;
        }
        kept = Some(out);
    }
    let mut out = kept.expect("at least one repeat");
    out.wall_ms = best_wall;
    out
}

/// The in-binary acceptance gate: BayesOpt's proposal stream must be
/// bitwise identical whether the GP surrogate extends its Cholesky
/// factor incrementally or refits from scratch. Runs over the dim-8
/// space on a cheap synthetic objective so the gate costs milliseconds.
fn assert_gp_modes_propose_identically() -> usize {
    let space = space_for(8);
    let synthetic = |p: &[f64]| -> f64 {
        p.iter()
            .enumerate()
            .map(|(i, &x)| (x - (i as f64 + 1.0)).powi(2) * 1e-3)
            .sum()
    };
    let mut fast = BayesOpt::new(space.clone(), 4242).with_gp_incremental(true);
    let mut probe = BayesOpt::new(space, 4242).with_gp_incremental(false);
    let iters = 40;
    for step in 0..iters {
        let a = fast.propose();
        let b = probe.propose();
        let identical =
            a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(
            identical,
            "GP mode gate: proposals diverged at step {step}: {a:?} vs {b:?}"
        );
        let y = synthetic(&a);
        fast.observe(&a, y);
        probe.observe(&b, y);
    }
    eprintln!("gp mode gate: {iters} proposals bitwise identical (incremental vs refit)");
    iters
}

/// The file copy of a row: the stdout row plus its wall time.
fn with_wall(row: &Json, wall_ms: f64) -> Json {
    let mut r = row.clone();
    if let Json::Obj(fields) = &mut r {
        fields.push(("wall_ms".to_string(), json::num(wall_ms)));
    }
    r
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_tuners.json".to_string());

    let gate_iters = assert_gp_modes_propose_identically();

    // Fixed cell order: tuner-major, then dim, workload, seed — the
    // merge in `map_cells` restores this order regardless of worker
    // count, so the report below is independent of `NOSTOP_JOBS`.
    let mut cells = Vec::new();
    for tuner in TUNERS {
        for dim in DIMS {
            for kind in KINDS {
                for seed in SEEDS {
                    cells.push(Cell {
                        tuner,
                        dim,
                        kind,
                        seed,
                    });
                }
            }
        }
    }
    let arena_start = Instant::now();
    let outs = map_cells(&cells, |cell| run_cell(*cell));
    for (cell, out) in cells.iter().zip(&outs) {
        eprintln!(
            "cell {:<9} dim{} {:<12} seed{:<3} {:>2} evals  {:>8.1} ms",
            cell.tuner,
            cell.dim,
            cell.kind.name(),
            cell.seed,
            out.evals_used,
            out.wall_ms
        );
    }

    let cell_index = |tuner: &str, dim: usize, kind: WorkloadKind, seed: u64| -> usize {
        cells
            .iter()
            .position(|c| c.tuner == tuner && c.dim == dim && c.kind == kind && c.seed == seed)
            .expect("cell exists")
    };

    // Oracle per (dim, workload, seed): the best final objective any
    // method reached in that group — regret is measured against it.
    let oracle = |dim: usize, kind: WorkloadKind, seed: u64| -> f64 {
        TUNERS
            .iter()
            .map(|t| {
                *outs[cell_index(t, dim, kind, seed)]
                    .best_so_far
                    .last()
                    .expect("padded to EVALS")
            })
            .fold(f64::INFINITY, f64::min)
    };

    // One report row per (tuner, dim, workload): trajectories and
    // regrets averaged across seeds in fixed order.
    let mut rows = Vec::new();
    for tuner in TUNERS {
        for dim in DIMS {
            for kind in KINDS {
                let group: Vec<usize> = SEEDS
                    .iter()
                    .map(|&s| cell_index(tuner, dim, kind, s))
                    .collect();
                let trajectory: Vec<f64> = (0..EVALS)
                    .map(|i| {
                        mean(
                            &group
                                .iter()
                                .map(|&c| outs[c].best_so_far[i])
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                let regret_trajectory: Vec<f64> = (0..EVALS)
                    .map(|i| {
                        mean(
                            &group
                                .iter()
                                .zip(SEEDS)
                                .map(|(&c, s)| outs[c].best_so_far[i] - oracle(dim, kind, s))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                let evals_used = outs[group[0]].evals_used;
                assert!(
                    group.iter().all(|&c| outs[c].evals_used == evals_used),
                    "{tuner} dim{dim}: evaluation count must not depend on the seed"
                );
                let virtual_time_mean = mean(
                    &group
                        .iter()
                        .map(|&c| outs[c].virtual_time_s)
                        .collect::<Vec<_>>(),
                );
                let wall_ms: f64 = group.iter().map(|&c| outs[c].wall_ms).sum();
                let row = json::obj(vec![
                    ("tuner", json::str(tuner)),
                    ("dim", json::uint(dim as u64)),
                    ("workload", json::str(kind.name())),
                    ("evaluations_used", json::uint(evals_used as u64)),
                    (
                        "best_objective_mean",
                        json::num(*trajectory.last().expect("EVALS > 0")),
                    ),
                    (
                        "final_regret_mean",
                        json::num(*regret_trajectory.last().expect("EVALS > 0")),
                    ),
                    ("virtual_time_s_mean", json::num(virtual_time_mean)),
                    ("trajectory", json::f64_array(&trajectory)),
                    ("regret_trajectory", json::f64_array(&regret_trajectory)),
                ]);
                rows.push((row, wall_ms));
            }
        }
    }

    // Per-(dim, workload) summary: the winning method and the group
    // oracle, plus grid's structural footprint at that dimensionality.
    let mut summaries = Vec::new();
    for dim in DIMS {
        for kind in KINDS {
            let final_mean = |t: &str| {
                mean(
                    &SEEDS
                        .iter()
                        .map(|&s| {
                            *outs[cell_index(t, dim, kind, s)]
                                .best_so_far
                                .last()
                                .expect("padded")
                        })
                        .collect::<Vec<_>>(),
                )
            };
            let winner = TUNERS
                .iter()
                .min_by(|a, b| final_mean(a).total_cmp(&final_mean(b)))
                .expect("tuners non-empty");
            let oracle_mean = mean(
                &SEEDS
                    .iter()
                    .map(|&s| oracle(dim, kind, s))
                    .collect::<Vec<_>>(),
            );
            summaries.push(json::obj(vec![
                ("dim", json::uint(dim as u64)),
                ("workload", json::str(kind.name())),
                ("winner", json::str(*winner)),
                ("winner_best_mean", json::num(final_mean(winner))),
                ("oracle_best_mean", json::num(oracle_mean)),
                (
                    "grid_lattice_points",
                    json::uint(GridSearch::auto(space_for(dim), EVALS).total_points() as u64),
                ),
            ]));
        }
    }

    let arena_wall = arena_start.elapsed().as_secs_f64();
    eprintln!(
        "arena: {} cells in {arena_wall:.1} s (jobs={})",
        cells.len(),
        jobs()
    );

    // Two renderings: stdout is a pure function of the arena constants
    // for CI byte-diffs; the file additionally carries wall times.
    let render = |with_timings: bool| {
        let picked: Vec<Json> = rows
            .iter()
            .map(|(row, wall)| {
                if with_timings {
                    with_wall(row, *wall)
                } else {
                    row.clone()
                }
            })
            .collect();
        json::obj(vec![
            ("schema", json::str("nostop-tuners/1")),
            (
                "arena",
                json::obj(vec![
                    ("evaluations_per_cell", json::uint(EVALS as u64)),
                    ("seeds_per_group", json::uint(SEEDS.len() as u64)),
                    (
                        "dims",
                        Json::Arr(DIMS.iter().map(|&d| json::uint(d as u64)).collect()),
                    ),
                    (
                        "workloads",
                        Json::Arr(KINDS.iter().map(|k| json::str(k.name())).collect()),
                    ),
                    (
                        "tuners",
                        Json::Arr(TUNERS.iter().map(|t| json::str(*t)).collect()),
                    ),
                ]),
            ),
            (
                "gp_mode_gate",
                json::obj(vec![
                    ("proposals_compared", json::uint(gate_iters as u64)),
                    ("bitwise_identical", Json::Bool(true)),
                ]),
            ),
            ("rows", Json::Arr(picked)),
            ("summary", Json::Arr(summaries.clone())),
        ])
    };

    let file_text = render(true).to_string_pretty();
    std::fs::write(&path, format!("{file_text}\n")).expect("write BENCH_tuners.json");
    println!("{}", render(false).to_string_pretty());
    eprintln!("wrote {path} (jobs={})", jobs());
}
