//! The shared experiment driver.
//!
//! Builds paper-configured systems and runs each method — NoStop, any
//! [`Tuner`] baseline, the static default, and back pressure — through
//! identical measurement procedures so cross-method comparisons are fair.

use nostop_baselines::{PidRateEstimator, Tuner};
use nostop_core::controller::{NoStop, NoStopConfig};
use nostop_core::system::{BatchObservation, StreamingSystem};
use nostop_datagen::rate::{RateProcess, SurgeRate, UniformRandomRate};
use nostop_simcore::stats::{summarize, Summary};
use nostop_simcore::SimRng;
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, SimSystem, StreamConfig, StreamingEngine};

/// The ρ cap used when scoring configurations uniformly across methods —
/// the same constant the controller's penalty schedule saturates at, so
/// there is a single source of truth for Eq. 3's cap.
pub use nostop_core::objective::RHO_CAP;

/// Stability headroom used in the method-agnostic score — re-exported from
/// `nostop_core::objective` (where `NoStopConfig::paper_default` also reads
/// it) so baseline tuners optimize the same robust objective NoStop ranks
/// configurations by.
pub use nostop_core::objective::STABILITY_HEADROOM as HEADROOM;

/// The paper's varying-rate process for a workload (Fig. 5 ranges,
/// redrawn every 30 s).
pub fn paper_rate(kind: WorkloadKind, seed: u64) -> Box<dyn RateProcess> {
    let (lo, hi) = kind.paper_rate_range();
    Box::new(UniformRandomRate::new(
        lo,
        hi,
        30.0,
        SimRng::seed_from_u64(seed),
    ))
}

/// The paper rate wrapped with a scheduled traffic surge (the §5.5
/// e-commerce scenario): `magnitude`× for `surge_secs` starting at
/// `onset_secs`.
pub fn surge_rate(
    kind: WorkloadKind,
    seed: u64,
    magnitude: f64,
    onset_secs: f64,
    surge_secs: f64,
) -> Box<dyn RateProcess> {
    Box::new(SurgeRate::scheduled(
        paper_rate(kind, seed),
        magnitude,
        onset_secs,
        surge_secs,
    ))
}

/// A paper-configured simulated system for `kind` (Table-2 cluster,
/// initial configuration = middle of the ranges).
pub fn make_system(kind: WorkloadKind, seed: u64, rate: Box<dyn RateProcess>) -> SimSystem {
    let engine = StreamingEngine::new(
        EngineParams::paper(kind, seed),
        StreamConfig::paper_initial(),
        rate,
    );
    SimSystem::new(engine)
}

/// The paper-default NoStop configuration adapted to `kind`'s rate range.
pub fn nostop_config(kind: WorkloadKind) -> NoStopConfig {
    let (lo, hi) = kind.paper_rate_range();
    NoStopConfig::paper_default().with_rate_range(lo, hi)
}

/// Performance of a configuration over a batch window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Mean/std/min/max of per-batch end-to-end delay, seconds.
    pub end_to_end: Summary,
    /// Mean processing time, seconds.
    pub mean_processing_s: f64,
    /// Mean scheduling delay, seconds.
    pub mean_scheduling_s: f64,
    /// Fraction of stable batches (Eq. 2).
    pub stable_fraction: f64,
    /// Mean observed input rate, records/second.
    pub mean_input_rate: f64,
    /// Batches measured.
    pub batches: usize,
}

/// Summarize a window of observations.
pub fn stats_of(window: &[BatchObservation]) -> RunStats {
    assert!(!window.is_empty(), "empty measurement window");
    let e2e: Vec<f64> = window.iter().map(|b| b.end_to_end_s()).collect();
    RunStats {
        end_to_end: summarize(&e2e),
        mean_processing_s: window.iter().map(|b| b.processing_s).sum::<f64>() / window.len() as f64,
        mean_scheduling_s: window.iter().map(|b| b.scheduling_delay_s).sum::<f64>()
            / window.len() as f64,
        stable_fraction: window.iter().filter(|b| b.is_stable()).count() as f64
            / window.len() as f64,
        mean_input_rate: window.iter().map(|b| b.input_rate).sum::<f64>() / window.len() as f64,
        batches: window.len(),
    }
}

/// Apply `physical`, let the system settle (drain + first matched batch),
/// then measure `batches` batches. The same procedure the controller and
/// every tuner use.
pub fn measure_config(
    sys: &mut SimSystem,
    physical: &[f64],
    batches: usize,
    settle_cap: usize,
) -> RunStats {
    sys.apply_config(physical);
    // Settle: wait for a batch cut under the new interval with an empty
    // queue, bounded by the cap.
    for _ in 0..settle_cap {
        let b = sys.next_batch();
        if (b.interval_s - physical[0]).abs() < 0.051 && b.queued_batches == 0 {
            break;
        }
    }
    let window: Vec<BatchObservation> = (0..batches).map(|_| sys.next_batch()).collect();
    stats_of(&window)
}

/// The Eq.-3 objective at the ρ cap with stability headroom — the
/// method-agnostic score.
pub fn penalized_objective(interval_s: f64, stats: &RunStats) -> f64 {
    interval_s + RHO_CAP * (stats.mean_processing_s - HEADROOM * interval_s).max(0.0)
}

/// Result of a NoStop run.
pub struct NoStopRun {
    /// The controller (trace, best config, counters).
    pub controller: NoStop,
    /// Virtual seconds consumed.
    pub virtual_time_s: f64,
    /// Rounds executed.
    pub rounds: u64,
}

/// Run NoStop on `kind` for `rounds` controller rounds.
pub fn run_nostop(kind: WorkloadKind, seed: u64, rounds: u64) -> (NoStopRun, SimSystem) {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x5EED));
    let mut ns = NoStop::new(nostop_config(kind), seed);
    ns.run(&mut sys, rounds);
    let t = sys.now_s();
    (
        NoStopRun {
            controller: ns,
            virtual_time_s: t,
            rounds,
        },
        sys,
    )
}

/// One step of a generic tuner's history.
#[derive(Debug, Clone)]
pub struct TunerStep {
    /// The configuration evaluated.
    pub physical: Vec<f64>,
    /// Its penalized objective.
    pub objective: f64,
    /// Virtual time when the evaluation finished.
    pub t_s: f64,
}

/// Result of driving a [`Tuner`] baseline.
pub struct TunerRun {
    /// Per-evaluation history.
    pub history: Vec<TunerStep>,
    /// Best `(config, objective)`.
    pub best: Option<(Vec<f64>, f64)>,
    /// Total reconfigurations applied.
    pub config_changes: u64,
    /// Virtual seconds consumed.
    pub virtual_time_s: f64,
}

/// Drive a tuner for `iterations` propose→measure→observe cycles using the
/// same measurement procedure as NoStop (settle, then 3 batches).
pub fn run_tuner(tuner: &mut dyn Tuner, sys: &mut SimSystem, iterations: usize) -> TunerRun {
    let mut history = Vec::with_capacity(iterations);
    let mut config_changes = 0;
    for _ in 0..iterations {
        if tuner.finished() {
            break;
        }
        let physical = tuner.propose();
        let stats = measure_config(sys, &physical, 3, 15);
        config_changes += 1;
        let objective = penalized_objective(physical[0], &stats);
        tuner.observe(&physical, objective);
        history.push(TunerStep {
            physical,
            objective,
            t_s: sys.now_s(),
        });
    }
    TunerRun {
        history,
        best: tuner.best(),
        config_changes,
        virtual_time_s: sys.now_s(),
    }
}

/// Run a static configuration for `batches` batches and report its
/// performance — the Fig-7 "default configuration" arm.
pub fn run_static(kind: WorkloadKind, seed: u64, physical: &[f64], batches: usize) -> RunStats {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0x5EED));
    measure_config(&mut sys, physical, batches, 15)
}

/// Result of a back-pressure run.
pub struct BackpressureRun {
    /// Performance over the measured window.
    pub stats: RunStats,
    /// Final rate limit the PID settled on (records/s).
    pub final_rate_limit: Option<f64>,
    /// Records retained (unconsumed) in the broker at the end — the
    /// freshness cost of throttling ingestion.
    pub broker_lag: u64,
}

/// Run Spark-style back pressure: a fixed configuration whose ingestion is
/// throttled by the PID estimator after every completed batch.
pub fn run_backpressure(
    kind: WorkloadKind,
    seed: u64,
    physical: &[f64],
    batches: usize,
    rate: Box<dyn RateProcess>,
) -> BackpressureRun {
    let mut sys = make_system(kind, seed, rate);
    sys.apply_config(physical);
    let mut pid = PidRateEstimator::spark_default(physical[0]);
    let mut window = Vec::with_capacity(batches);
    // Warm up a few batches, then measure while the PID adapts.
    for i in 0..(batches + 5) {
        let b = sys.next_batch();
        if let Some(limit) = pid.compute(
            b.completed_at_s,
            b.records,
            b.processing_s,
            b.scheduling_delay_s,
        ) {
            sys.engine_mut().set_rate_limit(Some(limit));
        }
        if i >= 5 {
            window.push(b);
        }
    }
    BackpressureRun {
        stats: stats_of(&window),
        final_rate_limit: pid.latest_rate(),
        broker_lag: sys.engine().broker_lag(),
    }
}

/// Mean and std of a per-seed metric across repetitions — the "repeat five
/// times" protocol of §6.3/§6.4.
pub fn repeat<F: FnMut(u64) -> f64>(seeds: &[u64], mut f: F) -> Summary {
    let values: Vec<f64> = seeds.iter().map(|&s| f(s)).collect();
    summarize(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_measurement_reports_sane_numbers() {
        let stats = run_static(WorkloadKind::WordCount, 1, &[10.0, 15.0], 6);
        assert_eq!(stats.batches, 6);
        assert!(stats.mean_processing_s > 0.0);
        assert!(stats.end_to_end.mean >= stats.mean_processing_s);
        assert!(stats.mean_input_rate > 100_000.0);
    }

    #[test]
    fn penalized_objective_matches_eq3_at_cap() {
        let mut stats = run_static(WorkloadKind::WordCount, 2, &[12.0, 15.0], 4);
        stats.mean_processing_s = 10.0;
        assert_eq!(penalized_objective(12.0, &stats), 12.0);
        stats.mean_processing_s = 14.0;
        // Violation measured against the 85% headroom point (10.2 s).
        let expected = 12.0 + 2.0 * (14.0 - 0.85 * 12.0);
        assert!((penalized_objective(12.0, &stats) - expected).abs() < 1e-12);
    }

    #[test]
    fn nostop_run_improves_on_default() {
        let (run, _) = run_nostop(WorkloadKind::WordCount, 3, 25);
        let (best, best_delay) = run.controller.best_config().expect("rounds ran");
        // Default = 20.5 s interval; NoStop's best intrinsic delay must
        // beat simply running at the default interval.
        assert!(best_delay < 20.5, "best {best_delay} at {best:?}");
        assert!(run.virtual_time_s > 0.0);
    }

    #[test]
    fn tuner_loop_runs_and_tracks_best() {
        use nostop_baselines::RandomSearch;
        use nostop_core::space::ConfigSpace;
        let mut sys = make_system(
            WorkloadKind::WordCount,
            4,
            paper_rate(WorkloadKind::WordCount, 44),
        );
        let mut rs = RandomSearch::new(ConfigSpace::paper_default(), 4);
        let run = run_tuner(&mut rs, &mut sys, 8);
        assert_eq!(run.history.len(), 8);
        assert_eq!(run.config_changes, 8);
        assert!(run.best.is_some());
        let objectives: Vec<f64> = run.history.iter().map(|h| h.objective).collect();
        let best = run.best.as_ref().unwrap().1;
        assert!(objectives.iter().all(|&o| o >= best - 1e-9));
    }

    #[test]
    fn backpressure_throttles_under_pressure() {
        // An undersized fixed config (5 s interval, 3 executors) for
        // WordCount at full rate: the PID must cut the ingest rate well
        // below the offered load (~150k rec/s mid-range; the config can
        // sustain only ~100k rec/s), leaving lag in the broker.
        let run = run_backpressure(
            WorkloadKind::WordCount,
            5,
            &[5.0, 3.0],
            12,
            paper_rate(WorkloadKind::WordCount, 55),
        );
        let limit = run.final_rate_limit.expect("PID produced a rate");
        assert!(limit < 130_000.0, "throttled: {limit}");
        assert!(run.broker_lag > 0, "freshness cost visible in broker lag");
    }

    #[test]
    fn repeat_summarizes_across_seeds() {
        let s = repeat(&[1, 2, 3, 4, 5], |seed| seed as f64);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }
}
