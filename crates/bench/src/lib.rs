//! Experiment harness for the NoStop reproduction.
//!
//! Every table and figure in the paper's evaluation (§6) has a regenerator
//! binary in `src/bin/`; they all drive experiments through the shared
//! [`driver`] so that NoStop, Bayesian optimization, back pressure, and the
//! static default are measured by identical procedures on identical
//! simulated clusters. [`report`] renders aligned tables and CSV blocks for
//! EXPERIMENTS.md.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table 2 — cluster inventory |
//! | `fig2` | Fig. 2 — batch interval vs processing time / schedule delay |
//! | `fig3` | Fig. 3 — executor count vs processing time / schedule delay |
//! | `fig5` | Fig. 5 — varying input-rate traces for the four workloads |
//! | `fig6` | Fig. 6 — optimization evolution per workload |
//! | `fig7` | Fig. 7 — improvement over the default configuration |
//! | `fig8` | Fig. 8 — SPSA vs Bayesian optimization |
//! | `backpressure_cmp` | abstract — NoStop vs Spark Back Pressure |
//! | `ablation_gains` | §5.6 — gain-sequence choices |
//! | `ablation_penalty` | §4.2.2 — penalty ramp and cap |
//! | `ablation_window` | §5.4 — metric-collection rules |
//! | `ablation_reset` | §5.5 — input-rate reset rule |

pub mod driver;
pub mod parallel;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod smoke;
