//! The parallel experiment fabric.
//!
//! Every figure regenerator runs a grid of independent experiment cells —
//! `(workload, seed)` pairs, ablation arms, repeat indices — where each
//! cell builds its own simulated system from its own seed and shares no
//! state with any other cell. That independence makes the grid trivially
//! parallel: [`map_cells`] fans the cells out over a worker pool of scoped
//! threads and merges results *by cell index*, so the output is
//! byte-identical to a serial run no matter how many workers raced.
//!
//! The pool size comes from the `NOSTOP_JOBS` environment variable,
//! defaulting to the machine's available parallelism. `NOSTOP_JOBS=1`
//! short-circuits to a plain serial loop (no threads spawned) — the
//! determinism regression tests diff that against `NOSTOP_JOBS=8`.
//!
//! Only `std` is used: `thread::scope` for borrowing the cell slice and
//! the closure without `'static` bounds, an atomic cursor for work
//! stealing, and one mutex per result slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker count: `NOSTOP_JOBS` if set (clamped to ≥ 1), else the
/// machine's available parallelism, else 1.
pub fn jobs() -> usize {
    match std::env::var("NOSTOP_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Apply `f` to every cell and return the results in cell order.
///
/// `f` must be deterministic per cell (build all randomness from the
/// cell's own seeds); under that contract the returned vector — and hence
/// any report printed from it — is identical for every worker count.
/// Panics in `f` propagate once all workers have stopped.
pub fn map_cells<I, O, F>(cells: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = cells.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return cells.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&cells[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every cell below the cursor was computed")
        })
        .collect()
}

/// [`map_cells`], but with longest-estimated-first scheduling.
///
/// `weight` estimates each cell's cost (any consistent unit — the drivers
/// use the cost model's `estimate_processing_secs`). Workers pull cells in
/// descending weight order, so the heaviest cell starts first instead of
/// landing on an almost-drained pool and serializing the tail (the classic
/// LPT heuristic). Results are still merged by cell index, so the output
/// is byte-identical to [`map_cells`] and to a serial run; only wall-clock
/// utilization changes. Ties keep cell order, making the pull order fully
/// deterministic.
pub fn map_cells_weighted<I, O, F, W>(cells: &[I], weight: W, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
    W: Fn(&I) -> f64,
{
    let n = cells.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return cells.iter().map(&f).collect();
    }
    let weights: Vec<f64> = cells.iter().map(&weight).collect();
    let mut order: Vec<usize> = (0..n).collect();
    // `total_cmp` keeps the comparator a true total order even if a weight
    // estimate comes back NaN (such cells sort as "heaviest").
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let rank = cursor.fetch_add(1, Ordering::Relaxed);
                if rank >= n {
                    break;
                }
                let i = order[rank];
                let out = f(&cells[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every cell below the cursor was computed")
        })
        .collect()
}

/// The full experiment grid for per-workload × per-seed protocols: one
/// cell per `(workload, seed)` pair, workloads outermost — the iteration
/// order every figure binary already used serially.
pub fn grid<K: Copy, S: Copy>(kinds: &[K], seeds: &[S]) -> Vec<(K, S)> {
    let mut cells = Vec::with_capacity(kinds.len() * seeds.len());
    for &k in kinds {
        for &s in seeds {
            cells.push((k, s));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_cell_order() {
        let cells: Vec<usize> = (0..64).collect();
        let out = map_cells(&cells, |&i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        // Simulate work of uneven duration so workers finish out of order.
        let cells: Vec<u64> = (0..40).collect();
        let slow = |&i: &u64| {
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        };
        let serial: Vec<_> = cells.iter().map(slow).collect();
        let parallel = map_cells(&cells, slow);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn weighted_map_matches_serial_output() {
        let cells: Vec<u64> = (0..40).collect();
        let slow = |&i: &u64| {
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        };
        let serial: Vec<_> = cells.iter().map(slow).collect();
        // Weight deliberately disagrees with the cell order (and has ties)
        // so the pull order differs from the index order.
        let weighted = map_cells_weighted(&cells, |&i| (i % 7) as f64, slow);
        assert_eq!(serial, weighted);
    }

    #[test]
    fn weighted_map_tolerates_nan_weights() {
        let cells: Vec<u64> = (0..8).collect();
        let out = map_cells_weighted(&cells, |&i| if i % 2 == 0 { f64::NAN } else { 1.0 }, |&i| i);
        assert_eq!(out, cells);
    }

    #[test]
    fn grid_is_workload_major() {
        let g = grid(&['a', 'b'], &[1, 2, 3]);
        assert_eq!(
            g,
            vec![('a', 1), ('a', 2), ('a', 3), ('b', 1), ('b', 2), ('b', 3)]
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u8> = map_cells(&Vec::<u8>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }
}
