//! Warm-replay cache for experiment grids.
//!
//! Several experiment protocols evaluate many *views* of the same
//! underlying simulated trajectory — e.g. the §5.4 window sweep computes a
//! statistic over the first `w` batches of an identical engine run for
//! several `w`. Re-simulating the trajectory per view multiplies host time
//! by the number of views for no new information: the engine is
//! deterministic per seed, and a batch stream is prefix-stable (batch `k`
//! does not depend on how many batches are simulated after it).
//!
//! [`ReplayCache`] memoizes such cells by an explicit fingerprint key. It
//! is deliberately opt-in — a driver constructs one and threads it through
//! the cells that share work. Two rules keep it honest:
//!
//! * **Key everything the cell output depends on.** The fingerprint must
//!   cover workload, seed, configuration, and run length — anything that
//!   would change a single byte of the result. When in doubt, don't cache.
//! * **Never inside timed comparisons.** A cache hit replays work done in
//!   another arm, so wrapping cells that a benchmark times (for example
//!   the serial-vs-parallel passes of `perf_report`) would fake the
//!   measurement. Caches belong in figure/ablation drivers where only the
//!   *values* matter.
//!
//! Concurrency: reads and inserts take a mutex, but `compute` runs outside
//! it, so parallel workers never serialize on each other's simulations.
//! Two workers racing on the same key may both compute it; cells are
//! deterministic, so both produce the same value and the first insert
//! wins.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default [`ReplayCache`] admission bound: far above any current
/// experiment grid (the largest driver stores a few hundred cells), yet a
/// hard ceiling on memory if a future driver loops over an unbounded
/// parameter space.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A memo table over deterministic experiment cells.
pub struct ReplayCache<K, V> {
    entries: Mutex<HashMap<K, V>>,
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    rejected: AtomicUsize,
}

impl<K: Eq + Hash + Clone, V: Clone> ReplayCache<K, V> {
    /// An empty cache with the [`DEFAULT_CAPACITY`] admission bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache admitting at most `capacity` distinct keys.
    ///
    /// Admission is deterministic first-insert-wins: once full, new keys
    /// are computed but never stored (no eviction of resident entries), so
    /// which keys are cached depends only on insertion order — never on
    /// timing. A rejected key costs a recompute per lookup, which is the
    /// same work as running without a cache; correctness never depends on
    /// a hit.
    pub fn with_capacity(capacity: usize) -> Self {
        ReplayCache {
            entries: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
        }
    }

    /// The cached value for `key`, computing and storing it on a miss.
    ///
    /// If the cache is at capacity the computed value is returned but not
    /// admitted (see [`with_capacity`](Self::with_capacity)).
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.entries.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        let mut entries = self.entries.lock().expect("cache poisoned");
        if entries.len() < self.capacity || entries.contains_key(&key) {
            entries.entry(key).or_insert_with(|| v.clone());
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Computed values that were not admitted because the cache was full.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The admission bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for ReplayCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_replays_without_computing() {
        let cache: ReplayCache<u64, Vec<f64>> = ReplayCache::new();
        let mut computes = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(7, || {
                computes += 1;
                vec![1.0, 2.0]
            });
            assert_eq!(v, vec![1.0, 2.0]);
        }
        assert_eq!(computes, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn first_insert_wins_on_a_racing_key() {
        let cache: ReplayCache<u8, u32> = ReplayCache::new();
        assert_eq!(cache.get_or_compute(1, || 10), 10);
        // A second compute for the same key returns its own value (the
        // caller already ran it) but does not overwrite the stored one.
        assert_eq!(cache.get_or_compute(1, || 99), 10);
        assert_eq!(cache.get_or_compute(1, || unreachable!()), 10);
    }

    #[test]
    fn capacity_bound_rejects_new_keys_deterministically() {
        let cache: ReplayCache<u8, u32> = ReplayCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.get_or_compute(1, || 10), 10);
        assert_eq!(cache.get_or_compute(2, || 20), 20);
        // The third key computes correctly but is never admitted.
        let mut computes = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(3, || {
                computes += 1;
                30
            });
            assert_eq!(v, 30);
        }
        assert_eq!(computes, 3, "a rejected key recomputes every lookup");
        assert_eq!(cache.len(), 2, "resident entries are never evicted");
        assert_eq!(cache.rejected(), 3);
        // The first-admitted keys keep hitting.
        assert_eq!(cache.get_or_compute(1, || unreachable!()), 10);
        assert_eq!(cache.get_or_compute(2, || unreachable!()), 20);
    }

    #[test]
    fn concurrent_workers_share_one_cache() {
        let cache: ReplayCache<u64, u64> = ReplayCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..32u64 {
                        assert_eq!(cache.get_or_compute(k, || k * k), k * k);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.hits() + cache.misses(), 128);
        // Every key is computed at least once; racing workers may compute
        // a key redundantly, but first-insert-wins keeps len at 32.
        assert!(cache.misses() >= 32);
    }
}
