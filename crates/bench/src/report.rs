//! Plain-text report rendering: aligned tables and CSV blocks.
//!
//! The figure regenerators print both a human-readable table (what you
//! compare against the paper's plot) and a machine-readable CSV block
//! (what you feed to a plotting tool). No plotting dependencies: the
//! deliverable is the *numbers*.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of display-formatted cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    let _ = write!(out, "  ");
                }
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Print a titled section with a table and its CSV block.
pub fn print_section(title: &str, table: &Table) {
    println!("== {title} ==");
    println!();
    println!("{}", table.render());
    println!("--- csv ---");
    println!("{}", table.to_csv());
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a `mean ± std` cell.
pub fn pm(mean: f64, std: f64, decimals: usize) -> String {
    format!("{mean:.decimals$} ± {std:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "2.5".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All data lines have the value column starting at the same offset.
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find("2.5").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn csv_is_plain() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pm(10.0, 1.5, 1), "10.0 ± 1.5");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
