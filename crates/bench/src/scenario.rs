//! Scenario-corpus plumbing: load `scenarios/*.json` files, build the
//! simulated system a [`ScenarioSpec`] describes, and drive each declared
//! method over it.
//!
//! This is the library half of the `scenario_runner` binary, split out so
//! the figure binaries can be thin wrappers over committed scenario files
//! (`fig5`/`fig6` load their specs from `scenarios/` and keep only their
//! presentation code) and so tests can drive scenarios directly.
//!
//! Determinism contract: every artifact of a scenario is a pure function
//! of its spec. The arrival process is built from
//! [`ScenarioSpec::effective_rate_seed`] (explicit `rate_seed`, or the
//! experiment drivers' `seed ^ 0x5EED` convention), the engine forks all
//! internal streams from `seed`, and faults/skew are declarative — so a
//! corpus replay is byte-identical at any `NOSTOP_JOBS`.

use crate::driver::{nostop_config, penalized_objective, stats_of};
use nostop_baselines::{BayesOpt, Tuner};
use nostop_core::controller::NoStop;
use nostop_core::scenario::{ClusterKind, ScenarioSpec};
use nostop_core::system::{BatchObservation, StreamingSystem};
use nostop_datagen::rate::{RateProcess, RateSpecExt};
use nostop_simcore::json::Json;
use nostop_simcore::{SimRng, SimTime};
use nostop_workloads::WorkloadKind;
use spark_sim::{EngineParams, FaultPlan, SimSystem, StreamConfig, StreamingEngine};
use std::path::{Path, PathBuf};

/// The static default configuration every comparison grid uses.
pub const STATIC_CONFIG: [f64; 2] = [20.5, 10.0];

/// Locate the committed corpus: `./scenarios` relative to the invocation
/// directory, falling back to the repository checkout next to this crate.
pub fn default_corpus_dir() -> PathBuf {
    let cwd = PathBuf::from("scenarios");
    if cwd.is_dir() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Parse one scenario file's text (schema-checked and validated).
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, String> {
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    ScenarioSpec::from_json(&json)
}

/// Load every `*.json` scenario in `dir`, sorted by file name so the
/// corpus order (and everything derived from it) is stable. Errors name
/// the offending file. Scenario names must be unique across the corpus.
pub fn load_corpus(dir: &Path) -> Result<Vec<ScenarioSpec>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no scenario files in {}", dir.display()));
    }
    let mut specs = Vec::with_capacity(files.len());
    let mut names = std::collections::BTreeSet::new();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let spec = parse_scenario(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if !names.insert(spec.name.clone()) {
            return Err(format!(
                "{}: duplicate scenario name `{}`",
                path.display(),
                spec.name
            ));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Resolve the spec's workload name against the canonical list.
pub fn workload_of(spec: &ScenarioSpec) -> Result<WorkloadKind, String> {
    WorkloadKind::from_name(&spec.workload).ok_or_else(|| {
        format!(
            "scenario `{}`: unknown workload `{}`",
            spec.name, spec.workload
        )
    })
}

/// Instantiate the spec's arrival process off its effective rate seed.
pub fn build_rate(spec: &ScenarioSpec) -> Box<dyn RateProcess> {
    spec.rate
        .build(SimRng::seed_from_u64(spec.effective_rate_seed()))
}

/// Engine parameters for the spec: the declared cluster preset with the
/// spec's faults and skew installed. An empty fault list and `SkewSpec::
/// None` reproduce `EngineParams::paper`/`testbed` exactly, which is what
/// makes the fig wrappers byte-identical to their pre-corpus versions.
pub fn engine_params(spec: &ScenarioSpec) -> Result<EngineParams, String> {
    let kind = workload_of(spec)?;
    let mut params = match spec.cluster {
        ClusterKind::Paper => EngineParams::paper(kind, spec.seed),
        ClusterKind::Testbed => EngineParams::testbed(kind, spec.seed),
    };
    params.faults = FaultPlan::from_specs(&spec.faults);
    params.skew = spec.skew;
    Ok(params)
}

/// The full simulated system for a spec (paper-initial configuration).
pub fn build_system(spec: &ScenarioSpec) -> Result<SimSystem, String> {
    let engine = StreamingEngine::new(
        engine_params(spec)?,
        StreamConfig::paper_initial(),
        build_rate(spec),
    );
    Ok(SimSystem::new(engine))
}

/// A [`StreamingSystem`] that remembers every batch it handed out, so a
/// method can be driven by its own protocol and still be scored on the
/// full history (the chaos-grid pattern).
pub struct Recording {
    /// The wrapped system.
    pub inner: SimSystem,
    /// Every observation in completion order.
    pub log: Vec<BatchObservation>,
}

impl Recording {
    /// Build the spec's system wrapped with observation logging.
    pub fn new(spec: &ScenarioSpec) -> Result<Self, String> {
        Ok(Recording {
            inner: build_system(spec)?,
            log: Vec::new(),
        })
    }
}

impl StreamingSystem for Recording {
    fn apply_config(&mut self, physical: &[f64]) {
        self.inner.apply_config(physical);
    }
    fn next_batch(&mut self) -> BatchObservation {
        let b = self.inner.next_batch();
        self.log.push(b);
        b
    }
    fn now_s(&self) -> f64 {
        self.inner.now_s()
    }
}

/// One method's outcome over a scenario.
pub struct MethodResult {
    /// Batches completed over the run.
    pub batches: usize,
    /// Fraction of stable batches (Eq. 2).
    pub stable_fraction: f64,
    /// Mean end-to-end delay, seconds.
    pub mean_delay_s: f64,
    /// Mean processing time, seconds.
    pub mean_processing_s: f64,
    /// Final applied batch interval, seconds.
    pub final_interval_s: f64,
    /// Final executor count.
    pub final_executors: f64,
    /// Controller resets fired (`None` for non-NoStop methods).
    pub resets: Option<u64>,
    /// First round the pause rule fired (`None` = never, or non-NoStop).
    pub converged_round: Option<u64>,
    /// Rounds the controller ran (`None` for non-NoStop methods).
    pub rounds: Option<u64>,
}

/// Drive `method` over the spec's horizon (or, for `nostop` with
/// `spec.rounds` set, that many controller rounds — the Fig-6 protocol).
pub fn run_method(spec: &ScenarioSpec, method: &str) -> Result<MethodResult, String> {
    let kind = workload_of(spec)?;
    let mut sys = Recording::new(spec)?;
    let horizon = spec.horizon_s;
    let mut resets = None;
    let mut converged_round = None;
    let mut rounds = None;
    let mut final_config: Option<[f64; 2]> = None;
    match method {
        "nostop" => {
            let mut ns = NoStop::new(nostop_config(kind), spec.seed);
            match spec.rounds {
                Some(n) => ns.run(&mut sys, n),
                None => {
                    while sys.now_s() < horizon {
                        ns.run_round(&mut sys);
                    }
                }
            }
            let trace = ns.trace();
            resets = Some(trace.resets() as u64);
            converged_round = trace
                .rounds
                .iter()
                .find(|r| r.paused_after)
                .map(|r| r.round);
            rounds = Some(trace.rounds.len() as u64);
            let phys = ns.current_physical();
            final_config = Some([phys[0], phys[1]]);
        }
        "bo" => {
            let mut bo = BayesOpt::new(nostop_config(kind).space, spec.seed);
            while sys.now_s() < horizon && !bo.finished() {
                let physical = bo.propose();
                sys.apply_config(&physical);
                for _ in 0..15 {
                    let b = sys.next_batch();
                    if (b.interval_s - physical[0]).abs() < 0.051 && b.queued_batches == 0 {
                        break;
                    }
                }
                let window: Vec<BatchObservation> = (0..3).map(|_| sys.next_batch()).collect();
                let stats = stats_of(&window);
                bo.observe(&physical, penalized_objective(physical[0], &stats));
            }
            // Park at the best configuration found and ride out the rest
            // of the horizon — BO has no online recovery story.
            if let Some((best, _)) = bo.best() {
                final_config = Some([best[0], best[1]]);
                sys.apply_config(&best);
            }
            while sys.now_s() < horizon {
                sys.next_batch();
            }
        }
        "static" => {
            sys.apply_config(&STATIC_CONFIG);
            final_config = Some(STATIC_CONFIG);
            while sys.now_s() < horizon {
                sys.next_batch();
            }
        }
        other => return Err(format!("unknown method `{other}`")),
    }
    let log = &sys.log;
    let batches = log.len();
    let (stable_fraction, mean_delay_s, mean_processing_s) = if batches == 0 {
        (0.0, 0.0, 0.0)
    } else {
        (
            log.iter().filter(|b| b.is_stable()).count() as f64 / batches as f64,
            log.iter().map(|b| b.end_to_end_s()).sum::<f64>() / batches as f64,
            log.iter().map(|b| b.processing_s).sum::<f64>() / batches as f64,
        )
    };
    let fallback = log.last().map(|b| [b.interval_s, b.num_executors as f64]);
    let [final_interval_s, final_executors] =
        final_config.or(fallback).unwrap_or([f64::NAN, f64::NAN]);
    Ok(MethodResult {
        batches,
        stable_fraction,
        mean_delay_s,
        mean_processing_s,
        final_interval_s,
        final_executors,
        resets,
        converged_round,
        rounds,
    })
}

/// Sample the spec's arrival process every `every_s` seconds over the
/// horizon — the trace-only protocol for scenarios with no methods
/// (the Fig-5 panels). Returns `(t_s, rate)` pairs.
pub fn sample_rate(spec: &ScenarioSpec, every_s: u64) -> Vec<(u64, f64)> {
    let mut rate = build_rate(spec);
    let horizon = spec.horizon_s as u64;
    (0..=horizon)
        .step_by(every_s.max(1) as usize)
        .map(|t| {
            let at = SimTime::from_micros(t * 1_000_000);
            (t, rate.rate_at(at))
        })
        .collect()
}

/// FNV-1a 64-bit digest — the corpus's per-scenario output fingerprint.
/// Stable across platforms and independent of the JSON file layout.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use nostop_core::scenario::{RateSpec, SkewSpec};

    fn spec(methods: &[&str]) -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".into(),
            workload: "wordcount".into(),
            cluster: ClusterKind::Paper,
            seed: 11,
            rate_seed: None,
            horizon_s: 300.0,
            rounds: None,
            methods: methods.iter().map(|m| m.to_string()).collect(),
            rate: RateSpec::Constant { rate: 150_000.0 },
            skew: SkewSpec::None,
            faults: Vec::new(),
        }
    }

    #[test]
    fn static_method_runs_to_horizon() {
        let result = run_method(&spec(&["static"]), "static").unwrap();
        assert!(result.batches > 0);
        assert!(result.mean_processing_s > 0.0);
        assert_eq!(result.final_interval_s, 20.5);
        assert!(result.resets.is_none());
    }

    #[test]
    fn unknown_method_and_workload_error() {
        assert!(run_method(&spec(&[]), "magic").is_err());
        let mut s = spec(&[]);
        s.workload = "nope".into();
        assert!(build_system(&s).is_err());
    }

    #[test]
    fn rate_sampling_is_deterministic() {
        let s = spec(&[]);
        assert_eq!(sample_rate(&s, 10), sample_rate(&s, 10));
        assert_eq!(sample_rate(&s, 10).len(), 31);
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"nostop"), fnv1a64(b"nostop"));
        assert_ne!(fnv1a64(b"nostop"), fnv1a64(b"nostop "));
    }

    #[test]
    fn skewed_scenario_is_slower_than_uniform() {
        let uniform = spec(&["static"]);
        let mut skewed = spec(&["static"]);
        skewed.skew = SkewSpec::HotKey {
            hot_fraction: 0.1,
            hot_weight: 8.0,
        };
        let u = run_method(&uniform, "static").unwrap();
        let s = run_method(&skewed, "static").unwrap();
        assert!(
            s.mean_processing_s > u.mean_processing_s,
            "hot keys must stretch processing: skewed {} vs uniform {}",
            s.mean_processing_s,
            u.mean_processing_s
        );
    }
}
