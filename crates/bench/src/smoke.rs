//! Baseline lookup for `perf_report --smoke`.
//!
//! The smoke guard compares a re-timed engine matrix against the numbers
//! committed in `BENCH_perf.json`. Two very different failures used to be
//! folded into one counter: "this cell got slower" and "the committed
//! report has no such cell" (stale after a matrix change, or a field
//! typo). The second is not a performance regression — it means the
//! committed report must be regenerated — and deserves its own verdict so
//! CI output says which action to take.

use nostop_simcore::json::Json;

/// Why a committed baseline could not be used for a matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// No row matches `(workload, interval_s, executors)` — the committed
    /// report predates the current matrix and must be regenerated.
    MissingRow,
    /// A row matches but its throughput field is absent or unusable.
    BadField(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::MissingRow => write!(f, "no committed row for this cell"),
            BaselineError::BadField(msg) => write!(f, "committed row unusable: {msg}"),
        }
    }
}

/// Find the committed `sim_batches_per_s` for one engine-matrix cell.
pub fn engine_baseline(
    rows: &[Json],
    workload: &str,
    interval_s: f64,
    executors: u32,
) -> Result<f64, BaselineError> {
    let row = rows
        .iter()
        .find(|r| {
            r.field_str("workload") == Ok(workload)
                && r.field_f64("interval_s") == Ok(interval_s)
                && r.field_u64("executors") == Ok(executors as u64)
        })
        .ok_or(BaselineError::MissingRow)?;
    match row.field_f64("sim_batches_per_s") {
        Ok(bps) if bps > 0.0 && bps.is_finite() => Ok(bps),
        Ok(bps) => Err(BaselineError::BadField(format!(
            "sim_batches_per_s = {bps} (must be a positive finite number)"
        ))),
        Err(e) => Err(BaselineError::BadField(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nostop_simcore::json;

    fn row(workload: &str, interval_s: f64, executors: u64, bps: f64) -> Json {
        json::obj(vec![
            ("workload", json::str(workload)),
            ("interval_s", json::num(interval_s)),
            ("executors", json::uint(executors)),
            ("sim_batches_per_s", json::num(bps)),
        ])
    }

    #[test]
    fn finds_the_matching_row() {
        let rows = vec![
            row("WordCount", 2.0, 8, 100.0),
            row("WordCount", 15.0, 8, 250.0),
        ];
        assert_eq!(engine_baseline(&rows, "WordCount", 15.0, 8), Ok(250.0));
        assert_eq!(engine_baseline(&rows, "WordCount", 2.0, 8), Ok(100.0));
    }

    #[test]
    fn missing_row_is_not_a_regression() {
        let rows = vec![row("WordCount", 15.0, 8, 250.0)];
        assert_eq!(
            engine_baseline(&rows, "PageAnalyze", 15.0, 8),
            Err(BaselineError::MissingRow)
        );
        // Same workload, different shape: still missing, not matched loosely.
        assert_eq!(
            engine_baseline(&rows, "WordCount", 40.0, 8),
            Err(BaselineError::MissingRow)
        );
        assert_eq!(
            engine_baseline(&rows, "WordCount", 15.0, 14),
            Err(BaselineError::MissingRow)
        );
    }

    #[test]
    fn unusable_throughput_field_is_its_own_error() {
        let no_field = json::obj(vec![
            ("workload", json::str("WordCount")),
            ("interval_s", json::num(15.0)),
            ("executors", json::uint(8)),
        ]);
        match engine_baseline(&[no_field], "WordCount", 15.0, 8) {
            Err(BaselineError::BadField(_)) => {}
            other => panic!("expected BadField, got {other:?}"),
        }
        let zero = vec![row("WordCount", 15.0, 8, 0.0)];
        match engine_baseline(&zero, "WordCount", 15.0, 8) {
            Err(BaselineError::BadField(msg)) => assert!(msg.contains("positive")),
            other => panic!("expected BadField, got {other:?}"),
        }
    }

    #[test]
    fn empty_report_reports_every_cell_missing() {
        assert_eq!(
            engine_baseline(&[], "WordCount", 15.0, 8),
            Err(BaselineError::MissingRow)
        );
    }
}
