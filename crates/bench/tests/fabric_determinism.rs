//! The fabric's byte-identity contract, end to end.
//!
//! Runs a reduced fig7-shaped experiment grid — real engines, real
//! controller, real measurement protocol, rendered to a report string —
//! once with `NOSTOP_JOBS=1` (plain serial loop, no threads) and once
//! with `NOSTOP_JOBS=8` (worker pool racing over the cells), and demands
//! the two rendered reports be byte-identical.
//!
//! This file holds exactly one test: it mutates `NOSTOP_JOBS`, which is
//! process-global state, and integration-test binaries are the only place
//! that is safe to do without racing sibling tests.

use nostop_bench::driver::{make_system, measure_config, paper_rate, run_nostop};
use nostop_bench::parallel::{grid, map_cells};
use nostop_workloads::WorkloadKind;
use std::fmt::Write as _;

const SEEDS: [u64; 2] = [11, 22];

/// A miniature fig7 cell: default-configuration measurement plus a short
/// managed run, rendered with full float precision so any divergence —
/// even in the last ulp — breaks the byte comparison.
fn run_cell(kind: WorkloadKind, seed: u64) -> String {
    let mut sys = make_system(kind, seed, paper_rate(kind, seed ^ 0xDEF));
    let stats = measure_config(&mut sys, &[20.5, 10.0], 4, 15);
    let (run, _) = run_nostop(kind, seed, 6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{},{seed},{:?},{:?},{:?},{}",
        kind.name(),
        stats.end_to_end.mean,
        stats.end_to_end.std_dev,
        run.virtual_time_s,
        run.controller.config_changes(),
    );
    out
}

fn render_report(jobs: usize) -> String {
    std::env::set_var("NOSTOP_JOBS", jobs.to_string());
    let cells = grid(&WorkloadKind::ALL, &SEEDS);
    map_cells(&cells, |&(kind, seed)| run_cell(kind, seed)).concat()
}

#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    let serial = render_report(1);
    let parallel = render_report(8);
    assert_eq!(
        serial.lines().count(),
        WorkloadKind::ALL.len() * SEEDS.len(),
        "sanity: every cell rendered one line"
    );
    assert!(
        serial == parallel,
        "fabric broke byte-identity:\nserial:\n{serial}\nparallel:\n{parallel}"
    );
}
