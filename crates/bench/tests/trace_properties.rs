//! Property tests for the observability layer under adversarial schedules.
//!
//! The trace contract — every exit matches the innermost open entry on its
//! track, exits never precede entries, counter totals are monotone — must
//! hold not just on the happy path but across arbitrary fault plans and
//! mid-run reconfigurations. These properties drive a real engine (and, in
//! the deterministic test, a real NoStop controller) through randomized
//! crash/slowdown/outage/flaky-task schedules and validate both the
//! in-memory trace and its JSONL export with the strict checker.

#![cfg(not(feature = "obs-off"))]

use nostop_bench::driver::{nostop_config, paper_rate};
use nostop_core::controller::NoStop;
use nostop_datagen::rate::ConstantRate;
use nostop_obs::{check_events, check_jsonl, span_stats, Recorder};
use nostop_simcore::{SimDuration, SimTime};
use nostop_workloads::WorkloadKind;
use proptest::prelude::*;
use spark_sim::{EngineParams, FaultEvent, FaultPlan, SimSystem, StreamConfig, StreamingEngine};

/// Build a fault plan from raw generated knobs. Times are seconds.
#[allow(clippy::too_many_arguments)]
fn plan(
    crash_at_s: f64,
    crash_count: u32,
    relaunch_s: Option<f64>,
    slow_from_s: f64,
    slow_len_s: f64,
    slow_factor: f64,
    flaky_from_s: f64,
    flaky_len_s: f64,
    flaky_p: f64,
    outage_from_s: f64,
    outage_len_s: f64,
) -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent::ExecutorCrash {
            at: SimTime::from_secs_f64(crash_at_s),
            count: crash_count,
            relaunch_after: relaunch_s.map(SimDuration::from_secs_f64),
        },
        FaultEvent::NodeSlowdown {
            node: 1,
            from: SimTime::from_secs_f64(slow_from_s),
            until: SimTime::from_secs_f64(slow_from_s + slow_len_s),
            factor: slow_factor,
        },
        FaultEvent::TaskFailures {
            from: SimTime::from_secs_f64(flaky_from_s),
            until: SimTime::from_secs_f64(flaky_from_s + flaky_len_s),
            probability: flaky_p,
        },
        FaultEvent::ReceiverOutage {
            from: SimTime::from_secs_f64(outage_from_s),
            until: SimTime::from_secs_f64(outage_from_s + outage_len_s),
        },
    ])
}

proptest! {
    /// An instrumented engine run — random faults, random mid-run
    /// reconfigurations — always exports a well-formed trace.
    #[test]
    fn engine_trace_is_well_formed_under_random_fault_plans(
        seed in 0u64..1_000,
        crash_at_s in 20.0f64..400.0,
        crash_count in 1u32..6,
        relaunch in 0u64..3,
        slow_from_s in 0.0f64..300.0,
        slow_len_s in 10.0f64..400.0,
        slow_factor in 0.3f64..1.0,
        flaky_from_s in 0.0f64..300.0,
        flaky_len_s in 10.0f64..400.0,
        flaky_p in 0.0f64..0.3,
        outage_from_s in 0.0f64..300.0,
        outage_len_s in 5.0f64..120.0,
        reconfigs in prop::collection::vec((2.0f64..40.0, 2u32..20), 0..4),
    ) {
        let recorder = Recorder::ring(1 << 16);
        let mut params = EngineParams::paper(WorkloadKind::WordCount, seed);
        params.faults = plan(
            crash_at_s,
            crash_count,
            // 0 = capacity gone for good; else relaunch after 30/60 s.
            (relaunch > 0).then_some(30.0 * relaunch as f64),
            slow_from_s,
            slow_len_s,
            slow_factor,
            flaky_from_s,
            flaky_len_s,
            flaky_p,
            outage_from_s,
            outage_len_s,
        );
        let mut engine = StreamingEngine::new(
            params,
            StreamConfig::new(SimDuration::from_secs_f64(10.0), 8),
            Box::new(ConstantRate::new(120_000.0)),
        );
        engine.set_recorder(&recorder);
        engine.run_batches(10);
        for &(interval_s, executors) in &reconfigs {
            engine.apply_config(StreamConfig::new(
                SimDuration::from_secs_f64(interval_s),
                executors,
            ));
            engine.run_batches(5);
        }

        let snap = recorder.snapshot();
        prop_assert!(snap.dropped == 0, "ring sized to hold the whole run");
        if let Err(e) = check_events(&snap.events) {
            return Err(TestCaseError::fail(format!("in-memory trace: {e}")));
        }
        if let Err(e) = check_jsonl(&snap.to_jsonl()) {
            return Err(TestCaseError::fail(format!("JSONL export: {e}")));
        }
        // Spans completed: at quiescence every job span is closed, so the
        // aggregate view sees as many job exits as entries.
        let stats = span_stats(&snap.events);
        let jobs = stats.iter().find(|s| s.track == "engine" && s.name == "job");
        prop_assert!(jobs.map(|s| s.count > 0).unwrap_or(false), "jobs traced");
        // Reconfigurations counted exactly (one per apply_config call).
        let reconf = snap
            .counters
            .iter()
            .find(|(n, _)| *n == "reconfigurations")
            .map(|(_, t)| *t)
            .unwrap_or(0);
        prop_assert_eq!(reconf, reconfigs.len() as u64);
    }
}

/// The full stack — engine + faults + NoStop controller sharing one sink —
/// produces a well-formed, byte-deterministic trace.
#[test]
fn controller_and_engine_share_a_well_formed_deterministic_trace() {
    let run = || {
        let recorder = Recorder::ring(1 << 16);
        let kind = WorkloadKind::WordCount;
        let mut params = EngineParams::paper(kind, 7);
        params.faults = FaultPlan::new(vec![FaultEvent::ExecutorCrash {
            at: SimTime::from_secs_f64(500.0),
            count: 3,
            relaunch_after: Some(SimDuration::from_secs(45)),
        }]);
        let mut engine = StreamingEngine::new(
            params,
            StreamConfig::paper_initial(),
            paper_rate(kind, 7 ^ 0x7ACE),
        );
        engine.set_recorder(&recorder);
        let mut sys = SimSystem::new(engine);
        let mut ns = NoStop::new(nostop_config(kind), 7);
        ns.set_recorder(&recorder);
        ns.run(&mut sys, 6);
        recorder.to_jsonl()
    };
    let a = run();
    check_jsonl(&a).expect("well-formed combined trace");
    assert!(a.contains("\"track\":\"engine\""), "engine events present");
    assert!(
        a.contains("\"track\":\"controller\""),
        "controller events present"
    );
    assert!(a.contains("\"span\":\"spsa_iter\""));
    assert!(a.contains("fault.crash"), "the crash left a trace event");
    let b = run();
    assert_eq!(a, b, "trace is a pure function of the seed");
}
