//! Fleet resource-arbiter wire types.
//!
//! A fleet deployment runs one NoStop controller per streaming job, all
//! competing for a shared executor pool. The arbiter — implemented in
//! `spark-sim::arbiter`, driven by `spark-sim::fleet` — decides, at each
//! fleet barrier, how many executors each tenant's controller may actually
//! hold. These are the policy-agnostic *wire* types that cross the
//! controller/arbiter boundary: the demand a tenant presents, the policy
//! the operator picks, and the append-only ledger the arbiter emits so
//! every grant, denial, and preemption is auditable and replayable.
//!
//! Everything here is plain data with a deterministic JSON round-trip
//! (simcore's writer: insertion-ordered keys, shortest-round-trip
//! numbers), so ledgers diff byte-for-byte across runs and `NOSTOP_JOBS`
//! worker counts.

use nostop_simcore::json::{self, Json};

/// How the arbiter divides a scarce executor budget among tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Max-min fair share: every tenant gets its demand or its fair share
    /// of the budget, whichever is smaller; slack from light tenants is
    /// redistributed (water-filling). Remainders go to lower tenant ids —
    /// deterministic, and starvation-free by construction.
    FairShare,
    /// Strict priority: tenants are served in (priority desc, id asc)
    /// order until the budget runs out. Higher-priority demand preempts
    /// lower-priority allocations *immediately*.
    StrictPriority,
    /// Strict priority, but an involuntary allocation cut (a preemption)
    /// only takes effect `grace_epochs` fleet barriers after the decision
    /// — the victim gets a drain window, and the beneficiary's grant
    /// grows only as the revoked executors actually free.
    PreemptWithGrace {
        /// Barriers between the preemption decision and its enforcement.
        grace_epochs: u32,
    },
}

impl ArbiterPolicy {
    /// Stable string form (used on the wire and in report JSON).
    pub fn name(&self) -> String {
        match self {
            ArbiterPolicy::FairShare => "fair-share".to_string(),
            ArbiterPolicy::StrictPriority => "strict-priority".to_string(),
            ArbiterPolicy::PreemptWithGrace { grace_epochs } => {
                format!("preempt-grace:{grace_epochs}")
            }
        }
    }

    /// Parse the form produced by [`ArbiterPolicy::name`].
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "fair-share" => Some(ArbiterPolicy::FairShare),
            "strict-priority" => Some(ArbiterPolicy::StrictPriority),
            _ => {
                let grace = text.strip_prefix("preempt-grace:")?;
                Some(ArbiterPolicy::PreemptWithGrace {
                    grace_epochs: grace.parse().ok()?,
                })
            }
        }
    }
}

/// One tenant's demand, as captured at a fleet barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRequest {
    /// Tenant id (fleet index).
    pub tenant: u32,
    /// Scheduling priority (larger = more important).
    pub priority: u32,
    /// Executors the tenant's controller wants (its unclamped target).
    pub want: u32,
}

/// What happened to some tenant's allocation in one ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerEventKind {
    /// `amount` more executors were granted.
    Grant,
    /// A request received nothing at its decision barrier (`amount` =
    /// the unmet want). The demand stays live and may be granted later.
    Deny,
    /// A request could only be partially met (`amount` = the shortfall
    /// still outstanding). The demand stays live.
    Queue,
    /// The tenant voluntarily gave back `amount` executors (its want
    /// dropped).
    Release,
    /// The policy decided to take `amount` executors away despite live
    /// demand. Under [`ArbiterPolicy::PreemptWithGrace`] the cut lands
    /// later as a [`LedgerEventKind::Revoke`]; otherwise it is immediate.
    Preempt,
    /// A deferred preemption matured: `amount` executors actually left
    /// the tenant's allocation, exactly `grace_epochs` barriers after
    /// the matching [`LedgerEventKind::Preempt`].
    Revoke,
}

impl LedgerEventKind {
    /// Stable string form.
    pub fn name(&self) -> &'static str {
        match self {
            LedgerEventKind::Grant => "grant",
            LedgerEventKind::Deny => "deny",
            LedgerEventKind::Queue => "queue",
            LedgerEventKind::Release => "release",
            LedgerEventKind::Preempt => "preempt",
            LedgerEventKind::Revoke => "revoke",
        }
    }

    /// Parse the form produced by [`LedgerEventKind::name`].
    pub fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "grant" => LedgerEventKind::Grant,
            "deny" => LedgerEventKind::Deny,
            "queue" => LedgerEventKind::Queue,
            "release" => LedgerEventKind::Release,
            "preempt" => LedgerEventKind::Preempt,
            "revoke" => LedgerEventKind::Revoke,
            _ => return None,
        })
    }

    /// How this event changes the fleet's in-use executor total:
    /// `+amount`, `-amount`, or none. [`LedgerEventKind::Preempt`] is
    /// bookkeeping-neutral — the allocation moves on the matching
    /// immediate cut's `in_use_after` (non-grace policies) or on the
    /// later [`LedgerEventKind::Revoke`] (grace policy).
    pub fn in_use_delta(&self, amount: u32) -> i64 {
        match self {
            LedgerEventKind::Grant => amount as i64,
            LedgerEventKind::Release | LedgerEventKind::Revoke => -(amount as i64),
            LedgerEventKind::Deny | LedgerEventKind::Queue | LedgerEventKind::Preempt => 0,
        }
    }
}

/// One append-only ledger entry. The sequence of entries fully determines
/// the fleet's allocation state: replaying `in_use_delta` from zero must
/// reproduce every entry's `in_use_after` — the conservation invariant
/// the property battery checks at every entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEvent {
    /// Fleet barrier the entry was decided at.
    pub epoch: u64,
    /// Position in the ledger (0-based, globally unique, dense).
    pub seq: u64,
    /// Tenant the entry concerns.
    pub tenant: u32,
    /// What happened.
    pub kind: LedgerEventKind,
    /// Executors moved (or outstanding, for Deny/Queue).
    pub amount: u32,
    /// Fleet-wide allocated executors after this entry.
    pub in_use: u64,
    /// The budget in force (`u64::MAX` = unlimited).
    pub budget: u64,
}

impl LedgerEvent {
    /// Serialize as a [`Json`] value (fixed key order).
    pub fn to_json_value(&self) -> Json {
        json::obj(vec![
            ("epoch", json::uint(self.epoch)),
            ("seq", json::uint(self.seq)),
            ("tenant", json::uint(self.tenant as u64)),
            ("kind", json::str(self.kind.name())),
            ("amount", json::uint(self.amount as u64)),
            ("inUse", json::uint(self.in_use)),
            ("budget", json::uint(self.budget)),
        ])
    }

    /// Parse from the value produced by [`LedgerEvent::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<Self, json::Error> {
        let kind_text = v.field_str("kind")?;
        let kind = LedgerEventKind::parse(kind_text).ok_or_else(|| json::Error {
            at: 0,
            msg: format!("unknown ledger kind {kind_text:?}"),
        })?;
        Ok(LedgerEvent {
            epoch: v.field_u64("epoch")?,
            seq: v.field_u64("seq")?,
            tenant: v.field_u64("tenant")? as u32,
            kind,
            amount: v.field_u64("amount")? as u32,
            in_use: v.field_u64("inUse")?,
            budget: v.field_u64("budget")?,
        })
    }
}

/// A folded ledger prefix. Long-lived fleets grow ledgers without bound;
/// past a configured capacity the arbiter verifies the conservation
/// invariant over the in-memory prefix and collapses it into this
/// snapshot: everything replay needs to continue checking the live tail
/// without the folded entries. `base_seq` is the sequence number the
/// next tail entry will carry (= total entries ever folded), and
/// `in_use` is the fleet-wide allocation after the last folded entry —
/// the replay base the tail's deltas accumulate from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerCheckpoint {
    /// Fleet barrier the fold happened at.
    pub epoch: u64,
    /// Sequence number of the first tail entry after the fold.
    pub base_seq: u64,
    /// Fleet-wide allocated executors after the folded prefix.
    pub in_use: u64,
    /// The budget in force (`u64::MAX` = unlimited).
    pub budget: u64,
}

impl LedgerCheckpoint {
    /// Serialize as a [`Json`] value (fixed key order).
    pub fn to_json_value(&self) -> Json {
        json::obj(vec![
            ("checkpoint", json::uint(self.epoch)),
            ("baseSeq", json::uint(self.base_seq)),
            ("inUse", json::uint(self.in_use)),
            ("budget", json::uint(self.budget)),
        ])
    }

    /// Parse from the value produced by
    /// [`LedgerCheckpoint::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<Self, json::Error> {
        Ok(LedgerCheckpoint {
            epoch: v.field_u64("checkpoint")?,
            base_seq: v.field_u64("baseSeq")?,
            in_use: v.field_u64("inUse")?,
            budget: v.field_u64("budget")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            ArbiterPolicy::FairShare,
            ArbiterPolicy::StrictPriority,
            ArbiterPolicy::PreemptWithGrace { grace_epochs: 3 },
        ] {
            assert_eq!(ArbiterPolicy::parse(&policy.name()), Some(policy));
        }
        assert_eq!(ArbiterPolicy::parse("round-robin"), None);
        assert_eq!(ArbiterPolicy::parse("preempt-grace:x"), None);
    }

    #[test]
    fn ledger_kind_round_trips_and_deltas_are_signed_right() {
        for kind in [
            LedgerEventKind::Grant,
            LedgerEventKind::Deny,
            LedgerEventKind::Queue,
            LedgerEventKind::Release,
            LedgerEventKind::Preempt,
            LedgerEventKind::Revoke,
        ] {
            assert_eq!(LedgerEventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(LedgerEventKind::Grant.in_use_delta(5), 5);
        assert_eq!(LedgerEventKind::Release.in_use_delta(5), -5);
        assert_eq!(LedgerEventKind::Revoke.in_use_delta(2), -2);
        assert_eq!(LedgerEventKind::Preempt.in_use_delta(9), 0);
        assert_eq!(LedgerEventKind::Queue.in_use_delta(9), 0);
    }

    #[test]
    fn ledger_event_json_round_trips() {
        let event = LedgerEvent {
            epoch: 17,
            seq: 204,
            tenant: 3,
            kind: LedgerEventKind::Preempt,
            amount: 4,
            in_use: 96,
            budget: 100,
        };
        let text = event.to_json_value().to_string();
        let back = LedgerEvent::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(event, back);
    }

    #[test]
    fn ledger_checkpoint_json_round_trips() {
        let cp = LedgerCheckpoint {
            epoch: 900,
            base_seq: 4_096,
            in_use: 512,
            budget: 640,
        };
        let text = cp.to_json_value().to_string();
        let back = LedgerCheckpoint::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(cp, back);
        // The lead key distinguishes a checkpoint line from an event line
        // in a mixed JSONL ledger stream.
        assert!(text.starts_with("{\"checkpoint\":"));
    }
}
