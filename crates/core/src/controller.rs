//! The NoStop controller — Algorithms 1 and 2.
//!
//! Each *round* of [`NoStop::run_round`] is one pass through Algorithm 1's
//! loop body against a live [`StreamingSystem`]:
//!
//! 1. `needResetCoefficient()` — if the input-rate reset rule has fired,
//!    restart: `k ← 0`, `θ ← θ_initial`, `ρ ← ρ_init` (Table 1).
//! 2. Otherwise, if paused, merely observe a window of batches (growing the
//!    window additively, §5.4) and watch for instability or rate shifts.
//! 3. Otherwise draw `Δ_k`, apply `checkBound(θ ± c_k Δ_k)` to the system
//!    in turn, and run Algorithm 2's *Adjust* for each: reconfigure, skip
//!    the first batch, average a window of batches, and evaluate
//!    `G = interval + ρ · max(0, processing − interval)`.
//! 4. Step `θ ← checkBound(θ − a_k ĝ)`, ramp ρ, feed the pause rule with
//!    the measured end-to-end delays, and pause when the N best delays
//!    agree to within S.
//!
//! Exactly **two** reconfigurations happen per optimization round,
//! regardless of how many parameters are tuned — SPSA's defining economy.

use crate::objective::{PenaltySchedule, STABILITY_HEADROOM};
use crate::policy::{PauseRule, ResetRule, WindowPolicy};
use crate::sa::{AdaptiveSpsa, AdaptiveSpsaParams, Spsa, SpsaParams};
use crate::space::{ConfigSpace, ParamSpec};
use crate::system::{BatchObservation, Measurement, StreamingSystem};
use crate::trace::{RoundKind, RoundRecord, Trace};
use crate::GainSchedule;
use nostop_obs::Recorder;
use nostop_simcore::json::{self, Json};
use nostop_simcore::{SimRng, SimTime};

/// Everything configurable about the controller, with paper defaults.
#[derive(Debug, Clone)]
pub struct NoStopConfig {
    /// The tunable parameter space (physical ranges + scaling).
    pub space: ConfigSpace,
    /// SPSA gain sequences (paper: `A = 1, a = 10, c = 2`).
    pub gains: GainSchedule,
    /// Starting iterate in *scaled* space. Paper: `{10, 10}` — the middle
    /// of the `[1, 20]` scaled range.
    pub theta_initial_scaled: Vec<f64>,
    /// The ρ penalty ramp (paper: 1.0 + 0.1/iter, capped at 2.0).
    pub penalty: PenaltySchedule,
    /// Pause rule: N best configurations (paper: 10).
    pub pause_n_best: usize,
    /// Pause rule: std-dev threshold S in seconds (paper: 1.0).
    pub pause_threshold_s: f64,
    /// Reset rule: input-rate std-dev threshold — records/second, or a
    /// fraction of the windowed mean rate when `reset_relative` is set.
    pub reset_threshold_speed: f64,
    /// Interpret `reset_threshold_speed` relative to the mean rate.
    pub reset_relative: bool,
    /// Level-shift detection fraction for the reset rule (`None` = off).
    pub reset_level_fraction: Option<f64>,
    /// Reset rule: rate samples watched.
    pub reset_window: usize,
    /// Restart the optimization once this many executor failures
    /// accumulate (`None` = never). Executor loss shifts the service-rate
    /// regime the way a traffic surge shifts the arrival regime, so the
    /// same remedy applies: reset coefficients and re-explore rather than
    /// inch toward the new optimum with end-of-schedule gains.
    pub failure_reset_threshold: Option<u32>,
    /// Batches skipped after each reconfiguration (paper: the first).
    pub settle_batches: usize,
    /// Minimum measurement window, batches.
    pub measure_min_batches: usize,
    /// Cap for the additively-grown paused window, batches.
    pub measure_max_batches: usize,
    /// Unpause when an observed batch is unstable by more than this factor
    /// (`processing > factor × interval`); 1.0 = any instability.
    pub unpause_instability_factor: f64,
    /// Maximum batches scanned per measurement while waiting for batches
    /// cut under the just-applied interval (leftover queued batches were
    /// cut under the previous configuration and do not measure this one).
    pub measure_scan_cap: usize,
    /// Per-iteration cap on the SPSA step, in scaled units (`None` = no
    /// clipping). See [`crate::sa::SpsaParams::max_step`].
    pub max_step_scaled: Option<f64>,
    /// Which stochastic-approximation engine drives the rounds.
    pub optimizer: OptimizerKind,
    /// Stability headroom used when *ranking* configurations (pause rule
    /// and best-config tracking): processing time must fit within this
    /// fraction of the interval before a configuration counts as cleanly
    /// stable. Under a varying input rate, a configuration measured
    /// exactly at the frontier during a low-rate episode is unstable at
    /// the top of the range; requiring headroom parks the system at a
    /// configuration that absorbs the whole range. 1.0 disables it.
    pub stability_headroom: f64,
}

impl NoStopConfig {
    /// The paper's §6.2.1 experimental configuration, with a reset
    /// threshold sized for the logistic-regression rate range.
    pub fn paper_default() -> Self {
        let space = ConfigSpace::paper_default();
        let dim = space.dim();
        NoStopConfig {
            space,
            gains: GainSchedule::paper_default(),
            theta_initial_scaled: vec![10.0; dim],
            penalty: PenaltySchedule::paper_default(),
            pause_n_best: 10,
            pause_threshold_s: 1.0,
            reset_threshold_speed: 4_800.0,
            reset_relative: false,
            reset_level_fraction: Some(0.4),
            reset_window: 12,
            failure_reset_threshold: Some(3),
            settle_batches: 1,
            measure_min_batches: 3,
            measure_max_batches: 12,
            unpause_instability_factor: 1.05,
            measure_scan_cap: 15,
            max_step_scaled: Some(19.0 / 4.0),
            optimizer: OptimizerKind::FirstOrder,
            stability_headroom: STABILITY_HEADROOM,
        }
    }

    /// Adapt the reset threshold to a workload's expected rate range. A
    /// uniform rate over `[min, max]` has an in-range sample std of at
    /// most half the width, so the threshold is set at 0.8 × width —
    /// expressed *relative to the mean rate*, so that after a permanent
    /// regime change the bar scales with the new level (the same benign
    /// fluctuation proportion stays benign) instead of firing forever.
    pub fn with_rate_range(mut self, min_rate: f64, max_rate: f64) -> Self {
        assert!(max_rate > min_rate, "invalid rate range");
        let mean = (max_rate + min_rate) / 2.0;
        self.reset_threshold_speed = (max_rate - min_rate) * 0.8 / mean;
        self.reset_relative = true;
        self
    }

    /// Serialize for operator persistence (pretty JSON, fixed key order).
    pub fn to_json(&self) -> String {
        let params: Vec<Json> = self
            .space
            .params
            .iter()
            .map(|p| {
                json::obj(vec![
                    ("name", json::str(p.name.clone())),
                    ("min", json::num(p.min)),
                    ("max", json::num(p.max)),
                    ("quantum", json::num(p.quantum)),
                ])
            })
            .collect();
        json::obj(vec![
            (
                "space",
                json::obj(vec![
                    ("params", Json::Arr(params)),
                    ("scaledLo", json::num(self.space.scaled_lo)),
                    ("scaledHi", json::num(self.space.scaled_hi)),
                ]),
            ),
            (
                "gains",
                json::obj(vec![
                    ("a", json::num(self.gains.a)),
                    ("bigA", json::num(self.gains.big_a)),
                    ("c", json::num(self.gains.c)),
                    ("alpha", json::num(self.gains.alpha)),
                    ("gamma", json::num(self.gains.gamma)),
                ]),
            ),
            (
                "thetaInitialScaled",
                json::f64_array(&self.theta_initial_scaled),
            ),
            (
                "penalty",
                json::obj(vec![
                    ("rho", json::num(self.penalty.rho())),
                    ("rhoInit", json::num(self.penalty.rho_init)),
                    ("rhoStep", json::num(self.penalty.rho_step)),
                    ("rhoMax", json::num(self.penalty.rho_max)),
                ]),
            ),
            ("pauseNBest", json::uint(self.pause_n_best as u64)),
            ("pauseThresholdS", json::num(self.pause_threshold_s)),
            ("resetThresholdSpeed", json::num(self.reset_threshold_speed)),
            ("resetRelative", Json::Bool(self.reset_relative)),
            (
                "resetLevelFraction",
                match self.reset_level_fraction {
                    Some(f) => json::num(f),
                    None => Json::Null,
                },
            ),
            ("resetWindow", json::uint(self.reset_window as u64)),
            (
                "failureResetThreshold",
                match self.failure_reset_threshold {
                    Some(n) => json::uint(n as u64),
                    None => Json::Null,
                },
            ),
            ("settleBatches", json::uint(self.settle_batches as u64)),
            (
                "measureMinBatches",
                json::uint(self.measure_min_batches as u64),
            ),
            (
                "measureMaxBatches",
                json::uint(self.measure_max_batches as u64),
            ),
            (
                "unpauseInstabilityFactor",
                json::num(self.unpause_instability_factor),
            ),
            ("measureScanCap", json::uint(self.measure_scan_cap as u64)),
            (
                "maxStepScaled",
                match self.max_step_scaled {
                    Some(s) => json::num(s),
                    None => Json::Null,
                },
            ),
            (
                "optimizer",
                json::str(match self.optimizer {
                    OptimizerKind::FirstOrder => "firstOrder",
                    OptimizerKind::SecondOrder => "secondOrder",
                }),
            ),
            ("stabilityHeadroom", json::num(self.stability_headroom)),
        ])
        .to_string_pretty()
    }

    /// Restore a configuration persisted by [`NoStopConfig::to_json`].
    pub fn from_json(text: &str) -> Result<Self, json::Error> {
        let v = Json::parse(text)?;
        let missing = |key: &str| json::Error {
            at: 0,
            msg: format!("missing field `{key}`"),
        };
        let sv = v.get("space").ok_or_else(|| missing("space"))?;
        let params = sv
            .field_array("params")?
            .iter()
            .map(|p| {
                Ok(ParamSpec::new(
                    p.field_str("name")?,
                    p.field_f64("min")?,
                    p.field_f64("max")?,
                    p.field_f64("quantum")?,
                ))
            })
            .collect::<Result<Vec<_>, json::Error>>()?;
        let space = ConfigSpace::new(params, sv.field_f64("scaledLo")?, sv.field_f64("scaledHi")?);
        let gv = v.get("gains").ok_or_else(|| missing("gains"))?;
        let gains = GainSchedule {
            a: gv.field_f64("a")?,
            big_a: gv.field_f64("bigA")?,
            c: gv.field_f64("c")?,
            alpha: gv.field_f64("alpha")?,
            gamma: gv.field_f64("gamma")?,
        };
        let pv = v.get("penalty").ok_or_else(|| missing("penalty"))?;
        let penalty = PenaltySchedule::restore(
            pv.field_f64("rhoInit")?,
            pv.field_f64("rhoStep")?,
            pv.field_f64("rhoMax")?,
            pv.field_f64("rho")?,
        );
        let opt_null = |key: &str| -> Result<Option<f64>, json::Error> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(_) => v.field_f64(key).map(Some),
            }
        };
        let optimizer = match v.field_str("optimizer")? {
            "firstOrder" => OptimizerKind::FirstOrder,
            "secondOrder" => OptimizerKind::SecondOrder,
            other => {
                return Err(json::Error {
                    at: 0,
                    msg: format!("unknown optimizer `{other}`"),
                })
            }
        };
        Ok(NoStopConfig {
            space,
            gains,
            theta_initial_scaled: v.field_f64_array("thetaInitialScaled")?,
            penalty,
            pause_n_best: v.field_u64("pauseNBest")? as usize,
            pause_threshold_s: v.field_f64("pauseThresholdS")?,
            reset_threshold_speed: v.field_f64("resetThresholdSpeed")?,
            reset_relative: v.field_bool("resetRelative")?,
            reset_level_fraction: opt_null("resetLevelFraction")?,
            reset_window: v.field_u64("resetWindow")? as usize,
            // Optional (nullable) for configs persisted before the fault
            // layer existed.
            failure_reset_threshold: match v.get("failureResetThreshold") {
                None | Some(Json::Null) => None,
                Some(_) => Some(v.field_u64("failureResetThreshold")? as u32),
            },
            settle_batches: v.field_u64("settleBatches")? as usize,
            measure_min_batches: v.field_u64("measureMinBatches")? as usize,
            measure_max_batches: v.field_u64("measureMaxBatches")? as usize,
            unpause_instability_factor: v.field_f64("unpauseInstabilityFactor")?,
            measure_scan_cap: v.field_u64("measureScanCap")? as usize,
            max_step_scaled: opt_null("maxStepScaled")?,
            optimizer,
            stability_headroom: v.field_f64("stabilityHeadroom")?,
        })
    }
}

/// The stochastic-approximation engine behind the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// The paper's 1SPSA: two measurements per round.
    FirstOrder,
    /// Adaptive 2SPSA (an extension): four measurements per round, a
    /// Hessian-preconditioned step. Blocking is left off in the online
    /// controller — the pause/best machinery and the intrinsic ranking
    /// already guard quality, and a fifth measurement window per round is
    /// expensive streaming time.
    SecondOrder,
}

/// What one controller round did (the caller-visible summary).
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// A full SPSA iteration completed.
    Optimized {
        /// Mean end-to-end delay across the two perturbed measurements.
        mean_delay_s: f64,
        /// The new iterate in physical units.
        physical: Vec<f64>,
        /// Whether the controller paused at the end of this round.
        paused: bool,
    },
    /// The controller observed while paused.
    Paused {
        /// The observed window's mean end-to-end delay.
        delay_s: f64,
    },
    /// The reset rule fired and the optimization restarted.
    Reset,
    /// The parked configuration went unstable; optimization resumed
    /// without a coefficient reset.
    Woke,
}

enum SaEngine {
    First(Spsa),
    Second(AdaptiveSpsa),
}

impl SaEngine {
    fn theta(&self) -> &[f64] {
        match self {
            SaEngine::First(s) => s.theta(),
            SaEngine::Second(s) => s.theta(),
        }
    }
    fn k(&self) -> u64 {
        match self {
            SaEngine::First(s) => s.k(),
            SaEngine::Second(s) => s.k(),
        }
    }
    fn reset(&mut self, theta: &[f64]) {
        match self {
            SaEngine::First(s) => s.reset(theta),
            SaEngine::Second(s) => s.reset(theta),
        }
    }
}

/// The NoStop controller.
pub struct NoStop {
    cfg: NoStopConfig,
    spsa: SaEngine,
    penalty: PenaltySchedule,
    pause: PauseRule,
    reset: ResetRule,
    window: WindowPolicy,
    paused: bool,
    trace: Trace,
    round: u64,
    /// Best configuration this episode: `(ranking key, physical config,
    /// measured intrinsic delay)`. The key equals the delay except after a
    /// wake, which demotes it to infinity so fresh measurements displace it.
    best: Option<(f64, Vec<f64>, f64)>,
    /// Total configuration changes applied to the system.
    config_changes: u64,
    /// Trace recorder ("controller" track); disabled by default, so the
    /// uninstrumented controller pays one cold branch per event site.
    obs: Recorder,
}

impl NoStop {
    /// Build a controller. `seed` drives the SPSA perturbation stream.
    pub fn new(cfg: NoStopConfig, seed: u64) -> Self {
        assert_eq!(
            cfg.theta_initial_scaled.len(),
            cfg.space.dim(),
            "initial point dimension mismatch"
        );
        let spsa = match cfg.optimizer {
            OptimizerKind::FirstOrder => SaEngine::First(Spsa::new(
                SpsaParams {
                    gains: cfg.gains,
                    lower: cfg.space.scaled_lower(),
                    upper: cfg.space.scaled_upper(),
                    max_step: cfg.max_step_scaled,
                },
                cfg.theta_initial_scaled.clone(),
                SimRng::seed_from_u64(seed),
            )),
            OptimizerKind::SecondOrder => SaEngine::Second(AdaptiveSpsa::new(
                AdaptiveSpsaParams {
                    gains: cfg.gains,
                    lower: cfg.space.scaled_lower(),
                    upper: cfg.space.scaled_upper(),
                    c_tilde_ratio: 1.0,
                    max_step: cfg.max_step_scaled,
                    blocking_tolerance: None,
                },
                cfg.theta_initial_scaled.clone(),
                SimRng::seed_from_u64(seed),
            )),
        };
        let pause = PauseRule::new(cfg.pause_n_best, cfg.pause_threshold_s);
        let mut reset = if cfg.reset_relative {
            ResetRule::relative(cfg.reset_threshold_speed, cfg.reset_window)
        } else {
            ResetRule::new(cfg.reset_threshold_speed, cfg.reset_window)
        };
        reset.level_fraction = cfg.reset_level_fraction;
        reset.failure_threshold = cfg.failure_reset_threshold;
        let window = WindowPolicy::new(
            cfg.settle_batches,
            cfg.measure_min_batches,
            cfg.measure_max_batches,
        );
        let penalty = cfg.penalty;
        NoStop {
            cfg,
            spsa,
            penalty,
            pause,
            reset,
            window,
            paused: false,
            trace: Trace::new(),
            round: 0,
            best: None,
            config_changes: 0,
            obs: Recorder::disabled(),
        }
    }

    /// Attach a trace recorder. Controller events land on the
    /// `"controller"` track of `recorder`'s sink, so a single ring can
    /// interleave engine and controller history in causal order.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.set_recorder_track(recorder, "controller");
    }

    /// [`set_recorder`](Self::set_recorder) with an explicit track name —
    /// fleet runs tag each tenant's controller as `"t{i}.ctrl"` so one
    /// shared ring interleaves every tenant's controllers and engines.
    pub fn set_recorder_track(&mut self, recorder: &Recorder, track: &'static str) {
        self.obs = recorder.with_track(track);
    }

    /// Execute one controller round against `sys`.
    pub fn run_round<S: StreamingSystem>(&mut self, sys: &mut S) -> RoundOutcome {
        // Algorithm 1, loop head: needResetCoefficient().
        if self.reset.needs_reset() {
            return self.do_reset(sys);
        }
        if self.paused {
            return self.paused_round(sys);
        }
        self.optimization_round(sys)
    }

    /// Run `rounds` rounds back to back.
    pub fn run<S: StreamingSystem>(&mut self, sys: &mut S, rounds: u64) {
        for _ in 0..rounds {
            self.run_round(sys);
        }
    }

    fn optimization_round<S: StreamingSystem>(&mut self, sys: &mut S) -> RoundOutcome {
        let k = self.spsa.k();
        // Draw this round's perturbed evaluation points. `first_proposal`
        // / `second_proposal` carry the engine-specific context through
        // the measurements.
        enum Pending {
            First(crate::sa::Proposal),
            Second(crate::sa::second_order::AdaptiveProposal),
        }
        let pending = match &mut self.spsa {
            SaEngine::First(spsa) => Pending::First(spsa.propose()),
            SaEngine::Second(spsa) => Pending::Second(spsa.propose()),
        };
        let (theta_plus, theta_minus, a_k, c_k) = match &pending {
            Pending::First(p) => (p.theta_plus.clone(), p.theta_minus.clone(), p.a_k, p.c_k),
            Pending::Second(p) => (p.plus.clone(), p.minus.clone(), p.a_k, p.c_k),
        };
        if self.obs.is_enabled() {
            // One span per SPSA iteration, carrying the gain schedule and
            // the current iterate (scaled; first two components cover the
            // paper's 2-parameter space).
            let theta = self.spsa.theta();
            let mut fields = vec![
                ("k", k as f64),
                ("rho", self.penalty.rho()),
                ("a_k", a_k),
                ("c_k", c_k),
            ];
            if let Some(t0) = theta.first() {
                fields.push(("theta0", *t0));
            }
            if let Some(t1) = theta.get(1) {
                fields.push(("theta1", *t1));
            }
            self.obs
                .enter(SimTime::from_secs_f64(sys.now_s()), "spsa_iter", &fields);
        }

        // Algorithm 2 (Adjust) at θ⁺ and θ⁻ — two reconfigurations for
        // 1SPSA; 2SPSA adds two Hessian probes below.
        let phys_plus = self.cfg.space.to_physical(&theta_plus);
        let m_plus = self.measure(sys, &phys_plus);
        self.probe_instant(sys, 1.0, &m_plus);
        if self.reset.needs_reset() {
            return self.abort_iteration(sys);
        }
        let phys_minus = self.cfg.space.to_physical(&theta_minus);
        let m_minus = self.measure(sys, &phys_minus);
        self.probe_instant(sys, -1.0, &m_minus);
        if self.reset.needs_reset() {
            return self.abort_iteration(sys);
        }

        let y_plus = self
            .penalty
            .objective(m_plus.interval_s, m_plus.processing_s);
        let y_minus = self
            .penalty
            .objective(m_minus.interval_s, m_minus.processing_s);
        let gradient: Vec<f64> = match pending {
            Pending::First(proposal) => {
                let SaEngine::First(spsa) = &mut self.spsa else {
                    unreachable!("engine kind cannot change mid-round")
                };
                spsa.update(&proposal, y_plus, y_minus).gradient
            }
            Pending::Second(proposal) => {
                // Two extra measurements for the Hessian estimate.
                let phys_pt = self.cfg.space.to_physical(&proposal.plus_t);
                let m_pt = self.measure(sys, &phys_pt);
                self.probe_instant(sys, 2.0, &m_pt);
                if self.reset.needs_reset() {
                    return self.abort_iteration(sys);
                }
                let phys_mt = self.cfg.space.to_physical(&proposal.minus_t);
                let m_mt = self.measure(sys, &phys_mt);
                self.probe_instant(sys, -2.0, &m_mt);
                if self.reset.needs_reset() {
                    return self.abort_iteration(sys);
                }
                let y_pt = self.penalty.objective(m_pt.interval_s, m_pt.processing_s);
                let y_mt = self.penalty.objective(m_mt.interval_s, m_mt.processing_s);
                let SaEngine::Second(spsa) = &mut self.spsa else {
                    unreachable!("engine kind cannot change mid-round")
                };
                let candidate = spsa.update(&proposal, [y_plus, y_minus, y_pt, y_mt]);
                spsa.accept(&candidate);
                proposal
                    .delta
                    .iter()
                    .map(|d| (y_plus - y_minus) / (2.0 * proposal.c_k * d))
                    .collect()
            }
        };
        // Algorithm 1: ρ ← min(ρ + 0.1, 2) once per iteration.
        self.penalty.advance();

        // Feed the pause rule and the best-config tracker from the two
        // measurements we already paid for. Both use the *intrinsic*
        // penalized delay of a configuration (interval + capped penalty on
        // any instability): under the stability constraint, end-to-end
        // delay is equivalent to batch interval (§3.1), and unlike the raw
        // per-batch total delay this metric is not contaminated by queue
        // backlog left over from a previously-visited bad configuration.
        let pd_plus = self.intrinsic_delay(&m_plus);
        let pd_minus = self.intrinsic_delay(&m_minus);
        self.pause.record(pd_plus);
        self.pause.record(pd_minus);
        self.track_best(&phys_plus, pd_plus);
        self.track_best(&phys_minus, pd_minus);

        let should_pause = self.pause.should_pause();
        if should_pause {
            self.paused = true;
            // Park the system at the best configuration found ("once NoStop
            // reaches the optimal configuration, it halts", §5.3.5); fall
            // back to the current iterate if nothing better is known.
            let parked = self
                .best
                .as_ref()
                .map(|(_, phys, _)| phys.clone())
                .unwrap_or_else(|| self.cfg.space.to_physical(self.spsa.theta()));
            sys.apply_config(&parked);
            self.config_changes += 1;
            if self.obs.is_enabled() {
                let now = SimTime::from_secs_f64(sys.now_s());
                self.obs.add(now, "config_changes", 1);
                self.obs
                    .instant(now, "paused", &[("parked_interval_s", parked[0])]);
            }
        }

        let grad_norm = gradient.iter().map(|g| g * g).sum::<f64>().sqrt();
        let mean_delay = (m_plus.end_to_end_s + m_minus.end_to_end_s) / 2.0;
        let physical = self.cfg.space.to_physical(self.spsa.theta());
        if self.obs.is_enabled() {
            self.obs.exit(
                SimTime::from_secs_f64(sys.now_s()),
                "spsa_iter",
                &[
                    ("y_plus", y_plus),
                    ("y_minus", y_minus),
                    ("grad_norm", grad_norm),
                    ("paused", if self.paused { 1.0 } else { 0.0 }),
                ],
            );
        }
        self.push_trace(
            sys.now_s(),
            k,
            a_k,
            c_k,
            RoundKind::Optimized {
                plus: m_plus,
                minus: m_minus,
                y_plus,
                y_minus,
                grad_norm,
            },
        );
        RoundOutcome::Optimized {
            mean_delay_s: mean_delay,
            physical,
            paused: self.paused,
        }
    }

    fn paused_round<S: StreamingSystem>(&mut self, sys: &mut S) -> RoundOutcome {
        // Observe a window without touching the configuration; grow the
        // window additively (§5.4) so the paused controller becomes
        // increasingly noise-immune, up to the cap.
        let parked_interval = self
            .best
            .as_ref()
            .map(|(_, phys, _)| phys[0])
            .unwrap_or_else(|| self.cfg.space.to_physical(self.spsa.theta())[0]);
        let window = self.window.window();
        let mut batches = Vec::with_capacity(window);
        let mut parked_batches = Vec::new();
        let mut saw_failures = false;
        for _ in 0..window.max(1) {
            let b = sys.next_batch();
            self.reset.record_rate(b.input_rate);
            self.reset.record_failure(b.executor_failures);
            saw_failures |= b.executor_failures > 0;
            if (b.interval_s - parked_interval).abs() < 0.051 {
                parked_batches.push(b);
            }
            batches.push(b);
        }
        self.window.grow();
        let m = Measurement::from_window(&batches);

        // Wake up if the parked configuration has gone unstable — e.g. the
        // data rate drifted past what the optimum can absorb (§5.3.5:
        // "until the system becomes unstable"). Judged only on batches cut
        // under the parked interval; leftover backlog from previously
        // visited configurations is still draining and proves nothing.
        let unstable = if parked_batches.is_empty() {
            false
        } else {
            let pm = Measurement::from_window(&parked_batches);
            pm.processing_s > pm.interval_s * self.cfg.unpause_instability_factor
        };
        if self.reset.needs_reset() {
            return self.do_reset(sys);
        }
        if unstable || saw_failures {
            // §5.3.5: the pause holds "until the system becomes unstable".
            // Instability without a rate shift is a local problem — resume
            // optimization from the current iterate with the current
            // (small) gains rather than restarting from θ_initial. An
            // executor failure forces the same wake pre-emptively: the
            // parked configuration was chosen for a cluster that no longer
            // exists, so re-explore instead of waiting for the queue to
            // prove it.
            return self.wake(sys);
        }

        if self.obs.is_enabled() {
            self.obs.instant(
                SimTime::from_secs_f64(sys.now_s()),
                "paused_observe",
                &[
                    ("delay_s", m.end_to_end_s),
                    ("window", batches.len() as f64),
                ],
            );
        }
        self.push_trace(
            sys.now_s(),
            self.spsa.k(),
            0.0,
            0.0,
            RoundKind::Paused { observed: m },
        );
        RoundOutcome::Paused {
            delay_s: m.end_to_end_s,
        }
    }

    /// Record one SPSA probe measurement: `sign` is ±1 for the gradient
    /// pair, ±2 for 2SPSA's Hessian pair. The objective is evaluated with
    /// the round's ρ (`advance` has not run yet), so the instant carries
    /// exactly the value the update below will see.
    fn probe_instant<S: StreamingSystem>(&self, sys: &S, sign: f64, m: &Measurement) {
        if self.obs.is_enabled() {
            self.obs.instant(
                SimTime::from_secs_f64(sys.now_s()),
                "probe",
                &[
                    ("sign", sign),
                    ("y", self.penalty.objective(m.interval_s, m.processing_s)),
                    ("interval_s", m.interval_s),
                    ("processing_s", m.processing_s),
                ],
            );
        }
    }

    /// A mid-iteration reset abandons the open `spsa_iter` span: close it
    /// (marked aborted, so trace consumers do not mistake it for a full
    /// gradient step) before handing the round to `do_reset`.
    fn abort_iteration<S: StreamingSystem>(&mut self, sys: &mut S) -> RoundOutcome {
        if self.obs.is_enabled() {
            self.obs.exit(
                SimTime::from_secs_f64(sys.now_s()),
                "spsa_iter",
                &[("aborted", 1.0)],
            );
        }
        self.do_reset(sys)
    }

    /// Resume optimization after a pause without resetting coefficients:
    /// the episode's stale pause history is dropped and the best config is
    /// demoted (any fresh measurement displaces it — the regime shifted —
    /// but it remains available as a parking fallback), while `k`, θ, and
    /// ρ carry over.
    fn wake<S: StreamingSystem>(&mut self, sys: &mut S) -> RoundOutcome {
        self.paused = false;
        self.pause.clear();
        if let Some((key, _, _)) = &mut self.best {
            *key = f64::INFINITY;
        }
        self.window.shrink_to_min();
        if self.obs.is_enabled() {
            self.obs
                .instant(SimTime::from_secs_f64(sys.now_s()), "woke", &[]);
        }
        self.push_trace(sys.now_s(), self.spsa.k(), 0.0, 0.0, RoundKind::Woke);
        RoundOutcome::Woke
    }

    fn do_reset<S: StreamingSystem>(&mut self, sys: &mut S) -> RoundOutcome {
        // Table 1: resetCoefficient() — k = 0, x = θ_initial. Note that ρ
        // is deliberately NOT reset: Table 1 only names k and x, and
        // keeping the ramped-up penalty prevents the restarted (large-
        // gain) iterations from diving through the stability constraint
        // the way the very first iterations of a run may.
        self.spsa.reset(&self.cfg.theta_initial_scaled);
        self.pause.clear();
        self.reset.clear();
        self.window.shrink_to_min();
        self.paused = false;
        self.best = None;
        if self.obs.is_enabled() {
            let now = SimTime::from_secs_f64(sys.now_s());
            self.obs.instant(now, "reset", &[]);
            self.obs.add(now, "resets", 1);
        }
        self.push_trace(sys.now_s(), 0, 0.0, 0.0, RoundKind::Reset);
        RoundOutcome::Reset
    }

    /// Algorithm 2's *Adjust*: reconfigure, settle, measure a window.
    ///
    /// The settling phase implements Algorithm 2's sleep loop: after the
    /// reconfiguration, batches are consumed (not measured) until a batch
    /// cut under the *applied* interval completes with an empty queue —
    /// i.e. the system has drained whatever backlog previous
    /// configurations left and reached steady state. A cap bounds the
    /// wait: a configuration that cannot drain is measured dirty, and its
    /// own growing queue makes the objective appropriately ugly. After
    /// settling, the first batch is still discarded (§5.4: executor/jar
    /// initialization) and `measure_min_batches` are averaged.
    fn measure<S: StreamingSystem>(&mut self, sys: &mut S, physical: &[f64]) -> Measurement {
        if self.obs.is_enabled() {
            let mut fields = vec![("interval_s", physical[0])];
            if let Some(e) = physical.get(1) {
                fields.push(("executors", *e));
            }
            self.obs
                .enter(SimTime::from_secs_f64(sys.now_s()), "measure", &fields);
        }
        sys.apply_config(physical);
        self.config_changes += 1;
        if self.obs.is_enabled() {
            self.obs
                .add(SimTime::from_secs_f64(sys.now_s()), "config_changes", 1);
        }
        let target_interval = physical[0];

        // Settling barrier (Algorithm 2's sleep loop), bounded both in
        // batches and in system time — a controller polling a live
        // cluster would not wait longer than a couple of dozen intervals
        // for the system to settle before concluding it never will.
        let settle_deadline = sys.now_s() + (20.0 * target_interval).max(120.0);
        let mut settled = false;
        for _ in 0..self.cfg.measure_scan_cap {
            let b = sys.next_batch();
            self.reset.record_rate(b.input_rate);
            self.reset.record_failure(b.executor_failures);
            let matched = (b.interval_s - target_interval).abs() < 0.051;
            if matched && b.queued_batches == 0 {
                settled = true;
                break;
            }
            if sys.now_s() > settle_deadline {
                break;
            }
        }
        let _ = settled; // measured dirty when a cap was hit

        // §5.4: the settling batch double-counts as the discarded first
        // batch; honour any additional configured skips.
        for _ in 1..self.window.skip_count() {
            let b = sys.next_batch();
            self.reset.record_rate(b.input_rate);
            self.reset.record_failure(b.executor_failures);
        }

        // Batches that absorbed an executor failure measure the crash
        // (task re-execution, lineage recovery), not the configuration —
        // averaging them in would poison the gradient estimate. Discard
        // them and re-pull, spending at most `measure_scan_cap` spares;
        // a fault storm that exhausts the budget is measured dirty, and
        // the reset rule (fed above) decides whether to re-explore.
        let mut spare = self.cfg.measure_scan_cap;
        let mut window: Vec<BatchObservation> = Vec::with_capacity(self.cfg.measure_min_batches);
        while window.len() < self.cfg.measure_min_batches {
            let b = sys.next_batch();
            self.reset.record_rate(b.input_rate);
            self.reset.record_failure(b.executor_failures);
            if b.executor_failures > 0 && spare > 0 {
                spare -= 1;
                continue;
            }
            window.push(b);
        }
        let mut m = Measurement::from_window(&window);
        // The objective evaluates the *applied* interval (Algorithm 2 sets
        // `batchInterval = θ_BatchInterval` before reading the status).
        m.interval_s = target_interval;
        if self.obs.is_enabled() {
            self.obs.exit(
                SimTime::from_secs_f64(sys.now_s()),
                "measure",
                &[
                    ("processing_s", m.processing_s),
                    ("end_to_end_s", m.end_to_end_s),
                    ("batches", window.len() as f64),
                ],
            );
        }
        m
    }

    /// A configuration's intrinsic penalized delay: its interval plus the
    /// ρ-cap-weighted violation of the *headroom-adjusted* stability
    /// constraint. Comparable across rounds (the live ρ ramps; the cap is
    /// constant), immune to backlog carryover, and — through the headroom
    /// — robust to rate variation between measurement and steady state.
    fn intrinsic_delay(&self, m: &Measurement) -> f64 {
        let slack = m.interval_s * self.cfg.stability_headroom;
        m.interval_s + self.penalty.rho_max * (m.processing_s - slack).max(0.0)
    }

    /// Rank configurations by intrinsic penalized delay; the parked
    /// configuration is then naturally a stable one.
    fn track_best(&mut self, physical: &[f64], delay_s: f64) {
        let better = match &self.best {
            None => true,
            Some((best_delay, _, _)) => delay_s < *best_delay,
        };
        if better {
            self.best = Some((delay_s, physical.to_vec(), delay_s));
        }
    }

    fn push_trace(&mut self, t_s: f64, k: u64, a_k: f64, c_k: f64, kind: RoundKind) {
        let theta_scaled = self.spsa.theta().to_vec();
        let theta_physical = self.cfg.space.to_physical(&theta_scaled);
        self.trace.push(RoundRecord {
            round: self.round,
            k,
            t_s,
            theta_scaled,
            theta_physical,
            rho: self.penalty.rho(),
            a_k,
            c_k,
            paused_after: self.paused,
            kind,
        });
        self.round += 1;
    }

    /// The full round-by-round trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current iterate in scaled space.
    pub fn theta_scaled(&self) -> &[f64] {
        self.spsa.theta()
    }

    /// Current iterate in physical units.
    pub fn current_physical(&self) -> Vec<f64> {
        self.cfg.space.to_physical(self.spsa.theta())
    }

    /// Whether the controller is currently paused at an optimum.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Completed SPSA iterations in the current episode.
    pub fn k(&self) -> u64 {
        self.spsa.k()
    }

    /// Total rounds executed (all kinds).
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Total configuration changes applied to the system — the Fig-8
    /// "configure steps" metric.
    pub fn config_changes(&self) -> u64 {
        self.config_changes
    }

    /// Best configuration seen this episode: `(physical, end-to-end delay)`.
    pub fn best_config(&self) -> Option<(Vec<f64>, f64)> {
        self.best
            .as_ref()
            .map(|(_, phys, delay)| (phys.clone(), *delay))
    }

    /// The controller configuration in force.
    pub fn config(&self) -> &NoStopConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An analytic mock system implementing the qualitative Spark model:
    /// processing time rises with records-per-batch, falls with executors
    /// until management overhead wins, plus seeded noise.
    struct MockSystem {
        interval_s: f64,
        executors: f64,
        rate: f64,
        /// Fixed per-batch overhead, seconds (stage scheduling etc.).
        fixed_s: f64,
        /// Accumulated queue backlog, seconds — the compounding cost of
        /// instability that a real batch queue exhibits.
        backlog_s: f64,
        t: f64,
        rng: SimRng,
        noise: f64,
        changes: u64,
        /// Inject `count` executor failures `delay` batches from now; the
        /// failing batch also absorbs a huge recomputation penalty, the
        /// way a real crash-hit batch would.
        fail_in: Option<(u32, u32)>,
    }

    impl MockSystem {
        fn new(rate: f64, noise: f64, seed: u64) -> Self {
            MockSystem {
                interval_s: 10.0,
                executors: 10.0,
                rate,
                fixed_s: 5.5,
                backlog_s: 0.0,
                t: 0.0,
                rng: SimRng::seed_from_u64(seed),
                noise,
                changes: 0,
                fail_in: None,
            }
        }

        fn processing(&mut self) -> f64 {
            // Same qualitative shape as the calibrated Spark model: high
            // fixed overhead, marginal work slope < 0.5 per interval-second
            // at the reference rate, and per-executor management cost.
            let records = self.rate * self.interval_s;
            let work = records * 38e-5; // parallel work, core-seconds
            let mgmt = 0.05 * self.executors;
            (self.fixed_s + work / self.executors + mgmt) * self.rng.noise_factor(self.noise)
        }
    }

    impl StreamingSystem for MockSystem {
        fn apply_config(&mut self, physical: &[f64]) {
            self.interval_s = physical[0];
            self.executors = physical[1].max(1.0);
            self.changes += 1;
        }
        fn next_batch(&mut self) -> BatchObservation {
            self.t += self.interval_s;
            let failures = match self.fail_in.take() {
                Some((0, n)) => n,
                Some((d, n)) => {
                    self.fail_in = Some((d - 1, n));
                    0
                }
                None => 0,
            };
            let mut proc = self.processing();
            if failures > 0 {
                proc += 1_000.0; // lineage recomputation on the crash batch
            }
            // A batch waits for the backlog ahead of it; instability then
            // grows the backlog, stability drains it.
            let sched = self.backlog_s;
            self.backlog_s = (self.backlog_s + proc - self.interval_s).max(0.0);
            BatchObservation {
                completed_at_s: self.t,
                interval_s: self.interval_s,
                processing_s: proc,
                scheduling_delay_s: sched,
                records: (self.rate * self.interval_s) as u64,
                input_rate: self.rate,
                num_executors: self.executors as u32,
                queued_batches: (self.backlog_s / self.interval_s.max(0.001)) as u32,
                executor_failures: failures,
            }
        }
        fn now_s(&self) -> f64 {
            self.t
        }
    }

    fn controller(seed: u64) -> NoStop {
        NoStop::new(NoStopConfig::paper_default(), seed)
    }

    #[test]
    fn drives_interval_down_while_keeping_stability() {
        let mut sys = MockSystem::new(10_000.0, 0.05, 1);
        let mut ns = controller(42);
        ns.run(&mut sys, 60);
        let phys = ns.current_physical();
        let (interval, execs) = (phys[0], phys[1]);
        // For this system the stability frontier at E = 20 sits near
        // I = (5.5 + 0.05·20) / (1 − 3.8/20) ≈ 8 s. The controller should
        // have moved well below the 20.5 s starting interval while staying
        // near-feasible.
        assert!(interval < 16.0, "interval came down: {interval}");
        assert!(execs >= 8.0, "kept enough executors: {execs}");
        // SPSA oscillates around the stability frontier (θ* is an
        // "acceptable area", §4.2.4). What the system actually runs at
        // when NoStop pauses is the *best* configuration found — that one
        // must be near-feasible and a large improvement over the start.
        let (best_phys, best_delay) = ns.best_config().expect("best tracked");
        assert!((1.0..=40.0).contains(&best_phys[0]));
        assert!(
            best_delay < 20.5,
            "intrinsic delay beat the 20.5 s starting interval: {best_delay}"
        );
        sys.apply_config(&best_phys);
        let mean_proc: f64 = (0..10).map(|_| sys.next_batch().processing_s).sum::<f64>() / 10.0;
        assert!(
            mean_proc < best_phys[0] * 1.4,
            "near-feasible best: proc {mean_proc} vs interval {}",
            best_phys[0]
        );
    }

    #[test]
    #[ignore]
    fn debug_pause_dynamics() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 2);
        let mut ns = controller(7);
        for round in 0..60 {
            let out = ns.run_round(&mut sys);
            match out {
                RoundOutcome::Optimized {
                    mean_delay_s,
                    physical,
                    paused,
                } => {
                    println!("r{round} k={} delay={mean_delay_s:.2} phys={physical:?} paused={paused} tracked={}",
                        ns.k(), ns.pause.tracked());
                }
                other => println!("r{round} {other:?}"),
            }
        }
    }

    #[test]
    fn pauses_once_delays_converge() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 2);
        let mut ns = controller(7);
        let mut paused_at = None;
        for round in 0..200 {
            if let RoundOutcome::Optimized { paused: true, .. } = ns.run_round(&mut sys) {
                paused_at = Some(round);
                break;
            }
        }
        assert!(paused_at.is_some(), "should eventually pause");
        assert!(ns.is_paused());
        // Paused rounds only observe (a marginally-unstable park may wake,
        // which also applies no configuration change).
        let changes_before = ns.config_changes();
        match ns.run_round(&mut sys) {
            RoundOutcome::Paused { .. } | RoundOutcome::Woke => {}
            other => panic!("expected paused observation or wake, got {other:?}"),
        }
        assert_eq!(ns.config_changes(), changes_before);
    }

    #[test]
    fn exactly_two_reconfigurations_per_optimization_round() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 3);
        let mut ns = controller(3);
        let outcome = ns.run_round(&mut sys);
        match outcome {
            RoundOutcome::Optimized { paused, .. } => {
                assert!(!paused, "cannot pause after one round (N=10 needed)");
                assert_eq!(sys.changes, 2, "two Adjust calls per round");
            }
            other => panic!("expected optimization, got {other:?}"),
        }
    }

    #[test]
    fn rate_surge_triggers_reset() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 4);
        let mut ns = controller(11);
        ns.run(&mut sys, 10);
        assert!(ns.k() > 0);
        // 3× surge: well past the paper-default 3000 rec/s threshold.
        sys.rate = 30_000.0;
        let mut saw_reset = false;
        for _ in 0..10 {
            if matches!(ns.run_round(&mut sys), RoundOutcome::Reset) {
                saw_reset = true;
                break;
            }
        }
        assert!(saw_reset, "surge must trigger resetCoefficient()");
        assert_eq!(ns.k(), 0, "k reset to 0");
        assert_eq!(
            ns.theta_scaled(),
            &[10.0, 10.0],
            "iterate back at θ_initial"
        );
    }

    #[test]
    fn paused_controller_wakes_on_instability() {
        let mut sys = MockSystem::new(10_000.0, 0.01, 5);
        let mut ns = controller(13);
        for _ in 0..200 {
            ns.run_round(&mut sys);
            if ns.is_paused() {
                break;
            }
        }
        assert!(ns.is_paused(), "precondition: paused");
        // Degrade the cluster (fixed overhead jumps) without touching the
        // input rate, so only the *instability* wake-up path can fire —
        // the rate-based reset rule sees a perfectly steady stream.
        sys.fixed_s = 12.0;
        let k_before = ns.k();
        let mut woke = false;
        for _ in 0..30 {
            if matches!(ns.run_round(&mut sys), RoundOutcome::Woke) {
                woke = true;
                break;
            }
        }
        assert!(woke, "instability at the parked config must wake NoStop");
        assert!(!ns.is_paused());
        assert_eq!(ns.k(), k_before, "soft wake keeps the iteration count");
    }

    #[test]
    fn executor_failure_wakes_a_paused_controller() {
        let mut sys = MockSystem::new(10_000.0, 0.01, 5);
        let mut ns = controller(13);
        for _ in 0..200 {
            ns.run_round(&mut sys);
            if ns.is_paused() {
                break;
            }
        }
        assert!(ns.is_paused(), "precondition: paused");
        let k_before = ns.k();
        sys.fail_in = Some((0, 1)); // one loss: below the reset threshold of 3
        let mut woke = false;
        for _ in 0..5 {
            if matches!(ns.run_round(&mut sys), RoundOutcome::Woke) {
                woke = true;
                break;
            }
        }
        assert!(
            woke,
            "a single executor loss must wake the parked controller"
        );
        assert!(!ns.is_paused());
        assert_eq!(ns.k(), k_before, "below-threshold failure is a soft wake");
    }

    #[test]
    fn failure_burst_triggers_coefficient_reset() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 4);
        let mut ns = controller(11);
        ns.run(&mut sys, 10);
        assert!(ns.k() > 0);
        sys.fail_in = Some((0, 5)); // past the paper-default threshold of 3
        let mut saw_reset = false;
        for _ in 0..10 {
            if matches!(ns.run_round(&mut sys), RoundOutcome::Reset) {
                saw_reset = true;
                break;
            }
        }
        assert!(
            saw_reset,
            "losing 5 executors must restart the optimization"
        );
        assert_eq!(ns.k(), 0, "k reset to 0");
        assert_eq!(ns.theta_scaled(), &[10.0, 10.0]);
    }

    #[test]
    fn contaminated_batch_is_discarded_from_the_measurement_window() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 3);
        let mut ns = controller(3);
        // Land the crash inside the first measurement window (after the
        // settling batch): the +1000 s recomputation batch must not be
        // averaged into y(θ⁺).
        sys.fail_in = Some((2, 1));
        match ns.run_round(&mut sys) {
            RoundOutcome::Optimized { .. } => {}
            other => panic!("expected optimization, got {other:?}"),
        }
        let rec = ns.trace().rounds.last().expect("round traced");
        match &rec.kind {
            RoundKind::Optimized { plus, minus, .. } => {
                assert!(
                    plus.processing_s < 100.0,
                    "crash batch leaked into the window: {}",
                    plus.processing_s
                );
                assert!(minus.processing_s < 100.0);
            }
            other => panic!("expected an optimized trace record, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_every_round() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 6);
        let mut ns = controller(17);
        ns.run(&mut sys, 25);
        assert_eq!(ns.trace().len(), 25);
        assert_eq!(ns.rounds(), 25);
        assert!(ns.trace().optimization_rounds() > 0);
        assert!(!ns.trace().interval_series().is_empty());
    }

    #[test]
    fn best_config_is_tracked_and_feasible() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 8);
        let mut ns = controller(19);
        ns.run(&mut sys, 40);
        let (phys, delay) = ns.best_config().expect("rounds ran");
        assert_eq!(phys.len(), 2);
        assert!((1.0..=40.0).contains(&phys[0]));
        assert!((1.0..=20.0).contains(&phys[1]));
        assert!(delay > 0.0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut sys = MockSystem::new(10_000.0, 0.05, 9);
            let mut ns = controller(23);
            ns.run(&mut sys, 30);
            (ns.current_physical(), ns.trace().len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn second_order_controller_tunes_the_mock() {
        let mut cfg = NoStopConfig::paper_default();
        cfg.optimizer = OptimizerKind::SecondOrder;
        let mut sys = MockSystem::new(10_000.0, 0.05, 21);
        let mut ns = NoStop::new(cfg, 21);
        // Four reconfigurations per optimization round.
        let before = ns.config_changes();
        match ns.run_round(&mut sys) {
            RoundOutcome::Optimized { paused, .. } => {
                let expected = if paused { 5 } else { 4 };
                assert_eq!(ns.config_changes() - before, expected);
            }
            other => panic!("expected optimization, got {other:?}"),
        }
        ns.run(&mut sys, 40);
        let (best, best_delay) = ns.best_config().expect("rounds ran");
        assert!(
            best_delay < 20.5,
            "2SPSA-driven controller improves on the default: {best_delay} at {best:?}"
        );
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn trace_spans_stay_well_formed_across_resets_and_pauses() {
        let recorder = Recorder::ring(1 << 16);
        let mut sys = MockSystem::new(10_000.0, 0.02, 4);
        let mut ns = controller(11);
        ns.set_recorder(&recorder);
        ns.run(&mut sys, 10);
        // A surge fires the reset rule mid-iteration, exercising the
        // abort path that must still close the open `spsa_iter` span.
        sys.rate = 30_000.0;
        ns.run(&mut sys, 5);
        sys.rate = 10_000.0;
        ns.run(&mut sys, 200);
        assert!(ns.is_paused(), "long quiet run should pause");
        let snap = recorder.snapshot();
        nostop_obs::check_events(&snap.events).expect("well-formed controller trace");
        nostop_obs::check_jsonl(&snap.to_jsonl()).expect("well-formed JSONL");
        let changes = snap
            .counters
            .iter()
            .find(|(name, _)| *name == "config_changes")
            .map(|(_, total)| *total)
            .expect("config_changes counted");
        assert_eq!(changes, ns.config_changes(), "counter mirrors the API");
        let stats = nostop_obs::span_stats(&snap.events);
        assert!(stats.iter().any(|s| s.name == "spsa_iter" && s.count > 1));
        assert!(stats.iter().any(|s| s.name == "measure"));
    }

    #[test]
    fn rho_ramps_during_optimization() {
        let mut sys = MockSystem::new(10_000.0, 0.02, 10);
        let mut ns = controller(29);
        ns.run(&mut sys, 15);
        let rhos: Vec<f64> = ns.trace().rounds.iter().map(|r| r.rho).collect();
        assert!(rhos[0] >= 1.0);
        assert!(
            rhos.last().unwrap() > &rhos[0] || rhos.last().unwrap() >= &2.0,
            "rho ramped: {rhos:?}"
        );
    }
}
