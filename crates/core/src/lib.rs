//! # NoStop — SPSA-based online configuration optimization
//!
//! This crate is the paper's primary contribution: a controller that tunes a
//! running micro-batch streaming system's configuration — batch interval and
//! executor count in the paper's instantiation — *while the system runs*,
//! using Simultaneous Perturbation Stochastic Approximation.
//!
//! ## Structure
//!
//! * [`sa`] — the generic stochastic-approximation machinery: gain
//!   sequences with convergence-condition checking ([`sa::GainSchedule`]),
//!   perturbation distributions, the two-measurement [`sa::Spsa`] optimizer,
//!   and the classic Kiefer–Wolfowitz [`sa::Fdsa`] for comparison.
//! * [`space`] — the configuration space: physical parameter ranges,
//!   min–max scaling into a common optimization range (the paper scales
//!   both parameters into `[1, 20]`, §6.2.1), quantization, and bound
//!   clamping (the paper's `checkBound`).
//! * [`objective`] — the penalized objective of Eq. 3:
//!   `BatchInterval + ρ · max(0, BatchProcessingTime − BatchInterval)` with
//!   the ρ ramp of Algorithm 1.
//! * [`policy`] — the operational rules of §5.3–§5.5: the pause rule
//!   (std-dev of the N best delays below S), the input-rate reset rule, and
//!   the metric-collection window (skip the first batch after a change,
//!   additive-increase window with a cap).
//! * [`system`] — the black-box boundary: a [`system::StreamingSystem`]
//!   yields [`system::BatchObservation`]s and accepts configuration writes.
//!   Anything behind this trait can be tuned — the bundled discrete-event
//!   Spark simulator, or a REST client against a live cluster.
//! * [`controller`] — [`controller::NoStop`] itself: Algorithms 1 and 2.
//! * [`trace`] — structured per-round records for the Fig-6 style
//!   optimization-evolution plots.
//! * [`listener`] — the JSON status vector the architecture diagram
//!   (Fig. 4) exchanges between the streaming listener and NoStop.
//!
//! ## Quick start
//!
//! ```
//! use nostop_core::controller::{NoStop, NoStopConfig};
//! use nostop_core::system::{BatchObservation, StreamingSystem};
//!
//! // A toy "system": processing time responds linearly to config.
//! struct Toy { interval: f64, execs: f64, t: f64 }
//! impl StreamingSystem for Toy {
//!     fn apply_config(&mut self, physical: &[f64]) {
//!         self.interval = physical[0];
//!         self.execs = physical[1];
//!     }
//!     fn next_batch(&mut self) -> BatchObservation {
//!         self.t += self.interval;
//!         let proc = 2.0 + 80.0 / self.execs; // more executors -> faster
//!         BatchObservation {
//!             completed_at_s: self.t,
//!             interval_s: self.interval,
//!             processing_s: proc,
//!             scheduling_delay_s: 0.0,
//!             records: (100.0 * self.interval) as u64,
//!             input_rate: 100.0, // constant arrival rate
//!             num_executors: self.execs as u32,
//!             queued_batches: 0,
//!             executor_failures: 0,
//!         }
//!     }
//!     fn now_s(&self) -> f64 { self.t }
//! }
//!
//! let mut sys = Toy { interval: 10.0, execs: 10.0, t: 0.0 };
//! let mut nostop = NoStop::new(NoStopConfig::paper_default(), 42);
//! for _ in 0..30 { nostop.run_round(&mut sys); }
//! let (best, _delay) = nostop.best_config().expect("rounds ran");
//! assert!(best[1] >= 1.0); // a sane executor count was chosen
//! ```

pub mod arbiter;
pub mod controller;
pub mod listener;
pub mod objective;
pub mod policy;
pub mod sa;
pub mod scenario;
pub mod space;
pub mod system;
pub mod trace;

pub use arbiter::{ArbiterPolicy, LedgerEvent, LedgerEventKind, ResourceRequest};
pub use controller::{NoStop, NoStopConfig};
pub use objective::PenaltySchedule;
pub use sa::{Fdsa, GainSchedule, Spsa, SpsaParams};
pub use scenario::{ClusterKind, FaultSpec, RateSpec, ScenarioSpec, SkewSpec};
pub use space::{ConfigSpace, ParamSpec};
pub use system::{BatchObservation, Measurement, StreamingSystem};
