//! The JSON status vector between the streaming listener and NoStop.
//!
//! Fig. 4: "We design Spark Streaming Listener to report real-time system
//! status to NoStop in JSON format." [`StatusReport`] is that wire format.
//! A REST-driven deployment posts these JSON objects; the in-process
//! simulator produces the same struct directly. Either way,
//! [`StatusReport::to_observation`] turns a report into the
//! [`BatchObservation`] the controller consumes — so the controller code
//! path is identical in both deployments.

use crate::system::BatchObservation;
use nostop_simcore::json::{self, Json};

/// A listener status report for one completed batch, in the JSON shape a
/// `StreamingListener.onBatchCompleted` hook would emit.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// Batch sequence number.
    pub batch_id: u64,
    /// Batch submission time, epoch-relative milliseconds.
    pub submission_time_ms: u64,
    /// Processing start time, milliseconds.
    pub processing_start_time_ms: u64,
    /// Processing end time, milliseconds.
    pub processing_end_time_ms: u64,
    /// Records in the batch.
    pub num_records: u64,
    /// Records that *arrived* at the source during the ingest window
    /// (differs from `numRecords` while draining a backlog). Optional on
    /// the wire; 0 means "same as numRecords".
    pub arrived_records: u64,
    /// The batch interval in force, milliseconds.
    pub batch_interval_ms: u64,
    /// Actual receiver ingest window for this batch, milliseconds (equals
    /// the interval except for the first batch after an interval change).
    /// Optional on the wire; 0 means "use the interval".
    pub ingest_window_ms: u64,
    /// Live executor count.
    pub num_executors: u32,
    /// Batches waiting in the queue at completion time.
    pub queued_batches: u32,
    /// Executors lost to failures since the previous batch completed.
    /// Optional on the wire; 0 means "no failures observed".
    pub executor_failures: u32,
}

impl StatusReport {
    /// Scheduling delay in milliseconds (start − submission).
    pub fn scheduling_delay_ms(&self) -> u64 {
        self.processing_start_time_ms
            .saturating_sub(self.submission_time_ms)
    }

    /// Processing time in milliseconds (end − start).
    pub fn processing_time_ms(&self) -> u64 {
        self.processing_end_time_ms
            .saturating_sub(self.processing_start_time_ms)
    }

    /// Convert to the controller's observation type.
    pub fn to_observation(&self) -> BatchObservation {
        let interval_s = self.batch_interval_ms as f64 / 1e3;
        let window_s = if self.ingest_window_ms > 0 {
            self.ingest_window_ms as f64 / 1e3
        } else {
            interval_s
        };
        let arrived = if self.arrived_records > 0 {
            self.arrived_records
        } else {
            self.num_records
        };
        BatchObservation {
            completed_at_s: self.processing_end_time_ms as f64 / 1e3,
            interval_s,
            processing_s: self.processing_time_ms() as f64 / 1e3,
            scheduling_delay_s: self.scheduling_delay_ms() as f64 / 1e3,
            records: self.num_records,
            input_rate: if window_s > 0.0 {
                arrived as f64 / window_s
            } else {
                0.0
            },
            num_executors: self.num_executors,
            queued_batches: self.queued_batches,
            executor_failures: self.executor_failures,
        }
    }

    /// The canonical key order of the wire format. Every field is a
    /// non-negative integer, which is what makes the direct writer and the
    /// fast-path parser below so simple.
    const KEYS: [&'static str; 11] = [
        "batchId",
        "submissionTimeMs",
        "processingStartTimeMs",
        "processingEndTimeMs",
        "numRecords",
        "arrivedRecords",
        "batchIntervalMs",
        "ingestWindowMs",
        "numExecutors",
        "queuedBatches",
        "executorFailures",
    ];

    fn field_values(&self) -> [u64; 11] {
        [
            self.batch_id,
            self.submission_time_ms,
            self.processing_start_time_ms,
            self.processing_end_time_ms,
            self.num_records,
            self.arrived_records,
            self.batch_interval_ms,
            self.ingest_window_ms,
            self.num_executors as u64,
            self.queued_batches as u64,
            self.executor_failures as u64,
        ]
    }

    /// Serialize to the JSON wire format (camelCase keys, fixed key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    /// Append the JSON wire format to `out` without allocating.
    ///
    /// This is the report's hot path — it runs once per simulated batch —
    /// so it writes the encoding directly instead of building a [`Json`]
    /// tree first. The output is byte-identical to serializing the tree
    /// (a unit test pins that equivalence).
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (key, value)) in Self::KEYS.iter().zip(self.field_values()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            push_u64(out, value);
        }
        out.push('}');
    }

    /// Strict scanner for the canonical encoding `write_json` emits: the
    /// eleven known keys in order, bare integer values, no whitespace.
    /// Returns `None` on any deviation so the caller can fall back to the
    /// general parser — this is an optimization, not a format change.
    fn parse_canonical(text: &str) -> Option<[u64; 11]> {
        fn eat(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
            if b[*pos..].starts_with(lit) {
                *pos += lit.len();
                true
            } else {
                false
            }
        }
        fn digits(b: &[u8], pos: &mut usize) -> Option<u64> {
            let start = *pos;
            let mut v: u64 = 0;
            while let Some(d) = b.get(*pos).filter(|c| c.is_ascii_digit()) {
                v = v.checked_mul(10)?.checked_add((d - b'0') as u64)?;
                *pos += 1;
            }
            (*pos > start).then_some(v)
        }
        let b = text.as_bytes();
        let mut pos = 0;
        let mut values = [0u64; 11];
        if !eat(b, &mut pos, b"{") {
            return None;
        }
        for (i, key) in Self::KEYS.iter().enumerate() {
            if i > 0 && !eat(b, &mut pos, b",") {
                return None;
            }
            if !eat(b, &mut pos, b"\"")
                || !eat(b, &mut pos, key.as_bytes())
                || !eat(b, &mut pos, b"\":")
            {
                return None;
            }
            values[i] = digits(b, &mut pos)?;
        }
        (eat(b, &mut pos, b"}") && pos == b.len()).then_some(values)
    }

    /// Parse from the JSON wire format. `arrivedRecords`,
    /// `ingestWindowMs`, and `executorFailures` are optional on the wire
    /// and default to 0.
    pub fn from_json(text: &str) -> Result<Self, json::Error> {
        if let Some(v) = Self::parse_canonical(text) {
            return Ok(StatusReport {
                batch_id: v[0],
                submission_time_ms: v[1],
                processing_start_time_ms: v[2],
                processing_end_time_ms: v[3],
                num_records: v[4],
                arrived_records: v[5],
                batch_interval_ms: v[6],
                ingest_window_ms: v[7],
                num_executors: v[8] as u32,
                queued_batches: v[9] as u32,
                executor_failures: v[10] as u32,
            });
        }
        let v = Json::parse(text)?;
        Ok(StatusReport {
            batch_id: v.field_u64("batchId")?,
            submission_time_ms: v.field_u64("submissionTimeMs")?,
            processing_start_time_ms: v.field_u64("processingStartTimeMs")?,
            processing_end_time_ms: v.field_u64("processingEndTimeMs")?,
            num_records: v.field_u64("numRecords")?,
            arrived_records: v.field_u64_or_zero("arrivedRecords")?,
            batch_interval_ms: v.field_u64("batchIntervalMs")?,
            ingest_window_ms: v.field_u64_or_zero("ingestWindowMs")?,
            num_executors: v.field_u64("numExecutors")? as u32,
            queued_batches: v.field_u64("queuedBatches")? as u32,
            executor_failures: v.field_u64_or_zero("executorFailures")? as u32,
        })
    }
}

/// Append a decimal `u64` without going through the `fmt` machinery.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StatusReport {
        StatusReport {
            batch_id: 7,
            submission_time_ms: 100_000,
            processing_start_time_ms: 101_500,
            processing_end_time_ms: 109_500,
            num_records: 50_000,
            arrived_records: 50_000,
            batch_interval_ms: 10_000,
            ingest_window_ms: 10_000,
            num_executors: 12,
            queued_batches: 1,
            executor_failures: 0,
        }
    }

    #[test]
    fn delay_arithmetic() {
        let r = report();
        assert_eq!(r.scheduling_delay_ms(), 1_500);
        assert_eq!(r.processing_time_ms(), 8_000);
    }

    #[test]
    fn converts_to_observation() {
        let o = report().to_observation();
        assert_eq!(o.interval_s, 10.0);
        assert_eq!(o.processing_s, 8.0);
        assert_eq!(o.scheduling_delay_s, 1.5);
        assert_eq!(o.records, 50_000);
        assert_eq!(o.input_rate, 5_000.0);
        assert_eq!(o.num_executors, 12);
        assert!(o.is_stable());
    }

    #[test]
    fn json_round_trip_uses_camel_case() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"batchId\":7"), "{json}");
        assert!(json.contains("\"batchIntervalMs\":10000"), "{json}");
        let back = StatusReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parses_external_json() {
        let json = r#"{
            "batchId": 1, "submissionTimeMs": 0, "processingStartTimeMs": 10,
            "processingEndTimeMs": 500, "numRecords": 42,
            "batchIntervalMs": 1000, "numExecutors": 4, "queuedBatches": 0
        }"#;
        let r = StatusReport::from_json(json).unwrap();
        assert_eq!(r.num_records, 42);
        assert_eq!(r.processing_time_ms(), 490);
    }

    #[test]
    fn clock_skew_saturates_rather_than_underflows() {
        let mut r = report();
        r.processing_start_time_ms = 0; // bogus listener clock
        assert_eq!(r.scheduling_delay_ms(), 0);
    }

    /// The direct writer must emit exactly what serializing a [`Json`]
    /// tree with the same fields would — the wire format is pinned. (Only
    /// up to 2^53: the tree writer routes integers through `f64` and is
    /// lossy beyond that, where the direct writer stays exact.)
    #[test]
    fn direct_writer_matches_tree_serialization() {
        let mut extreme = report();
        extreme.batch_id = 0;
        extreme.num_records = (1u64 << 53) - 1;
        extreme.executor_failures = u32::MAX;
        for r in [report(), extreme] {
            let tree = json::obj(
                StatusReport::KEYS
                    .iter()
                    .zip(r.field_values())
                    .map(|(k, v)| (*k, json::uint(v)))
                    .collect(),
            )
            .to_string();
            assert_eq!(r.to_json(), tree);
        }
    }

    /// The canonical fast-path parser and the general JSON parser must
    /// agree — on canonical text directly, and via fallback on anything
    /// else (whitespace, reordering, missing optional fields).
    #[test]
    fn fast_parse_agrees_with_general_parse() {
        let r = report();
        let canonical = r.to_json();
        assert_eq!(
            StatusReport::parse_canonical(&canonical),
            Some(r.field_values())
        );
        assert_eq!(StatusReport::from_json(&canonical).unwrap(), r);

        let spaced = canonical.replace(':', ": ");
        assert_eq!(StatusReport::parse_canonical(&spaced), None);
        assert_eq!(StatusReport::from_json(&spaced).unwrap(), r);

        // u64::MAX in the tree writer survives the fast path too.
        let mut big = r.clone();
        big.num_records = u64::MAX;
        assert_eq!(StatusReport::from_json(&big.to_json()).unwrap(), big);

        // Digits overflowing u64 must punt to the general parser rather
        // than wrap silently.
        let overflow = canonical.replace("50000", "99999999999999999999999");
        assert_eq!(StatusReport::parse_canonical(&overflow), None);
    }
}
