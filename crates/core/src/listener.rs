//! The JSON status vector between the streaming listener and NoStop.
//!
//! Fig. 4: "We design Spark Streaming Listener to report real-time system
//! status to NoStop in JSON format." [`StatusReport`] is that wire format.
//! A REST-driven deployment posts these JSON objects; the in-process
//! simulator produces the same struct directly. Either way,
//! [`StatusReport::to_observation`] turns a report into the
//! [`BatchObservation`] the controller consumes — so the controller code
//! path is identical in both deployments.

use crate::system::BatchObservation;
use nostop_simcore::json::{self, Json};

/// A listener status report for one completed batch, in the JSON shape a
/// `StreamingListener.onBatchCompleted` hook would emit.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// Batch sequence number.
    pub batch_id: u64,
    /// Batch submission time, epoch-relative milliseconds.
    pub submission_time_ms: u64,
    /// Processing start time, milliseconds.
    pub processing_start_time_ms: u64,
    /// Processing end time, milliseconds.
    pub processing_end_time_ms: u64,
    /// Records in the batch.
    pub num_records: u64,
    /// Records that *arrived* at the source during the ingest window
    /// (differs from `numRecords` while draining a backlog). Optional on
    /// the wire; 0 means "same as numRecords".
    pub arrived_records: u64,
    /// The batch interval in force, milliseconds.
    pub batch_interval_ms: u64,
    /// Actual receiver ingest window for this batch, milliseconds (equals
    /// the interval except for the first batch after an interval change).
    /// Optional on the wire; 0 means "use the interval".
    pub ingest_window_ms: u64,
    /// Live executor count.
    pub num_executors: u32,
    /// Batches waiting in the queue at completion time.
    pub queued_batches: u32,
    /// Executors lost to failures since the previous batch completed.
    /// Optional on the wire; 0 means "no failures observed".
    pub executor_failures: u32,
}

impl StatusReport {
    /// Scheduling delay in milliseconds (start − submission).
    pub fn scheduling_delay_ms(&self) -> u64 {
        self.processing_start_time_ms
            .saturating_sub(self.submission_time_ms)
    }

    /// Processing time in milliseconds (end − start).
    pub fn processing_time_ms(&self) -> u64 {
        self.processing_end_time_ms
            .saturating_sub(self.processing_start_time_ms)
    }

    /// Convert to the controller's observation type.
    pub fn to_observation(&self) -> BatchObservation {
        let interval_s = self.batch_interval_ms as f64 / 1e3;
        let window_s = if self.ingest_window_ms > 0 {
            self.ingest_window_ms as f64 / 1e3
        } else {
            interval_s
        };
        let arrived = if self.arrived_records > 0 {
            self.arrived_records
        } else {
            self.num_records
        };
        BatchObservation {
            completed_at_s: self.processing_end_time_ms as f64 / 1e3,
            interval_s,
            processing_s: self.processing_time_ms() as f64 / 1e3,
            scheduling_delay_s: self.scheduling_delay_ms() as f64 / 1e3,
            records: self.num_records,
            input_rate: if window_s > 0.0 {
                arrived as f64 / window_s
            } else {
                0.0
            },
            num_executors: self.num_executors,
            queued_batches: self.queued_batches,
            executor_failures: self.executor_failures,
        }
    }

    /// Serialize to the JSON wire format (camelCase keys, fixed key order).
    pub fn to_json(&self) -> String {
        json::obj(vec![
            ("batchId", json::uint(self.batch_id)),
            ("submissionTimeMs", json::uint(self.submission_time_ms)),
            (
                "processingStartTimeMs",
                json::uint(self.processing_start_time_ms),
            ),
            (
                "processingEndTimeMs",
                json::uint(self.processing_end_time_ms),
            ),
            ("numRecords", json::uint(self.num_records)),
            ("arrivedRecords", json::uint(self.arrived_records)),
            ("batchIntervalMs", json::uint(self.batch_interval_ms)),
            ("ingestWindowMs", json::uint(self.ingest_window_ms)),
            ("numExecutors", json::uint(self.num_executors as u64)),
            ("queuedBatches", json::uint(self.queued_batches as u64)),
            (
                "executorFailures",
                json::uint(self.executor_failures as u64),
            ),
        ])
        .to_string()
    }

    /// Parse from the JSON wire format. `arrivedRecords`,
    /// `ingestWindowMs`, and `executorFailures` are optional on the wire
    /// and default to 0.
    pub fn from_json(text: &str) -> Result<Self, json::Error> {
        let v = Json::parse(text)?;
        Ok(StatusReport {
            batch_id: v.field_u64("batchId")?,
            submission_time_ms: v.field_u64("submissionTimeMs")?,
            processing_start_time_ms: v.field_u64("processingStartTimeMs")?,
            processing_end_time_ms: v.field_u64("processingEndTimeMs")?,
            num_records: v.field_u64("numRecords")?,
            arrived_records: v.field_u64_or_zero("arrivedRecords")?,
            batch_interval_ms: v.field_u64("batchIntervalMs")?,
            ingest_window_ms: v.field_u64_or_zero("ingestWindowMs")?,
            num_executors: v.field_u64("numExecutors")? as u32,
            queued_batches: v.field_u64("queuedBatches")? as u32,
            executor_failures: v.field_u64_or_zero("executorFailures")? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StatusReport {
        StatusReport {
            batch_id: 7,
            submission_time_ms: 100_000,
            processing_start_time_ms: 101_500,
            processing_end_time_ms: 109_500,
            num_records: 50_000,
            arrived_records: 50_000,
            batch_interval_ms: 10_000,
            ingest_window_ms: 10_000,
            num_executors: 12,
            queued_batches: 1,
            executor_failures: 0,
        }
    }

    #[test]
    fn delay_arithmetic() {
        let r = report();
        assert_eq!(r.scheduling_delay_ms(), 1_500);
        assert_eq!(r.processing_time_ms(), 8_000);
    }

    #[test]
    fn converts_to_observation() {
        let o = report().to_observation();
        assert_eq!(o.interval_s, 10.0);
        assert_eq!(o.processing_s, 8.0);
        assert_eq!(o.scheduling_delay_s, 1.5);
        assert_eq!(o.records, 50_000);
        assert_eq!(o.input_rate, 5_000.0);
        assert_eq!(o.num_executors, 12);
        assert!(o.is_stable());
    }

    #[test]
    fn json_round_trip_uses_camel_case() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"batchId\":7"), "{json}");
        assert!(json.contains("\"batchIntervalMs\":10000"), "{json}");
        let back = StatusReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parses_external_json() {
        let json = r#"{
            "batchId": 1, "submissionTimeMs": 0, "processingStartTimeMs": 10,
            "processingEndTimeMs": 500, "numRecords": 42,
            "batchIntervalMs": 1000, "numExecutors": 4, "queuedBatches": 0
        }"#;
        let r = StatusReport::from_json(json).unwrap();
        assert_eq!(r.num_records, 42);
        assert_eq!(r.processing_time_ms(), 490);
    }

    #[test]
    fn clock_skew_saturates_rather_than_underflows() {
        let mut r = report();
        r.processing_start_time_ms = 0; // bogus listener clock
        assert_eq!(r.scheduling_delay_ms(), 0);
    }
}
