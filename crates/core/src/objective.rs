//! The penalized objective of Eq. 3 and its ρ ramp.
//!
//! SSPO (Definition 3.1) minimizes batch interval subject to the stability
//! constraint `BatchInterval ≥ BatchProcessingTime`. NoStop folds the
//! constraint into the objective as an exact penalty:
//!
//! ```text
//! G(θ) = BatchInterval + ρ · max(0, BatchProcessingTime − BatchInterval)
//! ```
//!
//! §4.2.2 explains the ρ schedule: early in the optimization the gain
//! sequence is large, so a large ρ would produce overshooting gradients;
//! as `k` grows and gains shrink, ρ is raised to keep constraint violations
//! expensive — but capped, lest the penalty drown the minimization goal.
//! Algorithm 1 ramps ρ from 1 by 0.1 per iteration to a cap of 2.

/// The cap of the paper's ρ ramp — also the coefficient used when *ranking*
/// configurations intrinsically (the bench driver's scoring metric), so that
/// ranking and optimization penalize instability identically.
pub const RHO_CAP: f64 = 2.0;

/// The stability headroom fraction used when ranking configurations:
/// processing time must fit within this fraction of the interval before a
/// configuration counts as cleanly stable. Shared by
/// [`crate::NoStopConfig::paper_default`] and the bench driver's intrinsic
/// scoring, so there is one source of truth for "comfortably stable".
pub const STABILITY_HEADROOM: f64 = 0.85;

/// The ρ penalty schedule of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltySchedule {
    /// Current penalty coefficient.
    rho: f64,
    /// Initial value (Algorithm 1: 1.0).
    pub rho_init: f64,
    /// Per-iteration increment (Algorithm 1: 0.1).
    pub rho_step: f64,
    /// Upper cap (Algorithm 1: 2.0).
    pub rho_max: f64,
}

impl PenaltySchedule {
    /// The paper's schedule: ρ: 1.0 → 2.0 in steps of 0.1.
    pub fn paper_default() -> Self {
        PenaltySchedule {
            rho: 1.0,
            rho_init: 1.0,
            rho_step: 0.1,
            rho_max: RHO_CAP,
        }
    }

    /// Rebuild a schedule mid-ramp — used when restoring a serialized
    /// configuration. `current` is clamped into `[init, max]`.
    pub fn restore(init: f64, step: f64, max: f64, current: f64) -> Self {
        let mut p = PenaltySchedule::new(init, step, max);
        p.rho = current.clamp(init, max);
        p
    }

    /// A custom schedule; panics unless `0 < init ≤ max` and `step ≥ 0`.
    pub fn new(init: f64, step: f64, max: f64) -> Self {
        assert!(init > 0.0 && init <= max, "need 0 < init <= max");
        assert!(step >= 0.0, "step must be non-negative");
        PenaltySchedule {
            rho: init,
            rho_init: init,
            rho_step: step,
            rho_max: max,
        }
    }

    /// The current coefficient ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Evaluate Eq. 3 with the current ρ. Arguments in seconds.
    pub fn objective(&self, batch_interval_s: f64, processing_time_s: f64) -> f64 {
        batch_interval_s + self.rho * (processing_time_s - batch_interval_s).max(0.0)
    }

    /// Advance the ramp (Algorithm 1 does this once per iteration, after
    /// both measurements): `ρ ← min(ρ + step, max)`.
    pub fn advance(&mut self) {
        self.rho = (self.rho + self.rho_step).min(self.rho_max);
    }

    /// Reset to the initial coefficient — part of `resetCoefficient()`.
    pub fn reset(&mut self) {
        self.rho = self.rho_init;
    }
}

impl Default for PenaltySchedule {
    fn default() -> Self {
        PenaltySchedule::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_configs_pay_only_interval() {
        let p = PenaltySchedule::paper_default();
        // processing < interval: no penalty, G = interval.
        assert_eq!(p.objective(10.0, 8.0), 10.0);
        assert_eq!(p.objective(10.0, 10.0), 10.0);
    }

    #[test]
    fn unstable_configs_pay_penalty() {
        let p = PenaltySchedule::paper_default();
        // processing 12 > interval 10: G = 10 + 1.0 * 2 = 12.
        assert_eq!(p.objective(10.0, 12.0), 12.0);
    }

    #[test]
    fn ramp_follows_algorithm_one() {
        let mut p = PenaltySchedule::paper_default();
        assert_eq!(p.rho(), 1.0);
        for i in 1..=10 {
            p.advance();
            assert!((p.rho() - (1.0 + 0.1 * i as f64)).abs() < 1e-12);
        }
        // Capped at 2.0 thereafter.
        for _ in 0..20 {
            p.advance();
        }
        assert_eq!(p.rho(), 2.0);
    }

    #[test]
    fn ramped_penalty_weights_violation_more() {
        let mut p = PenaltySchedule::paper_default();
        let early = p.objective(10.0, 12.0);
        for _ in 0..20 {
            p.advance();
        }
        let late = p.objective(10.0, 12.0);
        assert_eq!(early, 12.0);
        assert_eq!(late, 14.0); // rho = 2
        assert!(late > early);
    }

    #[test]
    fn reset_restores_initial_rho() {
        let mut p = PenaltySchedule::paper_default();
        p.advance();
        p.advance();
        p.reset();
        assert_eq!(p.rho(), 1.0);
    }

    #[test]
    fn objective_ordering_prefers_smaller_stable_interval() {
        // Among stable configs the smaller interval wins; any unstable
        // config loses to a stable one at the same interval.
        let p = PenaltySchedule::paper_default();
        assert!(p.objective(8.0, 7.0) < p.objective(12.0, 7.0));
        assert!(p.objective(10.0, 9.0) < p.objective(10.0, 11.0));
    }

    #[test]
    #[should_panic(expected = "init")]
    fn invalid_schedule_panics() {
        let _ = PenaltySchedule::new(3.0, 0.1, 2.0);
    }
}
