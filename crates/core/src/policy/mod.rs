//! The operational policies of §5.3–§5.5.
//!
//! * [`pause`] — when to halt optimization: the standard deviation of the
//!   end-to-end delays achieved by the N best configurations falls below a
//!   threshold S (§5.3.5's "impeded progress rule").
//! * [`reset`] — when to restart: the standard deviation of recent input
//!   rates exceeds `threshold_speed`, signalling a traffic surge that the
//!   now-tiny SPSA step sizes could not chase (§5.5).
//! * [`window`] — how to measure: skip the first batch after every
//!   reconfiguration (executor/jar initialization pollutes it), average
//!   over a window of batches, and grow that window additively while the
//!   system sits at an optimum — capped so the controller never goes blind
//!   to regime changes (§5.4).

pub mod pause;
pub mod reset;
pub mod window;

pub use pause::PauseRule;
pub use reset::ResetRule;
pub use window::WindowPolicy;
