//! The pause rule (§5.3.5).
//!
//! "If the standard deviation of the end-to-end delay resulted from N best
//! configurations is smaller than a threshold S, we pause the optimization
//! process." The paper's experiments use `N = 10`, `S = 1` (§6.2.1).

use nostop_simcore::stats::summarize;

/// Tracks the N best (lowest-delay) configurations seen in the current
/// optimization episode and decides when improvement has stalled.
#[derive(Debug, Clone)]
pub struct PauseRule {
    /// How many best configurations to track (paper: 10).
    pub n_best: usize,
    /// Std-dev threshold in seconds (paper: 1.0).
    pub threshold: f64,
    /// The N lowest delays seen, kept sorted ascending.
    best: Vec<f64>,
}

impl PauseRule {
    /// A rule over the `n_best` lowest delays with threshold `threshold`.
    pub fn new(n_best: usize, threshold: f64) -> Self {
        assert!(n_best >= 2, "need at least two configurations to compare");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        PauseRule {
            n_best,
            threshold,
            best: Vec::with_capacity(n_best + 1),
        }
    }

    /// The paper's setting: N = 10, S = 1 s.
    pub fn paper_default() -> Self {
        PauseRule::new(10, 1.0)
    }

    /// Record the delay a configuration achieved.
    pub fn record(&mut self, delay_s: f64) {
        if !delay_s.is_finite() {
            return;
        }
        let pos = self.best.partition_point(|&d| d <= delay_s);
        self.best.insert(pos, delay_s);
        if self.best.len() > self.n_best {
            self.best.pop();
        }
    }

    /// True when N configurations have been seen and their delay std-dev is
    /// below the threshold.
    pub fn should_pause(&self) -> bool {
        if self.best.len() < self.n_best {
            return false;
        }
        summarize(&self.best).std_dev < self.threshold
    }

    /// The best (lowest) delay recorded this episode.
    pub fn best_delay(&self) -> Option<f64> {
        self.best.first().copied()
    }

    /// Number of configurations currently tracked.
    pub fn tracked(&self) -> usize {
        self.best.len()
    }

    /// Forget the episode (called on reset).
    pub fn clear(&mut self) {
        self.best.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pause_before_n_samples() {
        let mut r = PauseRule::new(5, 1.0);
        for _ in 0..4 {
            r.record(10.0);
        }
        assert!(!r.should_pause());
        r.record(10.0);
        assert!(r.should_pause());
    }

    #[test]
    fn pause_requires_tight_best_set() {
        let mut r = PauseRule::new(5, 1.0);
        // Scattered delays: std over best 5 is large.
        for d in [10.0, 14.0, 18.0, 22.0, 26.0] {
            r.record(d);
        }
        assert!(!r.should_pause());
        // Converging delays push the scattered ones out of the best set.
        for _ in 0..5 {
            r.record(10.1);
        }
        assert!(r.should_pause());
    }

    #[test]
    fn keeps_only_n_lowest() {
        let mut r = PauseRule::new(3, 0.5);
        for d in [5.0, 1.0, 9.0, 2.0, 3.0, 8.0] {
            r.record(d);
        }
        assert_eq!(r.tracked(), 3);
        assert_eq!(r.best_delay(), Some(1.0));
        // Best three are {1, 2, 3} with std ~0.816 > 0.5.
        assert!(!r.should_pause());
    }

    #[test]
    fn clear_restarts_episode() {
        let mut r = PauseRule::new(2, 10.0);
        r.record(1.0);
        r.record(1.0);
        assert!(r.should_pause());
        r.clear();
        assert!(!r.should_pause());
        assert_eq!(r.best_delay(), None);
    }

    #[test]
    fn non_finite_delays_ignored() {
        let mut r = PauseRule::new(2, 1.0);
        r.record(f64::NAN);
        r.record(f64::INFINITY);
        assert_eq!(r.tracked(), 0);
    }

    #[test]
    fn paper_default_parameters() {
        let r = PauseRule::paper_default();
        assert_eq!(r.n_best, 10);
        assert_eq!(r.threshold, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_n_panics() {
        let _ = PauseRule::new(1, 1.0);
    }
}
