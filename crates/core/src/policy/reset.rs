//! The input-rate reset rule (§5.5).
//!
//! After many SPSA iterations the gain sequence is tiny; a traffic surge
//! (an e-commerce promotion, a spike) would then be chased at a crawl. The
//! paper's remedy: watch the standard deviation of the recent input data
//! rate, and when it exceeds `threshold_speed`, reset the coefficients
//! (`k ← 0, θ ← θ_initial, ρ ← ρ_init`) and restart the optimization.

use nostop_simcore::stats::{Ewma, RollingStats};

/// Watches recent input rates and fires when their variability signals a
/// regime change.
#[derive(Debug, Clone)]
pub struct ResetRule {
    /// Std-dev threshold: records/second when `relative` is false, a
    /// fraction of the windowed mean rate when true.
    pub threshold_speed: f64,
    /// Interpret `threshold_speed` relative to the windowed mean rate.
    /// A relative threshold survives regime changes: after a permanent
    /// surge the new (higher) rate level raises the bar proportionally,
    /// so the rule fires on the *shift* but not forever after it.
    pub relative: bool,
    window: RollingStats,
    min_samples: usize,
    /// Latched once the threshold is crossed; stays set until [`ResetRule::clear`].
    fired: bool,
    /// Slow EWMA of the rate — the baseline for level-shift detection.
    baseline: Ewma,
    /// Fire when the windowed mean deviates from the baseline by more than
    /// this fraction (`None` disables level-shift detection).
    ///
    /// The paper's std-dev rule (§5.5) catches the *transition window*
    /// where old- and new-regime samples mix; it is blind to a clean level
    /// shift whose window has already filled with new-regime samples, and
    /// a dispersion threshold wide enough for benign in-range fluctuation
    /// cannot see a 2× step at all (a step from r to m·r yields a
    /// std/mean ratio of at most (m−1)/(m+1)). The level-shift detector
    /// closes that gap.
    pub level_fraction: Option<f64>,
    /// Cumulative executor failures reported since the last [`ResetRule::clear`].
    failures: u32,
    /// Fire once cumulative executor failures reach this count (`None`
    /// disables failure-triggered resets). Executor loss changes the
    /// effective service rate the same way a traffic surge changes the
    /// arrival rate: the converged θ is stale and the shrunk SPSA gains
    /// would chase the new optimum at a crawl — so re-explore.
    pub failure_threshold: Option<u32>,
}

impl ResetRule {
    /// Watch the last `window` rate samples; fire when their std-dev
    /// exceeds `threshold_speed` (records/s). Requires at least
    /// `window / 2` samples before firing (a half-filled window is enough
    /// evidence, a couple of samples is not).
    pub fn new(threshold_speed: f64, window: usize) -> Self {
        assert!(threshold_speed > 0.0, "threshold must be positive");
        assert!(window >= 4, "window too small to estimate variability");
        ResetRule {
            threshold_speed,
            relative: false,
            window: RollingStats::new(window),
            min_samples: window / 2,
            fired: false,
            baseline: Ewma::new(0.02),
            level_fraction: None,
            failures: 0,
            failure_threshold: None,
        }
    }

    /// A relative rule: fire when the windowed rate std-dev exceeds
    /// `fraction` of the windowed mean rate, or when the windowed mean
    /// shifts from the long-term baseline by more than 40%.
    pub fn relative(fraction: f64, window: usize) -> Self {
        assert!(fraction > 0.0, "fraction must be positive");
        let mut r = ResetRule::new(fraction, window);
        r.relative = true;
        r.level_fraction = Some(0.4);
        r
    }

    /// A threshold derived from the workload's expected rate range: fire
    /// when rate variability exceeds `fraction` of the range width. The
    /// paper's in-range fluctuation (e.g. uniform over [7k, 13k]) has
    /// std ≈ 0.29 × width, so `fraction = 0.5` ignores in-range noise but
    /// catches surges beyond the range.
    pub fn for_rate_range(min_rate: f64, max_rate: f64, fraction: f64, window: usize) -> Self {
        assert!(max_rate > min_rate, "invalid rate range");
        ResetRule::new(((max_rate - min_rate) * fraction).max(1e-9), window)
    }

    /// Record one observed input-rate sample (records/s).
    ///
    /// Detection latches: once the windowed std-dev crosses the threshold,
    /// [`ResetRule::needs_reset`] stays true until [`ResetRule::clear`] —
    /// the controller may poll long after the surge samples have rolled
    /// out of the window (its measurement rounds consume many batches).
    pub fn record_rate(&mut self, rate: f64) {
        if !(rate.is_finite() && rate >= 0.0) {
            return;
        }
        self.window.push(rate);
        let threshold = if self.relative {
            self.threshold_speed * self.window.mean()
        } else {
            self.threshold_speed
        };
        if self.window.len() >= self.min_samples && self.window.std_dev() > threshold {
            self.fired = true;
        }
        // Level-shift detection against the slow baseline.
        if let (Some(frac), Some(base)) = (self.level_fraction, self.baseline.value()) {
            if self.window.len() >= self.min_samples
                && (self.window.mean() - base).abs() > frac * base
            {
                self.fired = true;
            }
        }
        self.baseline.push(rate);
    }

    /// Record `count` executor failures observed in a completed batch.
    /// Latches the reset once cumulative failures since the last
    /// [`ResetRule::clear`] reach `failure_threshold`.
    pub fn record_failure(&mut self, count: u32) {
        if count == 0 {
            return;
        }
        self.failures = self.failures.saturating_add(count);
        if let Some(threshold) = self.failure_threshold {
            if self.failures >= threshold {
                self.fired = true;
            }
        }
    }

    /// Cumulative executor failures since the last [`ResetRule::clear`]
    /// (for telemetry).
    pub fn failure_count(&self) -> u32 {
        self.failures
    }

    /// True once a rate shift has been detected — the paper's
    /// `needResetCoefficient()`.
    pub fn needs_reset(&self) -> bool {
        self.fired
    }

    /// Current windowed std-dev (for telemetry).
    pub fn current_std(&self) -> f64 {
        self.window.std_dev()
    }

    /// Mean rate over the window (for telemetry).
    pub fn mean_rate(&self) -> f64 {
        self.window.mean()
    }

    /// Clear the window and the latch — called right after a reset fires
    /// so the same surge does not retrigger immediately. The level
    /// baseline snaps to the most recent window mean: the new regime is
    /// accepted as normal.
    pub fn clear(&mut self) {
        let level = if self.window.is_empty() {
            None
        } else {
            Some(self.window.mean())
        };
        self.window.clear();
        self.fired = false;
        self.failures = 0;
        self.baseline.reset();
        if let Some(l) = level {
            self.baseline.push(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_rate_never_fires() {
        let mut r = ResetRule::new(1_000.0, 10);
        for _ in 0..100 {
            r.record_rate(10_000.0);
        }
        assert!(!r.needs_reset());
        assert_eq!(r.current_std(), 0.0);
    }

    #[test]
    fn in_range_fluctuation_tolerated_surge_detected() {
        // Threshold sized for the paper's LR range [7k, 13k].
        let mut r = ResetRule::for_rate_range(7_000.0, 13_000.0, 0.5, 10);
        // Benign fluctuation across the whole range: std ≈ 1.7k < 3k.
        for i in 0..50 {
            r.record_rate(if i % 2 == 0 { 8_000.0 } else { 12_000.0 });
        }
        assert!(!r.needs_reset(), "std {}", r.current_std());
        // Surge to 3x: the window now mixes 10k-ish and 30k samples.
        for _ in 0..5 {
            r.record_rate(30_000.0);
        }
        assert!(r.needs_reset(), "std {}", r.current_std());
    }

    #[test]
    fn needs_min_samples_before_firing() {
        let mut r = ResetRule::new(10.0, 10);
        r.record_rate(0.0);
        r.record_rate(10_000.0); // wildly variable, but only 2 of 5 required
        assert!(!r.needs_reset());
        for _ in 0..3 {
            r.record_rate(5_000.0);
        }
        assert!(r.needs_reset());
    }

    #[test]
    fn clear_prevents_immediate_retrigger() {
        let mut r = ResetRule::new(100.0, 8);
        for rate in [1_000.0, 9_000.0, 1_000.0, 9_000.0] {
            r.record_rate(rate);
        }
        assert!(r.needs_reset());
        r.clear();
        assert!(!r.needs_reset());
        // Post-surge steady state never refires.
        for _ in 0..20 {
            r.record_rate(9_000.0);
        }
        assert!(!r.needs_reset());
    }

    #[test]
    fn ignores_garbage_samples() {
        let mut r = ResetRule::new(100.0, 8);
        r.record_rate(f64::NAN);
        r.record_rate(-5.0);
        r.record_rate(f64::INFINITY);
        assert_eq!(r.mean_rate(), 0.0);
        assert!(!r.needs_reset());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_panics() {
        let _ = ResetRule::new(1.0, 2);
    }

    #[test]
    fn failures_accumulate_to_the_threshold_then_latch() {
        let mut r = ResetRule::new(1_000.0, 10);
        r.failure_threshold = Some(3);
        r.record_failure(1);
        assert!(!r.needs_reset());
        r.record_failure(0); // no-op
        r.record_failure(1);
        assert!(!r.needs_reset());
        r.record_failure(1);
        assert!(r.needs_reset(), "3 cumulative failures must latch");
        assert_eq!(r.failure_count(), 3);
        r.clear();
        assert!(!r.needs_reset());
        assert_eq!(r.failure_count(), 0);
        // A burst past the threshold fires in one step.
        r.record_failure(5);
        assert!(r.needs_reset());
    }

    #[test]
    fn failures_ignored_when_threshold_disabled() {
        let mut r = ResetRule::new(1_000.0, 10);
        assert_eq!(r.failure_threshold, None);
        r.record_failure(100);
        assert!(!r.needs_reset());
        assert_eq!(r.failure_count(), 100);
    }

    #[test]
    fn level_shift_detector_catches_a_2x_step() {
        // A clean 2x step has std/mean ratio at most 1/3 in the mixing
        // window — invisible to a 0.48 dispersion threshold — but the
        // level detector sees the mean leave the baseline.
        let mut r = ResetRule::relative(0.48, 12);
        for _ in 0..100 {
            r.record_rate(10_000.0);
        }
        assert!(!r.needs_reset());
        for _ in 0..12 {
            r.record_rate(20_000.0);
        }
        assert!(r.needs_reset(), "2x step must fire the level detector");
        r.clear();
        // The new level is accepted: steady 20k never refires.
        for _ in 0..100 {
            r.record_rate(20_000.0);
        }
        assert!(!r.needs_reset());
    }

    #[test]
    fn relative_rule_tracks_regime_changes() {
        // 48% relative threshold: benign fluctuation over [7k, 13k]
        // (std ≤ 3k ≈ 30% of the 10k mean) never fires…
        let mut r = ResetRule::relative(0.48, 12);
        for i in 0..40 {
            r.record_rate(if i % 2 == 0 { 7_000.0 } else { 13_000.0 });
        }
        assert!(!r.needs_reset(), "std {}", r.current_std());
        // …the surge to 2.5x fires…
        for _ in 0..6 {
            r.record_rate(25_000.0);
        }
        assert!(r.needs_reset());
        r.clear();
        // …and the post-surge regime's own (proportionally larger)
        // fluctuation does NOT re-fire: the bar moved with the mean.
        for i in 0..40 {
            r.record_rate(if i % 2 == 0 { 17_500.0 } else { 32_500.0 });
        }
        assert!(!r.needs_reset(), "std {}", r.current_std());
    }
}
