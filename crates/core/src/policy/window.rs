//! The metric-collection window policy (§5.4).
//!
//! Two rules govern how batches become one measurement:
//!
//! 1. **Skip-first**: the first batch completed after a configuration
//!    change is discarded — Spark ships the application jar to newly added
//!    executors and runs other initialization, inflating that batch's
//!    processing time.
//! 2. **Additive increase, capped**: while the system sits at an optimum,
//!    each newly completed batch grows the averaging window by one, making
//!    the paused controller increasingly noise-immune; a cap keeps it from
//!    going blind to genuine regime changes. When active optimization
//!    resumes, the window snaps back to its minimum so rounds stay cheap.

/// Governs how many batches feed one performance measurement.
#[derive(Debug, Clone)]
pub struct WindowPolicy {
    /// Batches to skip after each reconfiguration (paper: the first one).
    pub skip_after_change: usize,
    /// Minimum (and initial) averaging window, in batches.
    pub min_batches: usize,
    /// Cap on the grown window, in batches.
    pub max_batches: usize,
    /// Current averaging window.
    current: usize,
}

impl WindowPolicy {
    /// A policy skipping `skip_after_change` batches and averaging over a
    /// window that grows from `min_batches` to `max_batches`.
    pub fn new(skip_after_change: usize, min_batches: usize, max_batches: usize) -> Self {
        assert!(min_batches >= 1, "need at least one batch per measurement");
        assert!(max_batches >= min_batches, "cap below minimum");
        WindowPolicy {
            skip_after_change,
            min_batches,
            max_batches,
            current: min_batches,
        }
    }

    /// A practical default: skip 1, average 3, grow to 12.
    pub fn paper_default() -> Self {
        WindowPolicy::new(1, 3, 12)
    }

    /// Batches to discard right after a configuration change.
    pub fn skip_count(&self) -> usize {
        self.skip_after_change
    }

    /// The current averaging window size.
    pub fn window(&self) -> usize {
        self.current
    }

    /// Additive increase: one more batch per completed batch while at the
    /// optimum, up to the cap (§5.4). Returns the new window.
    pub fn grow(&mut self) -> usize {
        self.current = (self.current + 1).min(self.max_batches);
        self.current
    }

    /// Snap back to the minimum window (a new optimization round started).
    pub fn shrink_to_min(&mut self) {
        self.current = self.min_batches;
    }

    /// True when the window has reached its cap.
    pub fn at_cap(&self) -> bool {
        self.current == self.max_batches
    }
}

impl Default for WindowPolicy {
    fn default() -> Self {
        WindowPolicy::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_additively_to_cap() {
        let mut w = WindowPolicy::new(1, 3, 6);
        assert_eq!(w.window(), 3);
        assert_eq!(w.grow(), 4);
        assert_eq!(w.grow(), 5);
        assert_eq!(w.grow(), 6);
        assert_eq!(w.grow(), 6, "capped");
        assert!(w.at_cap());
    }

    #[test]
    fn shrinks_back_for_active_rounds() {
        let mut w = WindowPolicy::new(1, 3, 10);
        for _ in 0..20 {
            w.grow();
        }
        w.shrink_to_min();
        assert_eq!(w.window(), 3);
        assert!(!w.at_cap());
    }

    #[test]
    fn paper_default_skips_one_batch() {
        let w = WindowPolicy::paper_default();
        assert_eq!(w.skip_count(), 1);
        assert!(w.window() >= 1);
    }

    #[test]
    #[should_panic(expected = "cap below minimum")]
    fn inverted_bounds_panic() {
        let _ = WindowPolicy::new(1, 5, 3);
    }
}
