//! Systematic gain-sequence selection — the paper's §7 future work.
//!
//! "It is still a challenging task for end users, who are primarily domain
//! experts, to choose appropriate gain sequences. … It is also of our
//! future interest to design intelligent approaches to determine gain
//! sequences systematically based on some user-level knowledge such as
//! cluster capacity and throughput estimate."
//!
//! [`GainAdvisor`] implements that: it combines Spall's selection rules
//! with a short *pilot measurement* against the live system:
//!
//! * `c` ← the measured standard deviation of the objective at the
//!   starting configuration (Spall: "set c to approximately the standard
//!   deviation of the measurement noise"), floored so the perturbation
//!   stays above the quantization grid;
//! * `a` ← chosen so the expected first step is a target fraction of the
//!   scaled range, using a pilot gradient-magnitude estimate
//!   `|ĝ₀| ≈ σ_y / c₀` (the noise-dominated regime's lower bound);
//! * `A` ← 10% of the iteration budget the user expects.

use crate::objective::PenaltySchedule;
use crate::sa::GainSchedule;
use crate::space::ConfigSpace;
use crate::system::{BatchObservation, StreamingSystem};

/// Derives a [`GainSchedule`] from user-level knowledge plus a pilot run.
#[derive(Debug, Clone)]
pub struct GainAdvisor {
    /// The configuration space being tuned.
    pub space: ConfigSpace,
    /// Iterations the user expects to afford (sets `A`).
    pub expected_iterations: u64,
    /// Desired magnitude of the first step, as a fraction of the scaled
    /// range (default 0.25 — a quarter of the range, matching the
    /// controller's step clip).
    pub initial_step_fraction: f64,
    /// Batches measured in the pilot (default 6).
    pub pilot_batches: usize,
}

/// What the advisor measured and decided.
#[derive(Debug, Clone)]
pub struct GainAdvice {
    /// The recommended schedule.
    pub gains: GainSchedule,
    /// Pilot: mean objective at the starting configuration.
    pub pilot_mean: f64,
    /// Pilot: objective standard deviation (becomes `c`).
    pub pilot_std: f64,
}

impl GainAdvisor {
    /// An advisor with the defaults discussed in the module docs.
    pub fn new(space: ConfigSpace, expected_iterations: u64) -> Self {
        assert!(expected_iterations >= 1, "need an iteration budget");
        GainAdvisor {
            space,
            expected_iterations,
            initial_step_fraction: 0.25,
            pilot_batches: 6,
        }
    }

    /// Run the pilot against `sys` at the configuration `theta_scaled`
    /// and derive the schedule. The system is left running at that
    /// configuration.
    pub fn advise<S: StreamingSystem>(&self, sys: &mut S, theta_scaled: &[f64]) -> GainAdvice {
        assert_eq!(theta_scaled.len(), self.space.dim(), "dimension mismatch");
        let physical = self.space.to_physical(theta_scaled);
        sys.apply_config(&physical);
        // Skip one settling batch, then sample the objective per batch.
        let _ = sys.next_batch();
        let penalty = PenaltySchedule::paper_default();
        let samples: Vec<f64> = (0..self.pilot_batches.max(2))
            .map(|_| {
                let b: BatchObservation = sys.next_batch();
                penalty.objective(physical[0], b.processing_s)
            })
            .collect();
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();

        let range = self.space.scaled_hi - self.space.scaled_lo;
        // c: the measurement noise std, floored at 2% of the range so the
        // perturbation clears quantization, capped at a quarter range.
        let c = std.clamp(range * 0.02, range * 0.25);
        // A: 10% of the expected iterations (Spall / paper §5.6).
        let big_a = (self.expected_iterations as f64 * 0.1).max(1.0);
        // a: target initial step = fraction × range. In the noise-
        // dominated regime |ĝ₀| ≳ σ_y / (2 c₀); use that as the gradient
        // scale so the first steps neither crawl nor slam the walls.
        let alpha = 0.602;
        let grad_scale = (std / (2.0 * c)).max(0.25);
        let a = self.initial_step_fraction * range * (big_a + 1.0).powf(alpha) / grad_scale;

        let gains = GainSchedule {
            a,
            big_a,
            c,
            alpha,
            gamma: 0.101,
        };
        debug_assert!(gains.satisfies_convergence());
        GainAdvice {
            gains,
            pilot_mean: mean,
            pilot_std: std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nostop_simcore::SimRng;

    /// A system with controllable measurement noise.
    struct NoisySystem {
        interval: f64,
        noise: f64,
        rng: SimRng,
        t: f64,
    }

    impl StreamingSystem for NoisySystem {
        fn apply_config(&mut self, physical: &[f64]) {
            self.interval = physical[0];
        }
        fn next_batch(&mut self) -> BatchObservation {
            self.t += self.interval;
            let proc = (self.interval * 1.2 + self.rng.normal(0.0, self.noise)).max(0.01);
            BatchObservation {
                completed_at_s: self.t,
                interval_s: self.interval,
                processing_s: proc,
                scheduling_delay_s: 0.0,
                records: 1000,
                input_rate: 1000.0,
                num_executors: 8,
                queued_batches: 0,
                executor_failures: 0,
            }
        }
        fn now_s(&self) -> f64 {
            self.t
        }
    }

    fn noisy(noise: f64, seed: u64) -> NoisySystem {
        NoisySystem {
            interval: 10.0,
            noise,
            rng: SimRng::seed_from_u64(seed),
            t: 0.0,
        }
    }

    #[test]
    fn advice_always_satisfies_convergence_conditions() {
        for noise in [0.0, 0.5, 2.0, 20.0] {
            let advisor = GainAdvisor::new(ConfigSpace::paper_default(), 50);
            let advice = advisor.advise(&mut noisy(noise, 1), &[10.0, 10.0]);
            assert!(
                advice.gains.satisfies_convergence(),
                "noise {noise}: {:?}",
                advice.gains
            );
        }
    }

    #[test]
    fn c_tracks_measurement_noise() {
        let advisor = GainAdvisor::new(ConfigSpace::paper_default(), 50);
        let quiet = advisor.advise(&mut noisy(0.2, 2), &[10.0, 10.0]);
        let loud = advisor.advise(&mut noisy(3.0, 2), &[10.0, 10.0]);
        assert!(
            loud.gains.c > quiet.gains.c,
            "noisier system, bigger c: {} vs {}",
            loud.gains.c,
            quiet.gains.c
        );
        assert!(loud.pilot_std > quiet.pilot_std);
    }

    #[test]
    fn c_is_floored_above_quantization_for_noiseless_systems() {
        let advisor = GainAdvisor::new(ConfigSpace::paper_default(), 50);
        let advice = advisor.advise(&mut noisy(0.0, 3), &[10.0, 10.0]);
        // 2% of the 19-unit range.
        assert!(advice.gains.c >= 0.38 - 1e-12, "c {}", advice.gains.c);
    }

    #[test]
    fn big_a_is_ten_percent_of_budget() {
        let advisor = GainAdvisor::new(ConfigSpace::paper_default(), 200);
        let advice = advisor.advise(&mut noisy(1.0, 4), &[10.0, 10.0]);
        assert!((advice.gains.big_a - 20.0).abs() < 1e-12);
    }

    #[test]
    fn first_step_lands_near_the_target_fraction() {
        // With gains from the advisor, the very first SPSA step under the
        // pilot-estimated gradient magnitude should move ≈ a quarter of
        // the range.
        let advisor = GainAdvisor::new(ConfigSpace::paper_default(), 50);
        let mut sys = noisy(1.5, 5);
        let advice = advisor.advise(&mut sys, &[10.0, 10.0]);
        let g0 = advice.gains.a_k(0);
        let grad_scale = (advice.pilot_std / (2.0 * advice.gains.c)).max(0.25);
        let step = g0 * grad_scale;
        let range = 19.0;
        assert!(
            step > 0.1 * range && step < 0.5 * range,
            "first step {step} vs range {range}"
        );
    }

    #[test]
    fn advised_gains_actually_converge_on_the_system() {
        use crate::sa::{Spsa, SpsaParams};
        let advisor = GainAdvisor::new(ConfigSpace::paper_default(), 60);
        let mut sys = noisy(0.5, 6);
        let advice = advisor.advise(&mut sys, &[10.0, 10.0]);
        // Optimize a synthetic quadratic in scaled space with the advised
        // gains.
        let mut noise_rng = SimRng::seed_from_u64(9);
        let mut spsa = Spsa::new(
            SpsaParams {
                gains: advice.gains,
                lower: vec![1.0, 1.0],
                upper: vec![20.0, 20.0],
                max_step: Some(19.0 / 4.0),
            },
            vec![10.0, 10.0],
            SimRng::seed_from_u64(7),
        );
        // Curvature matched to the streaming objective the advisor
        // calibrates for: gradients of order 1 (seconds per scaled unit).
        let theta = spsa.run(80, |t| {
            ((t[0] - 6.0).powi(2) + (t[1] - 14.0).powi(2)) / 10.0 + noise_rng.normal(0.0, 0.5)
        });
        assert!((theta[0] - 6.0).abs() < 3.5, "{theta:?}");
        assert!((theta[1] - 14.0).abs() < 3.5, "{theta:?}");
    }
}
