//! Kiefer–Wolfowitz finite-difference stochastic approximation (FDSA).
//!
//! The classical alternative the paper contrasts SPSA against (§4.2.3):
//! the gradient is estimated one coordinate at a time,
//!
//! ```text
//! ĝ_k,i = (y(θ_k + c_k e_i) − y(θ_k − c_k e_i)) / (2 c_k)
//! ```
//!
//! which costs `2p` measurements per iteration for `p` parameters — versus
//! SPSA's 2. For online tuning every measurement means running the real
//! system under a perturbed configuration for a full observation window, so
//! this factor is exactly the "negligible overhead" argument of §4.2.1; the
//! ablation bench quantifies it.

use super::gains::GainSchedule;
use super::spsa::clamp;

/// FDSA construction parameters (same shape as SPSA's).
#[derive(Debug, Clone)]
pub struct FdsaParams {
    /// Gain sequences; the same convergence conditions apply.
    pub gains: GainSchedule,
    /// Per-dimension lower bounds.
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds.
    pub upper: Vec<f64>,
}

/// The FDSA optimizer state.
#[derive(Debug, Clone)]
pub struct Fdsa {
    params: FdsaParams,
    theta: Vec<f64>,
    k: u64,
    /// Objective evaluations consumed so far (for overhead comparisons).
    evaluations: u64,
}

impl Fdsa {
    /// Start at `theta_initial` (clamped into bounds).
    pub fn new(params: FdsaParams, theta_initial: Vec<f64>) -> Self {
        assert_eq!(params.lower.len(), params.upper.len(), "bound mismatch");
        assert_eq!(theta_initial.len(), params.lower.len(), "dim mismatch");
        assert!(
            params.gains.satisfies_convergence(),
            "gain schedule violates convergence conditions"
        );
        let theta = clamp(&theta_initial, &params.lower, &params.upper);
        Fdsa {
            params,
            theta,
            k: 0,
            evaluations: 0,
        }
    }

    /// Current iterate.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Completed iterations.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Objective evaluations consumed (2·dim per iteration).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Run one iteration: `2p` coordinate-wise measurements, then a step.
    pub fn step<F: FnMut(&[f64]) -> f64>(&mut self, mut objective: F) -> Vec<f64> {
        let a_k = self.params.gains.a_k(self.k);
        let c_k = self.params.gains.c_k(self.k);
        let dim = self.theta.len();
        let mut gradient = vec![0.0; dim];
        for i in 0..dim {
            let mut plus = self.theta.clone();
            plus[i] += c_k;
            let mut minus = self.theta.clone();
            minus[i] -= c_k;
            let plus = clamp(&plus, &self.params.lower, &self.params.upper);
            let minus = clamp(&minus, &self.params.lower, &self.params.upper);
            let y_plus = objective(&plus);
            let y_minus = objective(&minus);
            self.evaluations += 2;
            gradient[i] = (y_plus - y_minus) / (2.0 * c_k);
        }
        let stepped: Vec<f64> = self
            .theta
            .iter()
            .zip(&gradient)
            .map(|(t, g)| t - a_k * g)
            .collect();
        self.theta = clamp(&stepped, &self.params.lower, &self.params.upper);
        self.k += 1;
        self.theta.clone()
    }

    /// Run `n` iterations; returns the final iterate.
    pub fn run<F: FnMut(&[f64]) -> f64>(&mut self, n: u64, mut objective: F) -> Vec<f64> {
        for _ in 0..n {
            self.step(&mut objective);
        }
        self.theta.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(dim: usize) -> FdsaParams {
        FdsaParams {
            gains: GainSchedule {
                a: 2.0,
                big_a: 5.0,
                c: 0.5,
                alpha: 0.602,
                gamma: 0.101,
            },
            lower: vec![0.0; dim],
            upper: vec![20.0; dim],
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut fdsa = Fdsa::new(params(2), vec![15.0, 3.0]);
        let theta = fdsa.run(200, |t| (t[0] - 7.0).powi(2) + (t[1] - 12.0).powi(2));
        assert!((theta[0] - 7.0).abs() < 0.5, "{theta:?}");
        assert!((theta[1] - 12.0).abs() < 0.5, "{theta:?}");
    }

    #[test]
    fn costs_two_p_measurements_per_iteration() {
        for dim in [1usize, 2, 5] {
            let mut fdsa = Fdsa::new(params(dim), vec![10.0; dim]);
            fdsa.run(10, |t| t.iter().sum());
            assert_eq!(fdsa.evaluations(), 20 * dim as u64);
        }
    }

    #[test]
    fn respects_bounds() {
        let mut fdsa = Fdsa::new(params(1), vec![10.0]);
        let theta = fdsa.run(100, |t| (t[0] - 100.0).powi(2));
        assert!(theta[0] <= 20.0);
        assert!(theta[0] > 18.0, "driven to wall: {theta:?}");
    }

    #[test]
    #[should_panic(expected = "convergence")]
    fn invalid_gains_rejected() {
        let mut p = params(1);
        p.gains.alpha = 2.0;
        let _ = Fdsa::new(p, vec![1.0]);
    }
}
