//! SPSA gain sequences and their convergence conditions.
//!
//! The gains are (§4.2.3):
//!
//! ```text
//! a_k = a / (A + k + 1)^alpha,    c_k = c / (k + 1)^gamma
//! ```
//!
//! with Spall's practically-effective exponents `alpha = 0.602`,
//! `gamma = 0.101`. Convergence (Spall 2005, Thm 7.1 conditions B.1″)
//! requires, for gains of this power-law form:
//!
//! * `a, c > 0`, `A ≥ 0`;
//! * `a_k → 0` and `Σ a_k = ∞`  ⇔  `0 < alpha ≤ 1`;
//! * `c_k → 0`  ⇔  `gamma > 0`;
//! * `Σ (a_k / c_k)² < ∞`  ⇔  `2 (alpha − gamma) > 1`.
//!
//! [`GainSchedule::check_conditions`] verifies all of these symbolically —
//! this is the machine-checkable half of the paper's §4.2.4 argument.

/// The `(a, A, c, alpha, gamma)` gain parameterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainSchedule {
    /// Numerator of the step-size sequence `a_k`.
    pub a: f64,
    /// Stability constant `A` (paper recommends ≤ 10% of expected
    /// iterations; §5.6 sets `A = 1`).
    pub big_a: f64,
    /// Numerator of the perturbation-size sequence `c_k` (≈ the std-dev of
    /// objective measurements, §5.6).
    pub c: f64,
    /// Step-size decay exponent (Spall's practical value: 0.602).
    pub alpha: f64,
    /// Perturbation decay exponent (Spall's practical value: 0.101).
    pub gamma: f64,
}

impl GainSchedule {
    /// The paper's experimental setting: `A = 1, a = 10, c = 2` with the
    /// standard exponents (§6.2.1).
    pub fn paper_default() -> Self {
        GainSchedule {
            a: 10.0,
            big_a: 1.0,
            c: 2.0,
            alpha: 0.602,
            gamma: 0.101,
        }
    }

    /// Spall's §5.6-style guideline: `a` ≈ half the (scaled) configuration
    /// range, `c` ≈ the measurement noise std-dev, `A` ≈ 10% of the
    /// expected iteration count.
    pub fn guideline(scaled_range: f64, measurement_std: f64, expected_iters: f64) -> Self {
        GainSchedule {
            a: (scaled_range / 2.0).max(f64::MIN_POSITIVE),
            big_a: (expected_iters * 0.1).max(0.0),
            c: measurement_std.max(1e-6),
            alpha: 0.602,
            gamma: 0.101,
        }
    }

    /// Step size at iteration `k` (0-based): `a / (A + k + 1)^alpha`.
    pub fn a_k(&self, k: u64) -> f64 {
        self.a / (self.big_a + k as f64 + 1.0).powf(self.alpha)
    }

    /// Perturbation size at iteration `k` (0-based): `c / (k + 1)^gamma`.
    pub fn c_k(&self, k: u64) -> f64 {
        self.c / (k as f64 + 1.0).powf(self.gamma)
    }

    /// Verify the convergence conditions symbolically.
    pub fn check_conditions(&self) -> ConditionReport {
        let positive = self.a > 0.0 && self.c > 0.0 && self.big_a >= 0.0;
        let ak_to_zero = self.alpha > 0.0;
        let ck_to_zero = self.gamma > 0.0;
        let sum_ak_diverges = self.alpha > 0.0 && self.alpha <= 1.0;
        let ratio_sq_summable = 2.0 * (self.alpha - self.gamma) > 1.0;
        ConditionReport {
            positive,
            ak_to_zero,
            ck_to_zero,
            sum_ak_diverges,
            ratio_sq_summable,
        }
    }

    /// True when every convergence condition holds.
    pub fn satisfies_convergence(&self) -> bool {
        self.check_conditions().all()
    }
}

impl Default for GainSchedule {
    fn default() -> Self {
        GainSchedule::paper_default()
    }
}

/// Per-condition verdicts from [`GainSchedule::check_conditions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionReport {
    /// `a, c > 0` and `A ≥ 0`.
    pub positive: bool,
    /// `a_k → 0` (needs `alpha > 0`).
    pub ak_to_zero: bool,
    /// `c_k → 0` (needs `gamma > 0`).
    pub ck_to_zero: bool,
    /// `Σ a_k = ∞` (needs `alpha ≤ 1`).
    pub sum_ak_diverges: bool,
    /// `Σ (a_k/c_k)² < ∞` (needs `2(alpha − gamma) > 1`).
    pub ratio_sq_summable: bool,
}

impl ConditionReport {
    /// All conditions hold.
    pub fn all(&self) -> bool {
        self.positive
            && self.ak_to_zero
            && self.ck_to_zero
            && self.sum_ak_diverges
            && self.ratio_sq_summable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_satisfies_all_conditions() {
        let g = GainSchedule::paper_default();
        let r = g.check_conditions();
        assert!(r.all(), "{r:?}");
        // 2(0.602 - 0.101) = 1.002 > 1 — just barely, as Spall designed.
        assert!(2.0 * (g.alpha - g.gamma) > 1.0);
    }

    #[test]
    fn gains_match_formula() {
        let g = GainSchedule::paper_default();
        // k = 0: a_0 = 10 / (1 + 0 + 1)^0.602, c_0 = 2 / 1^0.101 = 2.
        assert!((g.a_k(0) - 10.0 / 2.0_f64.powf(0.602)).abs() < 1e-12);
        assert!((g.c_k(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gains_decay_monotonically_to_zero() {
        let g = GainSchedule::paper_default();
        let mut prev_a = f64::INFINITY;
        let mut prev_c = f64::INFINITY;
        for k in 0..1000 {
            let (a, c) = (g.a_k(k), g.c_k(k));
            assert!(a < prev_a && c < prev_c);
            assert!(a > 0.0 && c > 0.0);
            prev_a = a;
            prev_c = c;
        }
        assert!(g.a_k(1_000_000) < 1e-2);
    }

    #[test]
    fn numeric_partial_sums_agree_with_symbolic_verdicts() {
        let g = GainSchedule::paper_default();
        // Σ a_k grows without visible bound (log divergence is slow but
        // strictly increasing); Σ (a_k/c_k)^2 visibly converges.
        let sum_a: f64 = (0..100_000).map(|k| g.a_k(k)).sum();
        let sum_a_more: f64 = (0..200_000).map(|k| g.a_k(k)).sum();
        assert!(sum_a_more > sum_a + 100.0, "Σ a_k keeps growing");

        let tail_ratio: f64 = (100_000..200_000)
            .map(|k| (g.a_k(k) / g.c_k(k)).powi(2))
            .sum();
        let head_ratio: f64 = (0..100_000).map(|k| (g.a_k(k) / g.c_k(k)).powi(2)).sum();
        assert!(tail_ratio < head_ratio * 0.1, "Σ (a_k/c_k)² tail vanishes");
    }

    #[test]
    fn bad_schedules_are_rejected() {
        // gamma too large: 2(alpha - gamma) <= 1.
        let bad = GainSchedule {
            gamma: 0.2,
            ..GainSchedule::paper_default()
        };
        assert!(!bad.satisfies_convergence());
        assert!(!bad.check_conditions().ratio_sq_summable);

        // alpha > 1: steps summable, premature convergence.
        let bad = GainSchedule {
            alpha: 1.5,
            ..GainSchedule::paper_default()
        };
        assert!(!bad.check_conditions().sum_ak_diverges);

        // non-positive numerators.
        let bad = GainSchedule {
            a: 0.0,
            ..GainSchedule::paper_default()
        };
        assert!(!bad.check_conditions().positive);
    }

    #[test]
    fn guideline_produces_valid_schedule() {
        let g = GainSchedule::guideline(19.0, 1.5, 50.0);
        assert!(g.satisfies_convergence());
        assert!((g.a - 9.5).abs() < 1e-12);
        assert!((g.c - 1.5).abs() < 1e-12);
        assert!((g.big_a - 5.0).abs() < 1e-12);
    }

    #[test]
    fn big_a_damps_early_steps() {
        let small_a = GainSchedule {
            big_a: 0.0,
            ..GainSchedule::paper_default()
        };
        let large_a = GainSchedule {
            big_a: 100.0,
            ..GainSchedule::paper_default()
        };
        assert!(large_a.a_k(0) < small_a.a_k(0));
        // Asymptotically they agree.
        let ratio = large_a.a_k(1_000_000) / small_a.a_k(1_000_000);
        assert!((ratio - 1.0).abs() < 1e-3);
    }
}
