//! Generic stochastic-approximation optimizers.
//!
//! The paper builds NoStop on SPSA (Spall 1998): each iteration perturbs
//! *all* parameters simultaneously by `± c_k Δ_k` and estimates the gradient
//! from just **two** noisy objective measurements, regardless of dimension —
//! the property that makes online tuning affordable (§4.2.1). The classic
//! Kiefer–Wolfowitz finite-difference form ([`Fdsa`]), which needs `2p`
//! measurements for `p` parameters, is provided for the ablation bench.

pub mod advisor;
pub mod fdsa;
pub mod gains;
pub mod perturb;
pub mod second_order;
pub mod spsa;

pub use advisor::{GainAdvice, GainAdvisor};
pub use fdsa::Fdsa;
pub use gains::{ConditionReport, GainSchedule};
pub use perturb::{BernoulliPerturbation, Perturbation, SegmentedUniformPerturbation};
pub use second_order::{AdaptiveSpsa, AdaptiveSpsaParams};
pub use spsa::{Proposal, Spsa, SpsaParams, StepInfo};
