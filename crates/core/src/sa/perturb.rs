//! Perturbation distributions for simultaneous perturbation.
//!
//! SPSA's gradient estimate divides by the perturbation components
//! `Δ_ki`, so the distribution must be symmetric around zero, bounded, and
//! have **finite inverse moments** `E|Δ_ki⁻¹|` (§4.2.3). The symmetric
//! Bernoulli ±1 distribution — what the paper uses and Spall recommends —
//! satisfies this trivially. A segmented-uniform alternative is provided
//! for the ablation bench. Gaussian and plain-uniform perturbations are
//! famously *invalid* (mass near zero ⇒ unbounded inverse moments); the
//! type system here simply doesn't offer them.

use nostop_simcore::SimRng;

/// A valid SPSA perturbation distribution.
pub trait Perturbation {
    /// Draw one perturbation component. Must be symmetric, bounded away
    /// from zero, and independent across calls.
    fn draw(&self, rng: &mut SimRng) -> f64;

    /// Fill a `dim`-component perturbation vector.
    fn draw_vector(&self, dim: usize, rng: &mut SimRng) -> Vec<f64> {
        (0..dim).map(|_| self.draw(rng)).collect()
    }
}

/// The symmetric Bernoulli ±1 distribution (probability ½ each) — the
/// paper's choice (§5.3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BernoulliPerturbation;

impl Perturbation for BernoulliPerturbation {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        rng.bernoulli_pm1()
    }
}

/// A segmented uniform distribution: magnitude uniform in `[lo, hi]` with a
/// random sign. Valid for SPSA because the support excludes a neighbourhood
/// of zero (`lo > 0`).
#[derive(Debug, Clone, Copy)]
pub struct SegmentedUniformPerturbation {
    lo: f64,
    hi: f64,
}

impl SegmentedUniformPerturbation {
    /// Magnitude range `[lo, hi]`, requiring `0 < lo ≤ hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
        SegmentedUniformPerturbation { lo, hi }
    }
}

impl Perturbation for SegmentedUniformPerturbation {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        let mag = rng.uniform(self.lo, self.hi + f64::EPSILON);
        mag * rng.bernoulli_pm1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_draws_only_pm_one() {
        let mut rng = SimRng::seed_from_u64(1);
        let p = BernoulliPerturbation;
        let v = p.draw_vector(10_000, &mut rng);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn bernoulli_components_are_independent() {
        // Correlation between consecutive components of a long vector
        // should vanish.
        let mut rng = SimRng::seed_from_u64(2);
        let v = BernoulliPerturbation.draw_vector(50_000, &mut rng);
        let corr: f64 = v.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (v.len() - 1) as f64;
        assert!(corr.abs() < 0.05, "corr {corr}");
    }

    #[test]
    fn segmented_uniform_stays_off_zero_and_symmetric() {
        let mut rng = SimRng::seed_from_u64(3);
        let p = SegmentedUniformPerturbation::new(0.5, 1.5);
        let mut pos = 0;
        for _ in 0..10_000 {
            let x = p.draw(&mut rng);
            assert!(x.abs() >= 0.5 && x.abs() <= 1.5 + 1e-9, "x {x}");
            if x > 0.0 {
                pos += 1;
            }
        }
        assert!((4_500..=5_500).contains(&pos), "pos {pos}");
    }

    #[test]
    fn inverse_moment_is_finite_in_practice() {
        // E|Δ⁻¹| estimated over many draws must be bounded (≤ 1/lo).
        let mut rng = SimRng::seed_from_u64(4);
        let p = SegmentedUniformPerturbation::new(0.5, 1.5);
        let inv_mean: f64 = (0..20_000)
            .map(|_| 1.0 / p.draw(&mut rng).abs())
            .sum::<f64>()
            / 20_000.0;
        assert!(inv_mean <= 2.0 + 1e-9, "inv mean {inv_mean}");
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn zero_touching_support_is_rejected() {
        let _ = SegmentedUniformPerturbation::new(0.0, 1.0);
    }
}
