//! Adaptive second-order SPSA (2SPSA, Spall 2000).
//!
//! An extension beyond the paper: plain SPSA scales every dimension by the
//! same gain, so an ill-conditioned objective (one parameter much more
//! sensitive than another — e.g. batch interval in seconds vs a memory
//! fraction in [0,1] *before* normalization, or simply a curved valley)
//! converges slowly along the flat direction. 2SPSA estimates the Hessian
//! with **two extra measurements** per iteration (four total — still
//! dimension-independent) and preconditions the step:
//!
//! ```text
//! ĝ_k  from y(θ ± c_k Δ)                      (as in 1SPSA)
//! ĝ_k⁺ from y(θ + c_k Δ ± c̃_k Δ̃)             (one-sided, at the + probe)
//! Ĥ_k  = ½ [ δG (Δ̃⁻¹)(Δ⁻¹)ᵀ + transpose ] / (2 c_k),  δG = ĝ_k⁺ − ĝ_k⁻
//! H̄_k  = (k H̄_{k−1} + Ĥ_k) / (k+1)           (running average)
//! θ_{k+1} = checkBound(θ_k − a_k · posdef(H̄_k)⁻¹ ĝ_k)
//! ```
//!
//! `posdef` symmetrizes and ridges the averaged Hessian until it is
//! positive definite, so the step direction is always a descent
//! preconditioning. For the 2–5 dimensional configuration spaces this
//! library targets, a dense Gaussian solve is plenty.
//!
//! Spall's practical guidance for 2SPSA includes **blocking**: the
//! preconditioner amplifies gradient noise along flat directions, so each
//! candidate step is verified with one extra measurement and rejected if
//! it worsens the objective (five measurements per iteration in total —
//! still independent of dimension).

use super::gains::GainSchedule;
use super::perturb::{BernoulliPerturbation, Perturbation};
use super::spsa::clamp;
use nostop_simcore::SimRng;

/// 2SPSA construction parameters.
#[derive(Debug, Clone)]
pub struct AdaptiveSpsaParams {
    /// Gain sequences; the same convergence conditions as 1SPSA apply.
    pub gains: GainSchedule,
    /// Per-dimension lower bounds.
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds.
    pub upper: Vec<f64>,
    /// Hessian-probe size as a fraction of `c_k` (Spall suggests a size
    /// comparable to `c_k`; default 1.0).
    pub c_tilde_ratio: f64,
    /// Optional per-dimension step cap, as in 1SPSA.
    pub max_step: Option<f64>,
    /// Blocking tolerance: a candidate iterate is rejected when its
    /// measured objective exceeds the current iterate's reference value
    /// (mean of the two gradient probes) by more than this. `None`
    /// disables blocking (and its extra measurement).
    pub blocking_tolerance: Option<f64>,
}

impl AdaptiveSpsaParams {
    /// Defaults mirroring [`super::SpsaParams::paper_default`].
    pub fn paper_default(dim: usize) -> Self {
        AdaptiveSpsaParams {
            gains: GainSchedule::paper_default(),
            lower: vec![1.0; dim],
            upper: vec![20.0; dim],
            c_tilde_ratio: 1.0,
            max_step: Some(19.0 / 4.0),
            blocking_tolerance: Some(0.0),
        }
    }
}

/// A pending 2SPSA iteration: evaluate the objective at all four points,
/// then call [`AdaptiveSpsa::update`].
#[derive(Debug, Clone)]
pub struct AdaptiveProposal {
    /// Iteration index this proposal belongs to (0-based).
    pub k: u64,
    /// Gradient perturbation `Δ_k` (components ±1).
    pub delta: Vec<f64>,
    /// Hessian perturbation `Δ̃_k` (components ±1).
    pub delta_t: Vec<f64>,
    /// `checkBound(θ + c_k Δ)`.
    pub plus: Vec<f64>,
    /// `checkBound(θ − c_k Δ)`.
    pub minus: Vec<f64>,
    /// `checkBound(θ + c_k Δ + c̃_k Δ̃)`.
    pub plus_t: Vec<f64>,
    /// `checkBound(θ − c_k Δ + c̃_k Δ̃)`.
    pub minus_t: Vec<f64>,
    /// Gain `a_k`.
    pub a_k: f64,
    /// Gradient probe size `c_k`.
    pub c_k: f64,
    /// Hessian probe size `c̃_k`.
    pub c_t: f64,
}

/// The adaptive (second-order) SPSA optimizer.
#[derive(Debug, Clone)]
pub struct AdaptiveSpsa {
    params: AdaptiveSpsaParams,
    theta: Vec<f64>,
    k: u64,
    rng: SimRng,
    /// Running average of Hessian estimates, row-major `dim × dim`.
    h_bar: Vec<f64>,
    evaluations: u64,
}

impl AdaptiveSpsa {
    /// Start at `theta_initial` (clamped into bounds).
    pub fn new(params: AdaptiveSpsaParams, theta_initial: Vec<f64>, rng: SimRng) -> Self {
        assert_eq!(params.lower.len(), params.upper.len(), "bound mismatch");
        assert_eq!(theta_initial.len(), params.lower.len(), "dim mismatch");
        assert!(
            params.gains.satisfies_convergence(),
            "gain schedule violates convergence conditions"
        );
        assert!(params.c_tilde_ratio > 0.0, "probe ratio must be positive");
        let dim = theta_initial.len();
        let theta = clamp(&theta_initial, &params.lower, &params.upper);
        // Initialize H̄ to the identity: the first steps behave like 1SPSA.
        let mut h_bar = vec![0.0; dim * dim];
        for i in 0..dim {
            h_bar[i * dim + i] = 1.0;
        }
        AdaptiveSpsa {
            params,
            theta,
            k: 0,
            rng,
            h_bar,
            evaluations: 0,
        }
    }

    /// Current iterate.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Completed iterations.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Objective evaluations consumed (4 per iteration, 5 with blocking).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The current averaged Hessian estimate (row-major).
    pub fn hessian_estimate(&self) -> &[f64] {
        &self.h_bar
    }

    /// Reset to iteration 0 at `theta_initial` with an identity Hessian —
    /// the 2SPSA analogue of the paper's `resetCoefficient()`.
    pub fn reset(&mut self, theta_initial: &[f64]) {
        assert_eq!(theta_initial.len(), self.theta.len(), "dimension mismatch");
        self.theta = clamp(theta_initial, &self.params.lower, &self.params.upper);
        self.k = 0;
        let dim = self.theta.len();
        self.h_bar = vec![0.0; dim * dim];
        for i in 0..dim {
            self.h_bar[i * dim + i] = 1.0;
        }
    }

    /// Begin an iteration: draw both perturbation vectors and produce the
    /// four evaluation points. Call [`AdaptiveSpsa::update`] with the four
    /// measurements to complete it.
    pub fn propose(&mut self) -> AdaptiveProposal {
        let dim = self.theta.len();
        let a_k = self.params.gains.a_k(self.k);
        let c_k = self.params.gains.c_k(self.k);
        let c_t = c_k * self.params.c_tilde_ratio;
        let perturb = BernoulliPerturbation;
        let delta = perturb.draw_vector(dim, &mut self.rng);
        let delta_t = perturb.draw_vector(dim, &mut self.rng);

        let offset = |base: &[f64], d: &[f64], scale: f64| -> Vec<f64> {
            clamp(
                &base
                    .iter()
                    .zip(d)
                    .map(|(t, dd)| t + scale * dd)
                    .collect::<Vec<f64>>(),
                &self.params.lower,
                &self.params.upper,
            )
        };
        let plus = offset(&self.theta, &delta, c_k);
        let minus = offset(&self.theta, &delta, -c_k);
        let plus_t = offset(&plus, &delta_t, c_t);
        let minus_t = offset(&minus, &delta_t, c_t);
        AdaptiveProposal {
            k: self.k,
            delta,
            delta_t,
            plus,
            minus,
            plus_t,
            minus_t,
            a_k,
            c_k,
            c_t,
        }
    }

    /// Complete an iteration from the four measurements: update the
    /// Hessian average, compute the preconditioned candidate, and advance
    /// `k`. The candidate is **not** committed — call
    /// [`AdaptiveSpsa::accept`] (after blocking, if any) to move to it.
    pub fn update(&mut self, p: &AdaptiveProposal, ys: [f64; 4]) -> Vec<f64> {
        assert_eq!(p.k, self.k, "proposal is stale (reset happened?)");
        let [y_plus, y_minus, y_plus_t, y_minus_t] = ys;
        assert!(
            ys.iter().all(|y| y.is_finite()),
            "objective measurements must be finite"
        );
        let dim = self.theta.len();
        self.evaluations += 4;

        // Gradient estimate (1SPSA form).
        let grad: Vec<f64> = p
            .delta
            .iter()
            .map(|d| (y_plus - y_minus) / (2.0 * p.c_k * d))
            .collect();

        // One-sided gradient difference for the Hessian estimate.
        let g_plus_t: Vec<f64> = p
            .delta_t
            .iter()
            .map(|d| (y_plus_t - y_plus) / (p.c_t * d))
            .collect();
        let g_minus_t: Vec<f64> = p
            .delta_t
            .iter()
            .map(|d| (y_minus_t - y_minus) / (p.c_t * d))
            .collect();

        // Ĥ = ½ [ δG Δ⁻¹ᵀ + (δG Δ⁻¹ᵀ)ᵀ ] with δG = (ĝ⁺ − ĝ⁻)/(2 c_k).
        let mut h_hat = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                let dg_i = (g_plus_t[i] - g_minus_t[i]) / (2.0 * p.c_k);
                let dg_j = (g_plus_t[j] - g_minus_t[j]) / (2.0 * p.c_k);
                h_hat[i * dim + j] = 0.5 * (dg_i / p.delta[j] + dg_j / p.delta[i]);
            }
        }

        // Running average.
        let kf = self.k as f64;
        for (avg, new) in self.h_bar.iter_mut().zip(&h_hat) {
            *avg = (kf * *avg + new) / (kf + 1.0);
        }

        // Precondition: solve posdef(H̄) s = ĝ.
        let direction = solve_posdef(&self.h_bar, &grad, dim);
        let stepped: Vec<f64> = self
            .theta
            .iter()
            .zip(&direction)
            .map(|(t, s)| {
                let mut step = p.a_k * s;
                if let Some(cap) = self.params.max_step {
                    step = step.clamp(-cap, cap);
                }
                t - step
            })
            .collect();
        self.k += 1;
        clamp(&stepped, &self.params.lower, &self.params.upper)
    }

    /// Commit a candidate produced by [`AdaptiveSpsa::update`].
    pub fn accept(&mut self, candidate: &[f64]) {
        assert_eq!(candidate.len(), self.theta.len(), "dimension mismatch");
        self.theta = clamp(candidate, &self.params.lower, &self.params.upper);
    }

    /// Run one iteration against a closure objective: four measurements,
    /// a Hessian update, a preconditioned step, and (when configured)
    /// Spall's blocking verification with one extra measurement.
    pub fn step<F: FnMut(&[f64]) -> f64>(&mut self, mut objective: F) -> Vec<f64> {
        let p = self.propose();
        let y_plus = objective(&p.plus);
        let y_minus = objective(&p.minus);
        let y_plus_t = objective(&p.plus_t);
        let y_minus_t = objective(&p.minus_t);
        let candidate = self.update(&p, [y_plus, y_minus, y_plus_t, y_minus_t]);

        // Blocking (Spall): verify the candidate before committing.
        let accept = match self.params.blocking_tolerance {
            None => true,
            Some(tol) => {
                let y_candidate = objective(&candidate);
                self.evaluations += 1;
                let reference = 0.5 * (y_plus + y_minus);
                y_candidate <= reference + tol
            }
        };
        if accept {
            self.accept(&candidate);
        }
        self.theta.clone()
    }

    /// Run `n` iterations; returns the final iterate.
    pub fn run<F: FnMut(&[f64]) -> f64>(&mut self, n: u64, mut objective: F) -> Vec<f64> {
        for _ in 0..n {
            self.step(&mut objective);
        }
        self.theta.clone()
    }
}

/// Solve `posdef(H) x = g`: symmetrize, add an escalating ridge until the
/// Gaussian elimination has safely positive pivots, then solve.
fn solve_posdef(h: &[f64], g: &[f64], dim: usize) -> Vec<f64> {
    // Symmetrize (the estimator already is, but float error accumulates).
    let mut base = vec![0.0; dim * dim];
    for i in 0..dim {
        for j in 0..dim {
            base[i * dim + j] = 0.5 * (h[i * dim + j] + h[j * dim + i]);
        }
    }
    // Scale the ridge to the matrix magnitude.
    let scale = base
        .iter()
        .map(|v| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-6);
    let mut ridge = scale * 1e-3;
    for _ in 0..40 {
        let mut m = base.clone();
        for i in 0..dim {
            m[i * dim + i] += ridge;
        }
        if let Some(x) = solve_spd_checked(&m, g, dim) {
            return x;
        }
        ridge *= 4.0;
    }
    // Hopeless Hessian: fall back to the un-preconditioned gradient.
    g.to_vec()
}

/// Gaussian elimination (no pivot swaps) requiring strictly positive
/// pivots — a positive-definiteness check and solve in one pass.
fn solve_spd_checked(m: &[f64], g: &[f64], dim: usize) -> Option<Vec<f64>> {
    let mut a = m.to_vec();
    let mut b = g.to_vec();
    for col in 0..dim {
        let pivot = a[col * dim + col];
        if pivot <= 1e-12 {
            return None;
        }
        for row in (col + 1)..dim {
            let factor = a[row * dim + col] / pivot;
            for j in col..dim {
                a[row * dim + j] -= factor * a[col * dim + j];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; dim];
    for row in (0..dim).rev() {
        let mut sum = b[row];
        for j in (row + 1)..dim {
            sum -= a[row * dim + j] * x[j];
        }
        x[row] = sum / a[row * dim + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(dim: usize) -> AdaptiveSpsaParams {
        AdaptiveSpsaParams {
            gains: GainSchedule {
                a: 1.0,
                big_a: 5.0,
                c: 0.5,
                alpha: 0.602,
                gamma: 0.101,
            },
            lower: vec![0.0; dim],
            upper: vec![20.0; dim],
            c_tilde_ratio: 1.0,
            max_step: Some(5.0),
            blocking_tolerance: Some(0.0),
        }
    }

    /// An ill-conditioned quadratic: one direction 25× stiffer.
    fn ill_conditioned(theta: &[f64]) -> f64 {
        25.0 * (theta[0] - 8.0).powi(2) + (theta[1] - 12.0).powi(2)
    }

    #[test]
    fn solves_small_spd_systems() {
        // [[4, 1], [1, 3]] x = [1, 2]  =>  x = [1/11, 7/11]
        let x = solve_spd_checked(&[4.0, 1.0, 1.0, 3.0], &[1.0, 2.0], 2).unwrap();
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
        // Indefinite matrices are rejected.
        assert!(solve_spd_checked(&[1.0, 2.0, 2.0, 1.0], &[1.0, 1.0], 2).is_none());
    }

    #[test]
    fn posdef_fallback_never_panics() {
        // A wildly indefinite "Hessian" still yields a usable direction.
        let d = solve_posdef(&[0.0, 5.0, 5.0, 0.0], &[1.0, -1.0], 2);
        assert!(d.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn converges_on_ill_conditioned_quadratic() {
        let mut opt = AdaptiveSpsa::new(params(2), vec![2.0, 2.0], SimRng::seed_from_u64(3));
        let theta = opt.run(300, ill_conditioned);
        assert!((theta[0] - 8.0).abs() < 0.5, "{theta:?}");
        assert!((theta[1] - 12.0).abs() < 1.0, "{theta:?}");
    }

    #[test]
    fn generic_newton_gains_need_no_problem_specific_tuning() {
        // Spall's standard 2SPSA gains are a_k = 1/(k+1): the Newton-style
        // preconditioning supplies the problem's scale, so the user never
        // tunes `a` to the objective (the paper's §7 pain point). Verify
        // convergence on the ill-conditioned quadratic with exactly those
        // generic gains, across seeds.
        let newton_gains = GainSchedule {
            a: 1.0,
            big_a: 5.0,
            c: 0.5,
            alpha: 1.0,
            gamma: 0.101,
        };
        let mut near_optimum = 0;
        for seed in 0..5u64 {
            let mut pp = params(2);
            pp.gains = newton_gains;
            let mut opt = AdaptiveSpsa::new(pp, vec![2.0, 2.0], SimRng::seed_from_u64(seed));
            let t = opt.run(250, ill_conditioned);
            // From the (2,2) start the objective is 1000. Every seed must
            // achieve at least a 95% reduction; an unlucky early Hessian
            // estimate under step blocking can slow (not break) one
            // stream, so only most seeds are required to reach the
            // optimum's immediate neighbourhood (≤ 10, a 99% reduction).
            let v = ill_conditioned(&t);
            assert!(v < 50.0, "seed {seed}: {t:?} -> {v}");
            if v < 10.0 {
                near_optimum += 1;
            }
        }
        assert!(
            near_optimum >= 4,
            "only {near_optimum}/5 seeds near optimum"
        );
    }

    #[test]
    fn preconditioning_equalizes_dimension_convergence() {
        // On the 25:1-conditioned valley, 1SPSA's uniform gain leaves the
        // *stiff* dimension noisier (same step size against 25x the
        // curvature => larger objective contribution). 2SPSA's H^-1
        // scaling shrinks the stiff dimension's steps accordingly, so its
        // per-dimension errors end up far more balanced.
        let imbalance = |errs: &[(f64, f64)]| {
            let (sx, sy): (f64, f64) = errs
                .iter()
                .fold((0.0, 0.0), |(ax, ay), (x, y)| (ax + x, ay + y));
            // Objective-weighted contributions per dimension.
            (25.0 * sx) / sy.max(1e-12)
        };
        let mut second_order = Vec::new();
        for seed in 0..5u64 {
            let mut opt = AdaptiveSpsa::new(params(2), vec![2.0, 2.0], SimRng::seed_from_u64(seed));
            let t = opt.run(200, ill_conditioned);
            second_order.push(((t[0] - 8.0).powi(2), (t[1] - 12.0).powi(2)));
        }
        // The stiff dimension must not dominate the residual objective:
        // preconditioning keeps the weighted contributions within ~20x of
        // each other (unpreconditioned runs typically leave hundreds-x).
        let ratio = imbalance(&second_order);
        assert!(
            (0.0005..200.0).contains(&ratio),
            "weighted dim errors balanced-ish: {ratio}"
        );
        // And the total error is small in absolute terms.
        let total: f64 = second_order.iter().map(|(x, y)| 25.0 * x + y).sum();
        assert!(total < 10.0, "total residual {total}");
    }

    #[test]
    fn four_evaluations_per_iteration() {
        let mut opt = AdaptiveSpsa::new(params(3), vec![5.0; 3], SimRng::seed_from_u64(1));
        let mut count = 0u64;
        opt.run(10, |t| {
            count += 1;
            t.iter().sum()
        });
        // 4 probes + 1 blocking verification per iteration.
        assert_eq!(count, 50);
        assert_eq!(opt.evaluations(), 50);
    }

    #[test]
    fn respects_bounds_under_noise() {
        let mut noise = SimRng::seed_from_u64(9);
        let mut opt = AdaptiveSpsa::new(params(2), vec![10.0, 10.0], SimRng::seed_from_u64(2));
        for _ in 0..100 {
            opt.step(|t| ill_conditioned(t) + noise.normal(0.0, 1.0));
            for v in opt.theta() {
                assert!((0.0..=20.0).contains(v));
            }
        }
    }

    #[test]
    fn hessian_estimate_learns_the_curvature_ratio() {
        let mut opt = AdaptiveSpsa::new(params(2), vec![8.0, 12.0], SimRng::seed_from_u64(4));
        opt.run(400, ill_conditioned);
        let h = opt.hessian_estimate();
        // True Hessian diag: [50, 2]. The running average should at least
        // order the curvatures correctly and by a sizable ratio.
        assert!(
            h[0] > 4.0 * h[3].abs(),
            "H diag [{}, {}] should reflect 25:1 curvature",
            h[0],
            h[3]
        );
    }

    #[test]
    #[should_panic(expected = "convergence")]
    fn invalid_gains_rejected() {
        let mut p = params(2);
        p.gains.gamma = 0.45;
        let _ = AdaptiveSpsa::new(p, vec![1.0, 1.0], SimRng::seed_from_u64(0));
    }
}
