//! The SPSA optimizer.
//!
//! One iteration (§5.3, Algorithm 1):
//!
//! 1. draw a Bernoulli-±1 perturbation vector `Δ_k`;
//! 2. measure the noisy objective at `θ_k + c_k Δ_k` and `θ_k − c_k Δ_k`
//!    (bound-clamped — the paper's `checkBound`);
//! 3. form the simultaneous-perturbation gradient estimate
//!    `ĝ_k,i = (y⁺ − y⁻) / (2 c_k Δ_k,i)`;
//! 4. step `θ_{k+1} = checkBound(θ_k − a_k ĝ_k)`.
//!
//! The optimizer exposes both a closure-driven [`Spsa::step`] (for tests and
//! offline use) and a split-phase [`Spsa::propose`]/[`Spsa::update`] pair,
//! which is what the live controller uses: between `propose` and `update`
//! the real system runs for a measurement window under each perturbed
//! configuration.

use super::gains::GainSchedule;
use super::perturb::{BernoulliPerturbation, Perturbation};
use nostop_simcore::SimRng;

/// SPSA construction parameters.
#[derive(Debug, Clone)]
pub struct SpsaParams {
    /// Gain sequences; must satisfy the convergence conditions.
    pub gains: GainSchedule,
    /// Per-dimension lower bounds of the (scaled) search space.
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds of the (scaled) search space.
    pub upper: Vec<f64>,
    /// Optional per-dimension cap on `|a_k · ĝ_k,i|` — Spall's practical
    /// recommendation to "limit the magnitude of change in θ" per
    /// iteration, preventing a noisy early gradient from slamming the
    /// iterate wall-to-wall. `None` disables clipping.
    pub max_step: Option<f64>,
}

impl SpsaParams {
    /// Paper setting: both scaled dimensions bounded to `[1, 20]`, gains
    /// `A = 1, a = 10, c = 2` (§6.2.1).
    pub fn paper_default(dim: usize) -> Self {
        SpsaParams {
            gains: GainSchedule::paper_default(),
            lower: vec![1.0; dim],
            upper: vec![20.0; dim],
            // A quarter of the scaled range per iteration.
            max_step: Some(19.0 / 4.0),
        }
    }

    fn validate(&self) {
        assert!(!self.lower.is_empty(), "dimension must be at least 1");
        assert_eq!(self.lower.len(), self.upper.len(), "bound length mismatch");
        for (lo, hi) in self.lower.iter().zip(&self.upper) {
            assert!(lo < hi, "each lower bound must be below its upper bound");
        }
        assert!(
            self.gains.satisfies_convergence(),
            "gain schedule violates SPSA convergence conditions: {:?}",
            self.gains.check_conditions()
        );
    }
}

/// A pending iteration: evaluate the objective at both points, then call
/// [`Spsa::update`].
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Iteration index this proposal belongs to (0-based).
    pub k: u64,
    /// The perturbation vector `Δ_k` (components ±1).
    pub delta: Vec<f64>,
    /// `checkBound(θ_k + c_k Δ_k)`.
    pub theta_plus: Vec<f64>,
    /// `checkBound(θ_k − c_k Δ_k)`.
    pub theta_minus: Vec<f64>,
    /// Gain `a_k` for this iteration.
    pub a_k: f64,
    /// Perturbation size `c_k` for this iteration.
    pub c_k: f64,
}

/// The outcome of one completed iteration.
#[derive(Debug, Clone)]
pub struct StepInfo {
    /// Iteration index (0-based).
    pub k: u64,
    /// Gradient estimate `ĝ_k`.
    pub gradient: Vec<f64>,
    /// The new iterate `θ_{k+1}` (bound-clamped).
    pub theta: Vec<f64>,
    /// `y(θ⁺)` as reported.
    pub y_plus: f64,
    /// `y(θ⁻)` as reported.
    pub y_minus: f64,
}

/// The SPSA optimizer state.
#[derive(Debug, Clone)]
pub struct Spsa {
    params: SpsaParams,
    theta: Vec<f64>,
    k: u64,
    rng: SimRng,
    perturb: BernoulliPerturbation,
}

impl Spsa {
    /// Start at `theta_initial` (clamped into bounds). Panics on invalid
    /// parameters or a non-convergent gain schedule.
    pub fn new(params: SpsaParams, theta_initial: Vec<f64>, rng: SimRng) -> Self {
        params.validate();
        assert_eq!(
            theta_initial.len(),
            params.lower.len(),
            "theta dimension mismatch"
        );
        let theta = clamp(&theta_initial, &params.lower, &params.upper);
        Spsa {
            params,
            theta,
            k: 0,
            rng,
            perturb: BernoulliPerturbation,
        }
    }

    /// Current iterate `θ_k`.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Completed iteration count.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.theta.len()
    }

    /// The gain schedule in force.
    pub fn gains(&self) -> &GainSchedule {
        &self.params.gains
    }

    /// Reset to iteration 0 at `theta_initial` — the paper's
    /// `resetCoefficient()` (Table 1), triggered on input-rate shifts.
    pub fn reset(&mut self, theta_initial: &[f64]) {
        assert_eq!(theta_initial.len(), self.theta.len(), "dimension mismatch");
        self.theta = clamp(theta_initial, &self.params.lower, &self.params.upper);
        self.k = 0;
    }

    /// Begin iteration `k`: draw `Δ_k` and produce the two evaluation
    /// points. Does not advance `k` — call [`Spsa::update`] with the
    /// measurements to complete the iteration.
    pub fn propose(&mut self) -> Proposal {
        let a_k = self.params.gains.a_k(self.k);
        let c_k = self.params.gains.c_k(self.k);
        let delta = self.perturb.draw_vector(self.theta.len(), &mut self.rng);
        let plus: Vec<f64> = self
            .theta
            .iter()
            .zip(&delta)
            .map(|(t, d)| t + c_k * d)
            .collect();
        let minus: Vec<f64> = self
            .theta
            .iter()
            .zip(&delta)
            .map(|(t, d)| t - c_k * d)
            .collect();
        Proposal {
            k: self.k,
            delta,
            theta_plus: clamp(&plus, &self.params.lower, &self.params.upper),
            theta_minus: clamp(&minus, &self.params.lower, &self.params.upper),
            a_k,
            c_k,
        }
    }

    /// Complete an iteration with the two measurements and step the iterate.
    ///
    /// Stale proposals (from before a [`Spsa::reset`]) are rejected with a
    /// panic: the gradient would be scaled by the wrong gains.
    pub fn update(&mut self, proposal: &Proposal, y_plus: f64, y_minus: f64) -> StepInfo {
        assert_eq!(proposal.k, self.k, "proposal is stale (reset happened?)");
        assert!(
            y_plus.is_finite() && y_minus.is_finite(),
            "objective measurements must be finite"
        );
        let diff = y_plus - y_minus;
        let gradient: Vec<f64> = proposal
            .delta
            .iter()
            .map(|d| diff / (2.0 * proposal.c_k * d))
            .collect();
        let stepped: Vec<f64> = self
            .theta
            .iter()
            .zip(&gradient)
            .map(|(t, g)| {
                let mut step = proposal.a_k * g;
                if let Some(cap) = self.params.max_step {
                    step = step.clamp(-cap, cap);
                }
                t - step
            })
            .collect();
        self.theta = clamp(&stepped, &self.params.lower, &self.params.upper);
        self.k += 1;
        StepInfo {
            k: proposal.k,
            gradient,
            theta: self.theta.clone(),
            y_plus,
            y_minus,
        }
    }

    /// Convenience: run one full iteration against a closure objective.
    pub fn step<F: FnMut(&[f64]) -> f64>(&mut self, mut objective: F) -> StepInfo {
        let p = self.propose();
        let y_plus = objective(&p.theta_plus);
        let y_minus = objective(&p.theta_minus);
        self.update(&p, y_plus, y_minus)
    }

    /// Run `n` iterations against a closure objective; returns the final
    /// iterate.
    pub fn run<F: FnMut(&[f64]) -> f64>(&mut self, n: u64, mut objective: F) -> Vec<f64> {
        for _ in 0..n {
            self.step(&mut objective);
        }
        self.theta.clone()
    }
}

/// The paper's `checkBound`: clamp each component into `[lower, upper]`.
pub(crate) fn clamp(theta: &[f64], lower: &[f64], upper: &[f64]) -> Vec<f64> {
    theta
        .iter()
        .zip(lower.iter().zip(upper))
        .map(|(&t, (&lo, &hi))| t.clamp(lo, hi))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(center: Vec<f64>) -> impl FnMut(&[f64]) -> f64 {
        move |theta: &[f64]| {
            theta
                .iter()
                .zip(&center)
                .map(|(t, c)| (t - c).powi(2))
                .sum::<f64>()
        }
    }

    fn params(dim: usize) -> SpsaParams {
        SpsaParams {
            gains: GainSchedule {
                a: 2.0,
                big_a: 5.0,
                c: 0.5,
                alpha: 0.602,
                gamma: 0.101,
            },
            lower: vec![0.0; dim],
            upper: vec![20.0; dim],
            max_step: None,
        }
    }

    #[test]
    fn converges_on_noiseless_quadratic() {
        let mut spsa = Spsa::new(params(2), vec![15.0, 3.0], SimRng::seed_from_u64(1));
        let theta = spsa.run(300, quadratic(vec![7.0, 12.0]));
        assert!((theta[0] - 7.0).abs() < 0.5, "theta {theta:?}");
        assert!((theta[1] - 12.0).abs() < 0.5, "theta {theta:?}");
    }

    #[test]
    fn converges_under_noise() {
        let mut noise_rng = SimRng::seed_from_u64(99);
        let mut q = quadratic(vec![10.0, 5.0]);
        let mut spsa = Spsa::new(params(2), vec![2.0, 18.0], SimRng::seed_from_u64(2));
        let theta = spsa.run(800, |t| q(t) + noise_rng.normal(0.0, 1.0));
        assert!((theta[0] - 10.0).abs() < 1.5, "theta {theta:?}");
        assert!((theta[1] - 5.0).abs() < 1.5, "theta {theta:?}");
    }

    #[test]
    fn iterates_respect_bounds() {
        // Optimum outside the feasible box: iterates must stick to the wall.
        let mut spsa = Spsa::new(params(2), vec![10.0, 10.0], SimRng::seed_from_u64(3));
        spsa.run(200, quadratic(vec![30.0, -10.0]));
        for _ in 0..50 {
            let p = spsa.propose();
            for (t, (lo, hi)) in p
                .theta_plus
                .iter()
                .zip(spsa.params.lower.iter().zip(&spsa.params.upper))
            {
                assert!(*t >= *lo && *t <= *hi);
            }
            spsa.update(&p, 0.0, 0.0);
        }
        let theta = spsa.theta();
        assert!(theta[0] > 15.0, "pushed to upper wall: {theta:?}");
        assert!(theta[1] < 5.0, "pushed to lower wall: {theta:?}");
    }

    #[test]
    fn two_measurements_per_iteration_regardless_of_dimension() {
        for dim in [1usize, 2, 5, 20] {
            let mut count = 0u64;
            let mut spsa = Spsa::new(params(dim), vec![10.0; dim], SimRng::seed_from_u64(4));
            spsa.run(10, |t| {
                count += 1;
                t.iter().sum()
            });
            assert_eq!(count, 20, "exactly 2 evals/iter at dim {dim}");
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut spsa = Spsa::new(params(2), vec![10.0, 10.0], SimRng::seed_from_u64(5));
        spsa.run(50, quadratic(vec![0.0, 0.0]));
        assert_eq!(spsa.k(), 50);
        spsa.reset(&[10.0, 10.0]);
        assert_eq!(spsa.k(), 0);
        assert_eq!(spsa.theta(), &[10.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_proposal_is_rejected() {
        let mut spsa = Spsa::new(params(2), vec![10.0, 10.0], SimRng::seed_from_u64(6));
        let p = spsa.propose();
        spsa.reset(&[10.0, 10.0]);
        spsa.step(|_| 0.0); // k advances
        spsa.update(&p, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_measurement_is_rejected() {
        let mut spsa = Spsa::new(params(1), vec![10.0], SimRng::seed_from_u64(7));
        let p = spsa.propose();
        spsa.update(&p, f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "convergence")]
    fn invalid_gain_schedule_is_rejected_at_construction() {
        let mut p = params(2);
        p.gains.gamma = 0.4; // 2(0.602-0.4) = 0.404 < 1
        let _ = Spsa::new(p, vec![1.0, 1.0], SimRng::seed_from_u64(8));
    }

    #[test]
    fn gradient_sign_matches_measurement_difference() {
        let mut spsa = Spsa::new(params(2), vec![10.0, 10.0], SimRng::seed_from_u64(9));
        let p = spsa.propose();
        let info = spsa.update(&p, 5.0, 1.0); // y+ > y-: move against +delta
        for (g, d) in info.gradient.iter().zip(&p.delta) {
            assert!(g * d > 0.0, "gradient component aligned with delta sign");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut spsa = Spsa::new(params(2), vec![10.0, 10.0], SimRng::seed_from_u64(42));
            spsa.run(100, quadratic(vec![4.0, 16.0]))
        };
        assert_eq!(run(), run());
    }
}
