//! Declarative scenario wire types: `workload × rate × skew × faults ×
//! cluster × methods` as validated, JSON-round-tripping data.
//!
//! A scenario file is the unit the `scenarios/` corpus is made of: one
//! JSON object describing everything an experiment cell needs — which
//! workload and cluster preset, the arrival-rate process (including the
//! adversarial combinators: flash crowds over a diurnal base, Pareto-sized
//! bursts, correlated multi-source surges), hot-key partition skew, a
//! fault schedule, and the tuning methods to race. The `scenario_runner`
//! binary replays a corpus of these through the parallel fabric; the
//! fig/ablation binaries load committed scenario files instead of
//! hard-coding their parameters.
//!
//! This module owns only the *wire* layer: parse, validate, serialize.
//! Building live processes from a [`RateSpec`] happens in `nostop-datagen`
//! (`RateSpecExt::build`), converting [`FaultSpec`]s into a `FaultPlan`
//! happens in `spark-sim` — this crate depends on neither, so the types
//! can flow in both directions without a dependency cycle.
//!
//! Everything is `Result`-based rather than panicking: scenario files are
//! external input, and a bad file must name its defect, not abort the
//! whole corpus run with a stack trace.

use nostop_simcore::json::{self, Json};

/// Schema tag every scenario file carries.
pub const SCENARIO_SCHEMA: &str = "nostop-scenario/1";

/// The tuning methods a scenario may race (the chaos-grid arms).
pub const KNOWN_METHODS: [&str; 3] = ["nostop", "bo", "static"];

/// A declarative, comparable description of an arrival-rate process.
///
/// Lives here (not in `datagen`) because it is a *wire type*: fleet
/// tenant specs, scenario files, and reports all carry it, and none of
/// them should drag in the live process implementations. The composite
/// variants box their base spec, so a diurnal cycle with superimposed
/// flash crowds is literally `FlashCrowd { base: Sinusoid { .. }, .. }`.
#[derive(Debug, Clone, PartialEq)]
pub enum RateSpec {
    /// A constant rate — the idealized regime prior work assumes.
    Constant {
        /// Records per second.
        rate: f64,
    },
    /// The paper's uniform-random redraw model (§6.2.2).
    UniformRandom {
        /// Lower rate bound.
        min_rate: f64,
        /// Upper rate bound.
        max_rate: f64,
        /// Seconds between redraws.
        hold_secs: f64,
    },
    /// A sinusoidal (diurnal-style) rate.
    Sinusoid {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Full-cycle period in seconds.
        period_secs: f64,
    },
    /// A linear ramp — the "slow drift" regime where NoStop's std-dev
    /// reset trigger never fires.
    Ramp {
        /// Rate at `t = 0`.
        start_rate: f64,
        /// Rate at `t = duration_secs` and beyond.
        end_rate: f64,
        /// Seconds the ramp spans.
        duration_secs: f64,
    },
    /// Poisson surges of fixed magnitude over a constant base (§5.5).
    Surge {
        /// Base records per second between surges.
        base_rate: f64,
        /// Multiplicative surge factor (`>= 1`).
        magnitude: f64,
        /// Surge duration in seconds.
        surge_secs: f64,
        /// Mean seconds between surge onsets (Poisson).
        mean_gap_secs: f64,
    },
    /// Flash crowds over any base: Poisson onsets whose *magnitude* is
    /// drawn per-event from a capped Pareto — most crowds are mild, a
    /// heavy tail is violent. The regime where the reset trigger fires
    /// constantly.
    FlashCrowd {
        /// The underlying process the crowds multiply.
        base: Box<RateSpec>,
        /// Mean seconds between crowd onsets (Poisson).
        mean_gap_secs: f64,
        /// How long each crowd lasts, seconds.
        crowd_secs: f64,
        /// Pareto tail index for the magnitude draw (smaller = heavier).
        pareto_shape: f64,
        /// Smallest crowd magnitude (the Pareto scale), `>= 1`.
        min_magnitude: f64,
        /// Hard cap on the crowd magnitude.
        max_magnitude: f64,
    },
    /// Heavy-tailed burst *arrivals*: Poisson onsets each injecting a
    /// Pareto-sized record count (capped), spread over the burst window
    /// as surplus rate on top of the base.
    ParetoBurst {
        /// The underlying process the bursts ride on.
        base: Box<RateSpec>,
        /// Mean seconds between burst onsets (Poisson).
        mean_gap_secs: f64,
        /// Seconds each burst's records are spread over.
        burst_secs: f64,
        /// Pareto tail index for the burst size (smaller = heavier).
        pareto_shape: f64,
        /// Smallest burst size in records (the Pareto scale).
        min_burst_records: f64,
        /// Hard cap on the burst size in records.
        max_burst_records: f64,
    },
    /// Multi-source surges sharing a trigger stream: every process built
    /// with the same `trigger_seed` surges at the *same instants*
    /// regardless of its own RNG fork — N tenants spike together, the
    /// way correlated production incidents do.
    CorrelatedSurge {
        /// The underlying process each source runs between surges.
        base: Box<RateSpec>,
        /// The shared trigger stream; equal seeds ⇒ equal onset times.
        trigger_seed: u64,
        /// Multiplicative surge factor (`>= 1`).
        magnitude: f64,
        /// Surge duration in seconds.
        surge_secs: f64,
        /// Mean seconds between surge onsets (Poisson).
        mean_gap_secs: f64,
    },
}

fn require(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

fn finite_pos(x: f64, what: &str) -> Result<(), String> {
    require(
        x.is_finite() && x > 0.0,
        &format!("{what} must be positive and finite, got {x}"),
    )
}

fn finite_nonneg(x: f64, what: &str) -> Result<(), String> {
    require(
        x.is_finite() && x >= 0.0,
        &format!("{what} must be non-negative and finite, got {x}"),
    )
}

impl RateSpec {
    /// Structural validation; composite variants validate recursively.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            RateSpec::Constant { rate } => finite_nonneg(*rate, "constant rate"),
            RateSpec::UniformRandom {
                min_rate,
                max_rate,
                hold_secs,
            } => {
                finite_nonneg(*min_rate, "min_rate")?;
                require(
                    max_rate.is_finite() && *max_rate >= *min_rate,
                    "max_rate must be finite and >= min_rate",
                )?;
                finite_pos(*hold_secs, "hold_secs")
            }
            RateSpec::Sinusoid {
                base,
                amplitude,
                period_secs,
            } => {
                finite_nonneg(*base, "sinusoid base")?;
                require(amplitude.is_finite(), "amplitude must be finite")?;
                finite_pos(*period_secs, "period_secs")
            }
            RateSpec::Ramp {
                start_rate,
                end_rate,
                duration_secs,
            } => {
                finite_nonneg(*start_rate, "start_rate")?;
                finite_nonneg(*end_rate, "end_rate")?;
                finite_pos(*duration_secs, "duration_secs")
            }
            RateSpec::Surge {
                base_rate,
                magnitude,
                surge_secs,
                mean_gap_secs,
            } => {
                finite_nonneg(*base_rate, "base_rate")?;
                require(
                    magnitude.is_finite() && *magnitude >= 1.0,
                    "surge magnitude must be >= 1",
                )?;
                finite_pos(*surge_secs, "surge_secs")?;
                finite_pos(*mean_gap_secs, "mean_gap_secs")
            }
            RateSpec::FlashCrowd {
                base,
                mean_gap_secs,
                crowd_secs,
                pareto_shape,
                min_magnitude,
                max_magnitude,
            } => {
                base.validate()?;
                finite_pos(*mean_gap_secs, "mean_gap_secs")?;
                finite_pos(*crowd_secs, "crowd_secs")?;
                finite_pos(*pareto_shape, "pareto_shape")?;
                require(
                    min_magnitude.is_finite() && *min_magnitude >= 1.0,
                    "min_magnitude must be >= 1",
                )?;
                require(
                    max_magnitude.is_finite() && *max_magnitude >= *min_magnitude,
                    "max_magnitude must be finite and >= min_magnitude",
                )
            }
            RateSpec::ParetoBurst {
                base,
                mean_gap_secs,
                burst_secs,
                pareto_shape,
                min_burst_records,
                max_burst_records,
            } => {
                base.validate()?;
                finite_pos(*mean_gap_secs, "mean_gap_secs")?;
                finite_pos(*burst_secs, "burst_secs")?;
                finite_pos(*pareto_shape, "pareto_shape")?;
                finite_pos(*min_burst_records, "min_burst_records")?;
                require(
                    max_burst_records.is_finite() && *max_burst_records >= *min_burst_records,
                    "max_burst_records must be finite and >= min_burst_records",
                )
            }
            RateSpec::CorrelatedSurge {
                base,
                magnitude,
                surge_secs,
                mean_gap_secs,
                ..
            } => {
                base.validate()?;
                require(
                    magnitude.is_finite() && *magnitude >= 1.0,
                    "surge magnitude must be >= 1",
                )?;
                finite_pos(*surge_secs, "surge_secs")?;
                finite_pos(*mean_gap_secs, "mean_gap_secs")
            }
        }
    }

    /// Serialize as a tagged JSON object (`{"kind": "...", ...}`).
    pub fn to_json(&self) -> Json {
        match self {
            RateSpec::Constant { rate } => json::obj(vec![
                ("kind", json::str("constant")),
                ("rate", json::num(*rate)),
            ]),
            RateSpec::UniformRandom {
                min_rate,
                max_rate,
                hold_secs,
            } => json::obj(vec![
                ("kind", json::str("uniform-random")),
                ("min_rate", json::num(*min_rate)),
                ("max_rate", json::num(*max_rate)),
                ("hold_secs", json::num(*hold_secs)),
            ]),
            RateSpec::Sinusoid {
                base,
                amplitude,
                period_secs,
            } => json::obj(vec![
                ("kind", json::str("sinusoid")),
                ("base", json::num(*base)),
                ("amplitude", json::num(*amplitude)),
                ("period_secs", json::num(*period_secs)),
            ]),
            RateSpec::Ramp {
                start_rate,
                end_rate,
                duration_secs,
            } => json::obj(vec![
                ("kind", json::str("ramp")),
                ("start_rate", json::num(*start_rate)),
                ("end_rate", json::num(*end_rate)),
                ("duration_secs", json::num(*duration_secs)),
            ]),
            RateSpec::Surge {
                base_rate,
                magnitude,
                surge_secs,
                mean_gap_secs,
            } => json::obj(vec![
                ("kind", json::str("surge")),
                ("base_rate", json::num(*base_rate)),
                ("magnitude", json::num(*magnitude)),
                ("surge_secs", json::num(*surge_secs)),
                ("mean_gap_secs", json::num(*mean_gap_secs)),
            ]),
            RateSpec::FlashCrowd {
                base,
                mean_gap_secs,
                crowd_secs,
                pareto_shape,
                min_magnitude,
                max_magnitude,
            } => json::obj(vec![
                ("kind", json::str("flash-crowd")),
                ("base", base.to_json()),
                ("mean_gap_secs", json::num(*mean_gap_secs)),
                ("crowd_secs", json::num(*crowd_secs)),
                ("pareto_shape", json::num(*pareto_shape)),
                ("min_magnitude", json::num(*min_magnitude)),
                ("max_magnitude", json::num(*max_magnitude)),
            ]),
            RateSpec::ParetoBurst {
                base,
                mean_gap_secs,
                burst_secs,
                pareto_shape,
                min_burst_records,
                max_burst_records,
            } => json::obj(vec![
                ("kind", json::str("pareto-burst")),
                ("base", base.to_json()),
                ("mean_gap_secs", json::num(*mean_gap_secs)),
                ("burst_secs", json::num(*burst_secs)),
                ("pareto_shape", json::num(*pareto_shape)),
                ("min_burst_records", json::num(*min_burst_records)),
                ("max_burst_records", json::num(*max_burst_records)),
            ]),
            RateSpec::CorrelatedSurge {
                base,
                trigger_seed,
                magnitude,
                surge_secs,
                mean_gap_secs,
            } => json::obj(vec![
                ("kind", json::str("correlated-surge")),
                ("base", base.to_json()),
                ("trigger_seed", json::uint(*trigger_seed)),
                ("magnitude", json::num(*magnitude)),
                ("surge_secs", json::num(*surge_secs)),
                ("mean_gap_secs", json::num(*mean_gap_secs)),
            ]),
        }
    }

    /// Parse a tagged JSON object back into a spec (inverse of
    /// [`RateSpec::to_json`]). Does not validate ranges — call
    /// [`RateSpec::validate`] after.
    pub fn from_json(v: &Json) -> Result<RateSpec, String> {
        let kind = v.field_str("kind").map_err(|e| e.to_string())?;
        let f = |key: &str| v.field_f64(key).map_err(|e| format!("rate `{kind}`: {e}"));
        let sub = |key: &str| -> Result<Box<RateSpec>, String> {
            let inner = v
                .get(key)
                .ok_or_else(|| format!("rate `{kind}`: missing `{key}`"))?;
            Ok(Box::new(RateSpec::from_json(inner)?))
        };
        match kind {
            "constant" => Ok(RateSpec::Constant { rate: f("rate")? }),
            "uniform-random" => Ok(RateSpec::UniformRandom {
                min_rate: f("min_rate")?,
                max_rate: f("max_rate")?,
                hold_secs: f("hold_secs")?,
            }),
            "sinusoid" => Ok(RateSpec::Sinusoid {
                base: f("base")?,
                amplitude: f("amplitude")?,
                period_secs: f("period_secs")?,
            }),
            "ramp" => Ok(RateSpec::Ramp {
                start_rate: f("start_rate")?,
                end_rate: f("end_rate")?,
                duration_secs: f("duration_secs")?,
            }),
            "surge" => Ok(RateSpec::Surge {
                base_rate: f("base_rate")?,
                magnitude: f("magnitude")?,
                surge_secs: f("surge_secs")?,
                mean_gap_secs: f("mean_gap_secs")?,
            }),
            "flash-crowd" => Ok(RateSpec::FlashCrowd {
                base: sub("base")?,
                mean_gap_secs: f("mean_gap_secs")?,
                crowd_secs: f("crowd_secs")?,
                pareto_shape: f("pareto_shape")?,
                min_magnitude: f("min_magnitude")?,
                max_magnitude: f("max_magnitude")?,
            }),
            "pareto-burst" => Ok(RateSpec::ParetoBurst {
                base: sub("base")?,
                mean_gap_secs: f("mean_gap_secs")?,
                burst_secs: f("burst_secs")?,
                pareto_shape: f("pareto_shape")?,
                min_burst_records: f("min_burst_records")?,
                max_burst_records: f("max_burst_records")?,
            }),
            "correlated-surge" => Ok(RateSpec::CorrelatedSurge {
                base: sub("base")?,
                trigger_seed: v
                    .field_u64("trigger_seed")
                    .map_err(|e| format!("rate `{kind}`: {e}"))?,
                magnitude: f("magnitude")?,
                surge_secs: f("surge_secs")?,
                mean_gap_secs: f("mean_gap_secs")?,
            }),
            other => Err(format!("unknown rate kind `{other}`")),
        }
    }
}

/// Partition skew applied at the broker's produce side.
///
/// The paper's deployment avoids skew by construction (§6.1: more
/// partitions than cores, uniform keying); production traffic does not.
/// `HotKey` concentrates a `hot_weight`-times-fair share of every produce
/// call onto the first `⌈hot_fraction · partitions⌉` partitions —
/// deterministic (no RNG), conservation-exact modulo per-partition
/// fractional carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewSpec {
    /// Uniform production — byte-identical to a build without skew.
    None,
    /// Hot-key skew: a fraction of partitions receives a multiplied share.
    HotKey {
        /// Fraction of partitions that are hot, in `(0, 1)`.
        hot_fraction: f64,
        /// Relative weight of a hot partition vs a cold one, `> 1`.
        hot_weight: f64,
    },
}

impl SkewSpec {
    /// True for the uniform (skew-free) spec.
    pub fn is_none(&self) -> bool {
        matches!(self, SkewSpec::None)
    }

    /// Number of hot partitions for a broker with `partitions` partitions.
    pub fn hot_partitions(&self, partitions: usize) -> usize {
        match self {
            SkewSpec::None => 0,
            SkewSpec::HotKey { hot_fraction, .. } => {
                (((*hot_fraction) * partitions as f64).ceil() as usize).clamp(1, partitions)
            }
        }
    }

    /// Normalized per-partition produce weights (sum = 1), or `None` for
    /// the uniform spec. Hot partitions come first — which partitions are
    /// hot is irrelevant to every consumer of the model (only the weight
    /// *distribution* matters), and a fixed assignment keeps the mapping a
    /// pure function of the spec.
    pub fn weights(&self, partitions: usize) -> Option<Vec<f64>> {
        match self {
            SkewSpec::None => None,
            SkewSpec::HotKey { hot_weight, .. } => {
                let hot = self.hot_partitions(partitions);
                if hot == partitions {
                    return None; // everything hot = uniform
                }
                let total = hot_weight * hot as f64 + (partitions - hot) as f64;
                Some(
                    (0..partitions)
                        .map(|i| {
                            if i < hot {
                                hot_weight / total
                            } else {
                                1.0 / total
                            }
                        })
                        .collect(),
                )
            }
        }
    }

    /// Load imbalance: the hottest partition's share relative to the
    /// uniform share (`1.0` = no skew). This is the factor by which the
    /// task holding the hot partition's records outweighs a fair task.
    pub fn imbalance(&self, partitions: usize) -> f64 {
        match self.weights(partitions) {
            None => 1.0,
            Some(w) => {
                let max = w.iter().cloned().fold(0.0f64, f64::max);
                max * partitions as f64
            }
        }
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SkewSpec::None => Ok(()),
            SkewSpec::HotKey {
                hot_fraction,
                hot_weight,
            } => {
                require(
                    hot_fraction.is_finite() && *hot_fraction > 0.0 && *hot_fraction < 1.0,
                    "hot_fraction must be in (0, 1)",
                )?;
                require(
                    hot_weight.is_finite() && *hot_weight > 1.0,
                    "hot_weight must be > 1",
                )
            }
        }
    }

    /// Serialize as a tagged JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            SkewSpec::None => json::obj(vec![("kind", json::str("none"))]),
            SkewSpec::HotKey {
                hot_fraction,
                hot_weight,
            } => json::obj(vec![
                ("kind", json::str("hot-key")),
                ("hot_fraction", json::num(*hot_fraction)),
                ("hot_weight", json::num(*hot_weight)),
            ]),
        }
    }

    /// Parse a tagged JSON object (inverse of [`SkewSpec::to_json`]).
    pub fn from_json(v: &Json) -> Result<SkewSpec, String> {
        match v.field_str("kind").map_err(|e| e.to_string())? {
            "none" => Ok(SkewSpec::None),
            "hot-key" => Ok(SkewSpec::HotKey {
                hot_fraction: v.field_f64("hot_fraction").map_err(|e| e.to_string())?,
                hot_weight: v.field_f64("hot_weight").map_err(|e| e.to_string())?,
            }),
            other => Err(format!("unknown skew kind `{other}`")),
        }
    }
}

/// A scheduled fault, in wall-of-wire form: plain seconds instead of
/// `SimTime`, so scenario files stay hand-writable. `spark-sim` converts
/// a list of these into its validated `FaultPlan`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Kill `count` executors at `at_s`, optionally relaunching after
    /// `relaunch_after_s`.
    ExecutorCrash {
        /// When the crash happens, seconds.
        at_s: f64,
        /// Executors killed.
        count: u32,
        /// Delay until replacements launch (`None` = capacity gone).
        relaunch_after_s: Option<f64>,
    },
    /// Node `node` runs at `factor` × speed in `[from_s, until_s)`.
    NodeSlowdown {
        /// Affected node id.
        node: usize,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
        /// Speed multiplier.
        factor: f64,
    },
    /// Receivers down in `[from_s, until_s)`; produced records are dropped.
    ReceiverOutage {
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
    /// Tasks in `[from_s, until_s)` fail with `probability` per attempt.
    TaskFailures {
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
        /// Per-attempt failure probability in `[0, 1)`.
        probability: f64,
    },
}

impl FaultSpec {
    /// Structural validation (mirrors `FaultEvent::validate`, but as a
    /// `Result` naming the defect).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            FaultSpec::ExecutorCrash {
                at_s,
                count,
                relaunch_after_s,
            } => {
                finite_nonneg(*at_s, "at_s")?;
                require(*count > 0, "crash must kill at least one executor")?;
                if let Some(r) = relaunch_after_s {
                    finite_pos(*r, "relaunch_after_s")?;
                }
                Ok(())
            }
            FaultSpec::NodeSlowdown {
                from_s,
                until_s,
                factor,
                ..
            } => {
                finite_nonneg(*from_s, "from_s")?;
                require(
                    until_s.is_finite() && until_s > from_s,
                    "slowdown window must be non-empty",
                )?;
                finite_pos(*factor, "slowdown factor")
            }
            FaultSpec::ReceiverOutage { from_s, until_s } => {
                finite_nonneg(*from_s, "from_s")?;
                require(
                    until_s.is_finite() && until_s > from_s,
                    "outage window must be non-empty",
                )
            }
            FaultSpec::TaskFailures {
                from_s,
                until_s,
                probability,
            } => {
                finite_nonneg(*from_s, "from_s")?;
                require(
                    until_s.is_finite() && until_s > from_s,
                    "failure window must be non-empty",
                )?;
                require(
                    (0.0..1.0).contains(probability),
                    "failure probability must be in [0, 1)",
                )
            }
        }
    }

    /// Serialize as a tagged JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            FaultSpec::ExecutorCrash {
                at_s,
                count,
                relaunch_after_s,
            } => {
                let mut fields = vec![
                    ("kind", json::str("executor-crash")),
                    ("at_s", json::num(*at_s)),
                    ("count", json::uint(*count as u64)),
                ];
                if let Some(r) = relaunch_after_s {
                    fields.push(("relaunch_after_s", json::num(*r)));
                }
                json::obj(fields)
            }
            FaultSpec::NodeSlowdown {
                node,
                from_s,
                until_s,
                factor,
            } => json::obj(vec![
                ("kind", json::str("node-slowdown")),
                ("node", json::uint(*node as u64)),
                ("from_s", json::num(*from_s)),
                ("until_s", json::num(*until_s)),
                ("factor", json::num(*factor)),
            ]),
            FaultSpec::ReceiverOutage { from_s, until_s } => json::obj(vec![
                ("kind", json::str("receiver-outage")),
                ("from_s", json::num(*from_s)),
                ("until_s", json::num(*until_s)),
            ]),
            FaultSpec::TaskFailures {
                from_s,
                until_s,
                probability,
            } => json::obj(vec![
                ("kind", json::str("task-failures")),
                ("from_s", json::num(*from_s)),
                ("until_s", json::num(*until_s)),
                ("probability", json::num(*probability)),
            ]),
        }
    }

    /// Parse a tagged JSON object (inverse of [`FaultSpec::to_json`]).
    pub fn from_json(v: &Json) -> Result<FaultSpec, String> {
        let kind = v.field_str("kind").map_err(|e| e.to_string())?;
        let f = |key: &str| v.field_f64(key).map_err(|e| format!("fault `{kind}`: {e}"));
        match kind {
            "executor-crash" => Ok(FaultSpec::ExecutorCrash {
                at_s: f("at_s")?,
                count: v
                    .field_u64("count")
                    .map_err(|e| format!("fault `{kind}`: {e}"))? as u32,
                relaunch_after_s: match v.get("relaunch_after_s") {
                    None | Some(Json::Null) => None,
                    Some(_) => Some(f("relaunch_after_s")?),
                },
            }),
            "node-slowdown" => Ok(FaultSpec::NodeSlowdown {
                node: v
                    .field_u64("node")
                    .map_err(|e| format!("fault `{kind}`: {e}"))? as usize,
                from_s: f("from_s")?,
                until_s: f("until_s")?,
                factor: f("factor")?,
            }),
            "receiver-outage" => Ok(FaultSpec::ReceiverOutage {
                from_s: f("from_s")?,
                until_s: f("until_s")?,
            }),
            "task-failures" => Ok(FaultSpec::TaskFailures {
                from_s: f("from_s")?,
                until_s: f("until_s")?,
                probability: f("probability")?,
            }),
            other => Err(format!("unknown fault kind `{other}`")),
        }
    }
}

/// Which cluster preset a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// The Table-2 five-node heterogeneous cluster.
    Paper,
    /// The ten-node homogeneous testbed of §3.2.
    Testbed,
}

impl ClusterKind {
    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            ClusterKind::Paper => "paper",
            ClusterKind::Testbed => "testbed",
        }
    }

    /// Parse from the canonical name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(ClusterKind::Paper),
            "testbed" => Some(ClusterKind::Testbed),
            _ => None,
        }
    }
}

/// One validated scenario: everything an experiment cell is a pure
/// function of. See the module docs for the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique scenario name (the digest table's key).
    pub name: String,
    /// Workload name, resolved by the runner (`nostop-workloads` owns the
    /// canonical list; this crate only requires it to be non-empty).
    pub workload: String,
    /// Cluster preset.
    pub cluster: ClusterKind,
    /// Master seed; the engine forks all internal streams from it.
    pub seed: u64,
    /// Explicit rate-process seed. `None` derives `seed ^ 0x5EED` — the
    /// experiment drivers' convention, which decorrelates the arrival
    /// process from the engine's internal streams.
    pub rate_seed: Option<u64>,
    /// Virtual horizon each method runs to, seconds.
    pub horizon_s: f64,
    /// When set, the `nostop` method runs this many controller rounds
    /// instead of free-running to the horizon (the Fig-6 protocol).
    pub rounds: Option<u64>,
    /// Methods to race (subset of [`KNOWN_METHODS`]). Empty = trace-only:
    /// the runner samples and digests the rate trajectory without
    /// simulating the engine (the Fig-5 protocol).
    pub methods: Vec<String>,
    /// Arrival-rate process.
    pub rate: RateSpec,
    /// Partition skew.
    pub skew: SkewSpec,
    /// Scheduled faults.
    pub faults: Vec<FaultSpec>,
}

impl ScenarioSpec {
    /// Structural validation of every layer.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = |e: String| format!("scenario `{}`: {e}", self.name);
        require(!self.name.is_empty(), "scenario name must be non-empty")?;
        require(
            self.name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
            &format!("scenario name `{}` must be [A-Za-z0-9_-]", self.name),
        )?;
        require(!self.workload.is_empty(), "workload must be non-empty").map_err(ctx)?;
        finite_pos(self.horizon_s, "horizon_s").map_err(ctx)?;
        if let Some(r) = self.rounds {
            require(r > 0, "rounds must be positive when present").map_err(ctx)?;
        }
        for m in &self.methods {
            require(
                KNOWN_METHODS.contains(&m.as_str()),
                &format!("unknown method `{m}` (known: {KNOWN_METHODS:?})"),
            )
            .map_err(ctx)?;
        }
        self.rate.validate().map_err(ctx)?;
        self.skew.validate().map_err(ctx)?;
        for fault in &self.faults {
            fault.validate().map_err(ctx)?;
        }
        Ok(())
    }

    /// The rate-process seed in force (explicit, or derived from `seed`).
    pub fn effective_rate_seed(&self) -> u64 {
        self.rate_seed.unwrap_or(self.seed ^ 0x5EED)
    }

    /// Serialize the full scenario (inverse of [`ScenarioSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", json::str(SCENARIO_SCHEMA)),
            ("name", json::str(self.name.clone())),
            ("workload", json::str(self.workload.clone())),
            ("cluster", json::str(self.cluster.name())),
            ("seed", json::uint(self.seed)),
        ];
        if let Some(rs) = self.rate_seed {
            fields.push(("rate_seed", json::uint(rs)));
        }
        fields.push(("horizon_s", json::num(self.horizon_s)));
        if let Some(r) = self.rounds {
            fields.push(("rounds", json::uint(r)));
        }
        fields.push((
            "methods",
            Json::Arr(self.methods.iter().map(|m| json::str(m.clone())).collect()),
        ));
        fields.push(("rate", self.rate.to_json()));
        fields.push(("skew", self.skew.to_json()));
        fields.push((
            "faults",
            Json::Arr(self.faults.iter().map(FaultSpec::to_json).collect()),
        ));
        json::obj(fields)
    }

    /// Parse and structurally check a scenario object. The schema tag must
    /// match [`SCENARIO_SCHEMA`]; unknown tags are a hard error so format
    /// evolution stays explicit.
    pub fn from_json(v: &Json) -> Result<ScenarioSpec, String> {
        let schema = v.field_str("schema").map_err(|e| e.to_string())?;
        require(
            schema == SCENARIO_SCHEMA,
            &format!("unsupported scenario schema `{schema}` (want `{SCENARIO_SCHEMA}`)"),
        )?;
        let methods = v
            .field_array("methods")
            .map_err(|e| e.to_string())?
            .iter()
            .map(|m| {
                m.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "methods must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let faults = match v.get("faults") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()
                .ok_or_else(|| "faults must be an array".to_string())?
                .iter()
                .map(FaultSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let cluster_name = v.field_str("cluster").map_err(|e| e.to_string())?;
        let spec = ScenarioSpec {
            name: v.field_str("name").map_err(|e| e.to_string())?.to_string(),
            workload: v
                .field_str("workload")
                .map_err(|e| e.to_string())?
                .to_string(),
            cluster: ClusterKind::from_name(cluster_name)
                .ok_or_else(|| format!("unknown cluster `{cluster_name}`"))?,
            seed: v.field_u64("seed").map_err(|e| e.to_string())?,
            rate_seed: match v.get("rate_seed") {
                None | Some(Json::Null) => None,
                Some(rs) => Some(rs.as_u64().ok_or("rate_seed must be an integer")?),
            },
            horizon_s: v.field_f64("horizon_s").map_err(|e| e.to_string())?,
            rounds: match v.get("rounds") {
                None | Some(Json::Null) => None,
                Some(r) => Some(r.as_u64().ok_or("rounds must be an integer")?),
            },
            methods,
            rate: RateSpec::from_json(v.get("rate").ok_or_else(|| "missing `rate`".to_string())?)?,
            skew: match v.get("skew") {
                None => SkewSpec::None,
                Some(s) => SkewSpec::from_json(s)?,
            },
            faults,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adversarial_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "flash-crowd-test".into(),
            workload: "wordcount".into(),
            cluster: ClusterKind::Paper,
            seed: 7,
            rate_seed: None,
            horizon_s: 3_600.0,
            rounds: None,
            methods: vec!["nostop".into(), "bo".into(), "static".into()],
            rate: RateSpec::FlashCrowd {
                base: Box::new(RateSpec::Sinusoid {
                    base: 150_000.0,
                    amplitude: 40_000.0,
                    period_secs: 1_800.0,
                }),
                mean_gap_secs: 240.0,
                crowd_secs: 60.0,
                pareto_shape: 1.5,
                min_magnitude: 1.2,
                max_magnitude: 4.0,
            },
            skew: SkewSpec::HotKey {
                hot_fraction: 0.1,
                hot_weight: 6.0,
            },
            faults: vec![
                FaultSpec::ExecutorCrash {
                    at_s: 900.0,
                    count: 3,
                    relaunch_after_s: Some(60.0),
                },
                FaultSpec::TaskFailures {
                    from_s: 1_000.0,
                    until_s: 1_300.0,
                    probability: 0.1,
                },
            ],
        }
    }

    #[test]
    fn scenario_round_trips_through_json_text() {
        let spec = adversarial_spec();
        spec.validate().expect("spec is valid");
        let text = spec.to_json().to_string_pretty();
        let parsed = ScenarioSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        // And the re-serialization is byte-identical (ordered keys).
        assert_eq!(parsed.to_json().to_string_pretty(), text);
    }

    #[test]
    fn every_rate_variant_round_trips() {
        let variants = vec![
            RateSpec::Constant { rate: 500.0 },
            RateSpec::UniformRandom {
                min_rate: 100.0,
                max_rate: 900.0,
                hold_secs: 7.0,
            },
            RateSpec::Sinusoid {
                base: 400.0,
                amplitude: 150.0,
                period_secs: 120.0,
            },
            RateSpec::Ramp {
                start_rate: 100.0,
                end_rate: 600.0,
                duration_secs: 300.0,
            },
            RateSpec::Surge {
                base_rate: 300.0,
                magnitude: 3.0,
                surge_secs: 20.0,
                mean_gap_secs: 90.0,
            },
            RateSpec::ParetoBurst {
                base: Box::new(RateSpec::Constant { rate: 1_000.0 }),
                mean_gap_secs: 60.0,
                burst_secs: 10.0,
                pareto_shape: 1.2,
                min_burst_records: 5_000.0,
                max_burst_records: 200_000.0,
            },
            RateSpec::CorrelatedSurge {
                base: Box::new(RateSpec::Ramp {
                    start_rate: 100.0,
                    end_rate: 400.0,
                    duration_secs: 600.0,
                }),
                trigger_seed: 99,
                magnitude: 2.5,
                surge_secs: 30.0,
                mean_gap_secs: 120.0,
            },
        ];
        for spec in variants {
            spec.validate().expect("variant valid");
            let back = RateSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn validation_names_the_defect() {
        let mut spec = adversarial_spec();
        spec.methods.push("magic".into());
        let err = spec.validate().unwrap_err();
        assert!(err.contains("magic"), "{err}");

        let bad_rate = RateSpec::FlashCrowd {
            base: Box::new(RateSpec::Constant { rate: -1.0 }),
            mean_gap_secs: 240.0,
            crowd_secs: 60.0,
            pareto_shape: 1.5,
            min_magnitude: 1.2,
            max_magnitude: 4.0,
        };
        assert!(bad_rate.validate().is_err(), "nested defect surfaces");

        let bad_skew = SkewSpec::HotKey {
            hot_fraction: 1.5,
            hot_weight: 4.0,
        };
        assert!(bad_skew.validate().is_err());

        let bad_fault = FaultSpec::ReceiverOutage {
            from_s: 10.0,
            until_s: 10.0,
        };
        assert!(bad_fault.validate().is_err());
    }

    #[test]
    fn unknown_kinds_and_schemas_are_rejected() {
        let j = Json::parse(r#"{"kind": "fractal"}"#).unwrap();
        assert!(RateSpec::from_json(&j).is_err());
        assert!(SkewSpec::from_json(&j).is_err());
        assert!(FaultSpec::from_json(&j).is_err());
        let old = Json::parse(r#"{"schema": "nostop-scenario/0", "name": "x"}"#).unwrap();
        assert!(ScenarioSpec::from_json(&old)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn hot_key_weights_conserve_and_rank() {
        let skew = SkewSpec::HotKey {
            hot_fraction: 0.125,
            hot_weight: 8.0,
        };
        let w = skew.weights(32).expect("skewed");
        assert_eq!(w.len(), 32);
        assert_eq!(skew.hot_partitions(32), 4);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "weights normalize, sum {sum}");
        assert!(w[0] > w[31], "hot partitions outweigh cold ones");
        assert!(
            (w[0] / w[31] - 8.0).abs() < 1e-12,
            "weight ratio is hot_weight"
        );
        // Imbalance: hottest share relative to uniform.
        let imb = skew.imbalance(32);
        assert!((imb - w[0] * 32.0).abs() < 1e-12);
        assert!(imb > 1.0);
        assert_eq!(SkewSpec::None.imbalance(32), 1.0);
        assert_eq!(SkewSpec::None.weights(32), None);
    }

    #[test]
    fn rate_seed_defaults_to_driver_convention() {
        let mut spec = adversarial_spec();
        assert_eq!(spec.effective_rate_seed(), 7 ^ 0x5EED);
        spec.rate_seed = Some(42);
        assert_eq!(spec.effective_rate_seed(), 42);
    }
}
