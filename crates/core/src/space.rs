//! The configuration space and its scaling.
//!
//! Physical parameters live in heterogeneous units (seconds, executor
//! counts). The paper min–max normalizes every parameter into a common
//! range — `[1, 20]` in the experiments (§5.1, §6.2.1) — so a single gain
//! schedule steps all dimensions commensurately. Physical values are
//! quantized only at the system boundary: executor counts to integers,
//! batch intervals to a configurable step.

/// One tunable physical parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Human-readable name (e.g. `"batch-interval-s"`).
    pub name: String,
    /// Physical lower bound (inclusive).
    pub min: f64,
    /// Physical upper bound (inclusive).
    pub max: f64,
    /// Quantization step applied when producing a physical value
    /// (e.g. `1.0` for executor counts, `0.1` s for intervals). Zero means
    /// continuous.
    pub quantum: f64,
}

impl ParamSpec {
    /// A new spec; panics unless `min < max` and `quantum ≥ 0`.
    pub fn new(name: impl Into<String>, min: f64, max: f64, quantum: f64) -> Self {
        assert!(min < max, "parameter range must be non-degenerate");
        assert!(quantum >= 0.0, "quantum must be non-negative");
        ParamSpec {
            name: name.into(),
            min,
            max,
            quantum,
        }
    }

    /// Snap a physical value to the quantization grid and clamp into range.
    pub fn quantize(&self, value: f64) -> f64 {
        let v = if self.quantum > 0.0 {
            (value / self.quantum).round() * self.quantum
        } else {
            value
        };
        v.clamp(self.min, self.max)
    }
}

/// A set of tunable parameters with a shared scaled optimization range.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    /// The physical parameters, in a fixed order. Index 0 is batch interval
    /// and index 1 is executor count in the paper's instantiation, but the
    /// space is generic in dimension (the paper's future work tunes more).
    pub params: Vec<ParamSpec>,
    /// The common scaled range `[lo, hi]` every parameter maps onto.
    pub scaled_lo: f64,
    /// Upper end of the scaled range.
    pub scaled_hi: f64,
}

impl ConfigSpace {
    /// A space over `params` scaled into `[scaled_lo, scaled_hi]`.
    pub fn new(params: Vec<ParamSpec>, scaled_lo: f64, scaled_hi: f64) -> Self {
        assert!(!params.is_empty(), "need at least one parameter");
        assert!(scaled_lo < scaled_hi, "scaled range must be non-degenerate");
        ConfigSpace {
            params,
            scaled_lo,
            scaled_hi,
        }
    }

    /// The paper's space (§6.2.1): batch interval ∈ [1, 40] s (0.1 s
    /// quantum — Spark intervals are millisecond-granular), executors
    /// ∈ [1, 20] (integer), both scaled into `[1, 20]`.
    pub fn paper_default() -> Self {
        ConfigSpace::new(
            vec![
                ParamSpec::new("batch-interval-s", 1.0, 40.0, 0.1),
                ParamSpec::new("num-executors", 1.0, 20.0, 1.0),
            ],
            1.0,
            20.0,
        )
    }

    /// The extended 8-knob space for high-dimensional tuning (ROADMAP open
    /// item 1): the paper's two parameters followed by six further
    /// Spark-meaningful knobs, all mapped onto simulator mechanics by
    /// `spark-sim`'s `ExtendedConfig`. Dimension order is a stable
    /// contract — index 0/1 must stay batch interval/executors so the
    /// 2-knob controller and the extended arena share one physical-vector
    /// convention (`StreamConfig::from_physical` reads a prefix of it).
    pub fn extended() -> Self {
        ConfigSpace::new(
            vec![
                ParamSpec::new("batch-interval-s", 1.0, 40.0, 0.1),
                ParamSpec::new("num-executors", 1.0, 20.0, 1.0),
                ParamSpec::new("shuffle-partitions", 8.0, 256.0, 8.0),
                ParamSpec::new("memory-fraction", 0.2, 0.9, 0.05),
                ParamSpec::new("receiver-parallelism", 1.0, 8.0, 1.0),
                ParamSpec::new("block-interval-ms", 50.0, 1000.0, 50.0),
                ParamSpec::new("locality-wait-s", 0.0, 10.0, 0.5),
                ParamSpec::new("speculation-threshold", 1.1, 3.0, 0.1),
            ],
            1.0,
            20.0,
        )
    }

    /// Number of tunable dimensions.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Map a physical vector into scaled space (min–max normalization).
    pub fn to_scaled(&self, physical: &[f64]) -> Vec<f64> {
        assert_eq!(physical.len(), self.dim(), "dimension mismatch");
        physical
            .iter()
            .zip(&self.params)
            .map(|(&v, p)| {
                let frac = ((v - p.min) / (p.max - p.min)).clamp(0.0, 1.0);
                self.scaled_lo + frac * (self.scaled_hi - self.scaled_lo)
            })
            .collect()
    }

    /// Map a scaled vector back to physical units, quantizing each
    /// parameter. Scaled inputs outside the range are clamped first
    /// (`checkBound`).
    pub fn to_physical(&self, scaled: &[f64]) -> Vec<f64> {
        assert_eq!(scaled.len(), self.dim(), "dimension mismatch");
        scaled
            .iter()
            .zip(&self.params)
            .map(|(&s, p)| {
                let frac =
                    ((s - self.scaled_lo) / (self.scaled_hi - self.scaled_lo)).clamp(0.0, 1.0);
                p.quantize(p.min + frac * (p.max - p.min))
            })
            .collect()
    }

    /// Clamp a scaled vector into the scaled box (the paper's `checkBound`).
    pub fn clamp_scaled(&self, scaled: &[f64]) -> Vec<f64> {
        scaled
            .iter()
            .map(|&s| s.clamp(self.scaled_lo, self.scaled_hi))
            .collect()
    }

    /// The scaled-space midpoint — the paper's initial point
    /// `θ_initial = {10, 10}` falls out of this for the default space.
    pub fn scaled_midpoint(&self) -> Vec<f64> {
        vec![(self.scaled_lo + self.scaled_hi) / 2.0; self.dim()]
    }

    /// Per-dimension lower bounds in scaled space (all equal by design).
    pub fn scaled_lower(&self) -> Vec<f64> {
        vec![self.scaled_lo; self.dim()]
    }

    /// Per-dimension upper bounds in scaled space.
    pub fn scaled_upper(&self) -> Vec<f64> {
        vec![self.scaled_hi; self.dim()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let s = ConfigSpace::paper_default();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.scaled_midpoint(), vec![10.5, 10.5]);
        assert_eq!(s.params[0].name, "batch-interval-s");
        assert_eq!(s.params[1].name, "num-executors");
    }

    #[test]
    fn extended_space_shape() {
        let s = ConfigSpace::extended();
        assert_eq!(s.dim(), 8);
        // The paper's two knobs stay at the front, with identical ranges.
        let paper = ConfigSpace::paper_default();
        assert_eq!(s.params[0], paper.params[0]);
        assert_eq!(s.params[1], paper.params[1]);
        // Every knob round-trips through scaling at its endpoints.
        let mins: Vec<f64> = s.params.iter().map(|p| p.min).collect();
        let maxs: Vec<f64> = s.params.iter().map(|p| p.max).collect();
        assert_eq!(s.to_physical(&s.to_scaled(&mins)), mins);
        assert_eq!(s.to_physical(&s.to_scaled(&maxs)), maxs);
        // Quantization respects each knob's grid at the midpoint.
        let mid = s.to_physical(&s.scaled_midpoint());
        assert_eq!(mid[2] % 8.0, 0.0, "shuffle partitions on the grid");
        assert_eq!(mid[4].fract(), 0.0, "receiver parallelism integral");
        assert_eq!(mid[5] % 50.0, 0.0, "block interval on the grid");
    }

    #[test]
    fn scaling_round_trips_at_grid_points() {
        let s = ConfigSpace::paper_default();
        // Executor counts are integers: every integer in [1,20] must
        // round-trip exactly.
        for e in 1..=20 {
            let phys = vec![10.0, e as f64];
            let back = s.to_physical(&s.to_scaled(&phys));
            assert_eq!(back[1], e as f64);
        }
        // Interval quantum 0.1 s.
        for i in [1.0, 5.5, 10.0, 39.9, 40.0] {
            let phys = vec![i, 10.0];
            let back = s.to_physical(&s.to_scaled(&phys));
            assert!((back[0] - i).abs() < 1e-9, "{i} -> {}", back[0]);
        }
    }

    #[test]
    fn endpoints_map_to_endpoints() {
        let s = ConfigSpace::paper_default();
        assert_eq!(s.to_scaled(&[1.0, 1.0]), vec![1.0, 1.0]);
        assert_eq!(s.to_scaled(&[40.0, 20.0]), vec![20.0, 20.0]);
        assert_eq!(s.to_physical(&[1.0, 1.0]), vec![1.0, 1.0]);
        assert_eq!(s.to_physical(&[20.0, 20.0]), vec![40.0, 20.0]);
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let s = ConfigSpace::paper_default();
        let phys = s.to_physical(&[-5.0, 100.0]);
        assert_eq!(phys, vec![1.0, 20.0]);
        let scaled = s.to_scaled(&[0.0, 50.0]);
        assert_eq!(scaled, vec![1.0, 20.0]);
        assert_eq!(s.clamp_scaled(&[0.5, 25.0]), vec![1.0, 20.0]);
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let p = ParamSpec::new("execs", 1.0, 20.0, 1.0);
        assert_eq!(p.quantize(7.4), 7.0);
        assert_eq!(p.quantize(7.5), 8.0);
        assert_eq!(p.quantize(0.2), 1.0);
        assert_eq!(p.quantize(99.0), 20.0);
        let c = ParamSpec::new("cont", 0.0, 1.0, 0.0);
        assert_eq!(c.quantize(0.123456), 0.123456);
    }

    #[test]
    fn custom_three_dimensional_space() {
        // The paper's future work: more parameters. The space is generic.
        let s = ConfigSpace::new(
            vec![
                ParamSpec::new("interval", 1.0, 40.0, 0.1),
                ParamSpec::new("executors", 1.0, 20.0, 1.0),
                ParamSpec::new("parallelism", 8.0, 256.0, 8.0),
            ],
            1.0,
            20.0,
        );
        assert_eq!(s.dim(), 3);
        let phys = s.to_physical(&[10.5, 10.5, 10.5]);
        assert_eq!(phys[2] % 8.0, 0.0, "quantized to grid: {phys:?}");
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_param_range_panics() {
        let _ = ParamSpec::new("bad", 5.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let s = ConfigSpace::paper_default();
        let _ = s.to_scaled(&[1.0]);
    }
}
