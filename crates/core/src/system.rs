//! The black-box boundary between NoStop and the system it tunes.
//!
//! §4.2.1: "the Spark execution workflow could be treated as a black box,
//! where the input is the set of control parameters θ and the output is the
//! objective G(θ)." This module is that boundary. Anything that can apply a
//! configuration and report per-batch metrics can be tuned: the bundled
//! discrete-event simulator, or a thin REST client polling a real Spark
//! Streaming listener endpoint (the only integration possible without JVM
//! bindings — see DESIGN.md).

use nostop_simcore::json::{self, Json};

/// Metrics for one completed micro-batch, as a streaming listener reports
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchObservation {
    /// Completion wall/virtual time, seconds since job start.
    pub completed_at_s: f64,
    /// The batch interval this batch was cut with, seconds.
    pub interval_s: f64,
    /// Batch processing time, seconds.
    pub processing_s: f64,
    /// Scheduling delay (queue wait before processing began), seconds.
    pub scheduling_delay_s: f64,
    /// Records in the batch.
    pub records: u64,
    /// Observed ingest rate for this batch, records/second.
    pub input_rate: f64,
    /// Executors live while the batch ran.
    pub num_executors: u32,
    /// Batches still waiting in the queue when this one completed — the
    /// controller's settling barrier watches this drain to zero.
    pub queued_batches: u32,
    /// Executors lost to failures since the previous batch completed
    /// (0 when the platform doesn't report failures). A non-zero value
    /// marks the measurement as fault-contaminated: the controller
    /// discards it from gradient windows and feeds the reset rule.
    pub executor_failures: u32,
}

impl BatchObservation {
    /// End-to-end delay for a worst-case record in this batch: it waits a
    /// full interval in the divider, then the scheduling delay, then the
    /// processing time.
    pub fn end_to_end_s(&self) -> f64 {
        self.interval_s + self.scheduling_delay_s + self.processing_s
    }

    /// True when this batch met the stability constraint (Eq. 2).
    pub fn is_stable(&self) -> bool {
        self.processing_s <= self.interval_s
    }

    /// Serialize as a JSON object (fixed key order).
    pub fn to_json(&self) -> String {
        json::obj(vec![
            ("completedAtS", json::num(self.completed_at_s)),
            ("intervalS", json::num(self.interval_s)),
            ("processingS", json::num(self.processing_s)),
            ("schedulingDelayS", json::num(self.scheduling_delay_s)),
            ("records", json::uint(self.records)),
            ("inputRate", json::num(self.input_rate)),
            ("numExecutors", json::uint(self.num_executors as u64)),
            ("queuedBatches", json::uint(self.queued_batches as u64)),
            (
                "executorFailures",
                json::uint(self.executor_failures as u64),
            ),
        ])
        .to_string()
    }

    /// Parse from the JSON produced by [`BatchObservation::to_json`].
    pub fn from_json(text: &str) -> Result<Self, json::Error> {
        let v = Json::parse(text)?;
        Ok(BatchObservation {
            completed_at_s: v.field_f64("completedAtS")?,
            interval_s: v.field_f64("intervalS")?,
            processing_s: v.field_f64("processingS")?,
            scheduling_delay_s: v.field_f64("schedulingDelayS")?,
            records: v.field_u64("records")?,
            input_rate: v.field_f64("inputRate")?,
            num_executors: v.field_u64("numExecutors")? as u32,
            queued_batches: v.field_u64("queuedBatches")? as u32,
            // Optional on the wire: pre-fault-layer producers omit it.
            executor_failures: v.field_u64_or_zero("executorFailures")? as u32,
        })
    }
}

/// An averaged measurement over a window of batches — the `y(θ)` SPSA
/// consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The interval in force, seconds (taken from the last batch).
    pub interval_s: f64,
    /// Mean processing time over the window, seconds.
    pub processing_s: f64,
    /// Mean scheduling delay over the window, seconds.
    pub scheduling_delay_s: f64,
    /// Mean end-to-end delay over the window, seconds.
    pub end_to_end_s: f64,
    /// Mean input rate over the window, records/second.
    pub input_rate: f64,
    /// Batches averaged.
    pub batches: usize,
}

impl Measurement {
    /// Serialize as a [`Json`] value (used inside trace records).
    pub fn to_json_value(&self) -> Json {
        json::obj(vec![
            ("intervalS", json::num(self.interval_s)),
            ("processingS", json::num(self.processing_s)),
            ("schedulingDelayS", json::num(self.scheduling_delay_s)),
            ("endToEndS", json::num(self.end_to_end_s)),
            ("inputRate", json::num(self.input_rate)),
            ("batches", json::uint(self.batches as u64)),
        ])
    }

    /// Parse from the value produced by [`Measurement::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<Self, json::Error> {
        Ok(Measurement {
            interval_s: v.field_f64("intervalS")?,
            processing_s: v.field_f64("processingS")?,
            scheduling_delay_s: v.field_f64("schedulingDelayS")?,
            end_to_end_s: v.field_f64("endToEndS")?,
            input_rate: v.field_f64("inputRate")?,
            batches: v.field_u64("batches")? as usize,
        })
    }

    /// Average a window of observations. Panics on an empty window.
    pub fn from_window(window: &[BatchObservation]) -> Self {
        assert!(!window.is_empty(), "cannot measure an empty window");
        let n = window.len() as f64;
        Measurement {
            interval_s: window.last().unwrap().interval_s,
            processing_s: window.iter().map(|b| b.processing_s).sum::<f64>() / n,
            scheduling_delay_s: window.iter().map(|b| b.scheduling_delay_s).sum::<f64>() / n,
            end_to_end_s: window.iter().map(|b| b.end_to_end_s()).sum::<f64>() / n,
            input_rate: window.iter().map(|b| b.input_rate).sum::<f64>() / n,
            batches: window.len(),
        }
    }
}

/// A tunable streaming system, as NoStop sees it.
pub trait StreamingSystem {
    /// Apply a configuration in *physical* units, in the order declared by
    /// the [`crate::space::ConfigSpace`] — `[batch_interval_s,
    /// num_executors, …]` for the paper's space. Takes effect per the
    /// system's semantics (typically at the next batch boundary).
    fn apply_config(&mut self, physical: &[f64]);

    /// Run the system until the next batch completes and return its
    /// metrics. This is the blocking "getSystemStatus" of Algorithm 2.
    fn next_batch(&mut self) -> BatchObservation;

    /// Current system time in seconds (virtual or wall).
    fn now_s(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(interval: f64, proc: f64, sched: f64) -> BatchObservation {
        BatchObservation {
            completed_at_s: 0.0,
            interval_s: interval,
            processing_s: proc,
            scheduling_delay_s: sched,
            records: 100,
            input_rate: 100.0 / interval,
            num_executors: 4,
            queued_batches: 0,
            executor_failures: 0,
        }
    }

    #[test]
    fn end_to_end_composes_three_terms() {
        let b = obs(10.0, 6.0, 2.0);
        assert_eq!(b.end_to_end_s(), 18.0);
    }

    #[test]
    fn stability_is_the_eq2_constraint() {
        assert!(obs(10.0, 9.9, 0.0).is_stable());
        assert!(obs(10.0, 10.0, 0.0).is_stable());
        assert!(!obs(10.0, 10.1, 0.0).is_stable());
    }

    #[test]
    fn measurement_averages_window() {
        let w = vec![obs(10.0, 4.0, 1.0), obs(10.0, 6.0, 3.0)];
        let m = Measurement::from_window(&w);
        assert_eq!(m.processing_s, 5.0);
        assert_eq!(m.scheduling_delay_s, 2.0);
        assert_eq!(m.end_to_end_s, 17.0);
        assert_eq!(m.batches, 2);
        assert_eq!(m.interval_s, 10.0);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        let _ = Measurement::from_window(&[]);
    }

    #[test]
    fn observation_serializes_to_json() {
        let b = obs(10.0, 5.0, 0.5);
        let json = b.to_json();
        let back = BatchObservation::from_json(&json).unwrap();
        assert_eq!(b, back);
    }
}
