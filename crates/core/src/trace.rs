//! Structured optimization traces.
//!
//! Every controller round appends one [`RoundRecord`]; the Fig-6 style
//! "optimization evolution" plots (end-to-end delay and batch interval vs.
//! round) come straight out of these, and the experiment harness uses them
//! to count configuration steps and search time for the Fig-8 comparison.

use crate::system::Measurement;
use nostop_simcore::json::{self, Json};

/// What a controller round did.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundKind {
    /// A full SPSA iteration: two perturbed measurements and a step.
    Optimized {
        /// Measurement at `θ⁺`.
        plus: Measurement,
        /// Measurement at `θ⁻`.
        minus: Measurement,
        /// Objective value `y(θ⁺)`.
        y_plus: f64,
        /// Objective value `y(θ⁻)`.
        y_minus: f64,
        /// Gradient-estimate L2 norm.
        grad_norm: f64,
    },
    /// The controller was paused and merely observed the system.
    Paused {
        /// The observation window's averages.
        observed: Measurement,
    },
    /// The reset rule fired; coefficients and iterate were restarted.
    Reset,
    /// The parked configuration went unstable; optimization resumed
    /// without a reset.
    Woke,
}

/// One controller round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (monotonically increasing across resets).
    pub round: u64,
    /// SPSA iteration index at the *start* of the round.
    pub k: u64,
    /// System time when the round finished, seconds.
    pub t_s: f64,
    /// The iterate `θ` (scaled space) after the round.
    pub theta_scaled: Vec<f64>,
    /// The iterate in physical units after the round.
    pub theta_physical: Vec<f64>,
    /// Penalty coefficient ρ in force during the round.
    pub rho: f64,
    /// Gain `a_k` (0 for paused/reset rounds).
    pub a_k: f64,
    /// Perturbation size `c_k` (0 for paused/reset rounds).
    pub c_k: f64,
    /// Whether the controller is paused after this round.
    pub paused_after: bool,
    /// What happened.
    pub kind: RoundKind,
}

/// The full trace of a controller run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Rounds, in order.
    pub rounds: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a round.
    pub fn push(&mut self, r: RoundRecord) {
        self.rounds.push(r);
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Rounds that performed an SPSA step (configuration changes = 2 ×
    /// this count — the Fig-8 "configure steps" metric).
    pub fn optimization_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| matches!(r.kind, RoundKind::Optimized { .. }))
            .count()
    }

    /// Number of resets that fired.
    pub fn resets(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| matches!(r.kind, RoundKind::Reset))
            .count()
    }

    /// Time of the first round after which the controller stayed paused
    /// until the end of the trace — the Fig-8 "search time" proxy.
    pub fn convergence_time_s(&self) -> Option<f64> {
        let mut candidate: Option<f64> = None;
        for r in &self.rounds {
            if r.paused_after {
                candidate.get_or_insert(r.t_s);
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// `(round index, end-to-end delay)` series for Fig-6-style plots,
    /// using the mean of the two perturbed measurements for optimization
    /// rounds and the observed mean for paused rounds.
    pub fn delay_series(&self) -> Vec<(f64, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| match &r.kind {
                RoundKind::Optimized { plus, minus, .. } => Some((
                    r.round as f64,
                    (plus.end_to_end_s + minus.end_to_end_s) / 2.0,
                )),
                RoundKind::Paused { observed } => Some((r.round as f64, observed.end_to_end_s)),
                RoundKind::Reset | RoundKind::Woke => None,
            })
            .collect()
    }

    /// `(round index, batch interval)` series for Fig-6-style plots.
    pub fn interval_series(&self) -> Vec<(f64, f64)> {
        self.rounds
            .iter()
            .map(|r| (r.round as f64, r.theta_physical[0]))
            .collect()
    }

    /// Serialize the trace as JSON (one object; pretty-printed).
    pub fn to_json(&self) -> String {
        let rounds: Vec<Json> = self.rounds.iter().map(round_to_json).collect();
        json::obj(vec![("rounds", Json::Arr(rounds))]).to_string_pretty()
    }

    /// Parse a trace serialized by [`Trace::to_json`].
    pub fn from_json(text: &str) -> Result<Self, json::Error> {
        let v = Json::parse(text)?;
        let rounds = v
            .field_array("rounds")?
            .iter()
            .map(round_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { rounds })
    }
}

fn round_to_json(r: &RoundRecord) -> Json {
    let kind = match &r.kind {
        RoundKind::Optimized {
            plus,
            minus,
            y_plus,
            y_minus,
            grad_norm,
        } => json::obj(vec![
            ("kind", json::str("optimized")),
            ("plus", plus.to_json_value()),
            ("minus", minus.to_json_value()),
            ("yPlus", json::num(*y_plus)),
            ("yMinus", json::num(*y_minus)),
            ("gradNorm", json::num(*grad_norm)),
        ]),
        RoundKind::Paused { observed } => json::obj(vec![
            ("kind", json::str("paused")),
            ("observed", observed.to_json_value()),
        ]),
        RoundKind::Reset => json::obj(vec![("kind", json::str("reset"))]),
        RoundKind::Woke => json::obj(vec![("kind", json::str("woke"))]),
    };
    json::obj(vec![
        ("round", json::uint(r.round)),
        ("k", json::uint(r.k)),
        ("tS", json::num(r.t_s)),
        ("thetaScaled", json::f64_array(&r.theta_scaled)),
        ("thetaPhysical", json::f64_array(&r.theta_physical)),
        ("rho", json::num(r.rho)),
        ("aK", json::num(r.a_k)),
        ("cK", json::num(r.c_k)),
        ("pausedAfter", Json::Bool(r.paused_after)),
        ("kind", kind),
    ])
}

fn round_from_json(v: &Json) -> Result<RoundRecord, json::Error> {
    let kv = v.get("kind").ok_or_else(|| json::Error {
        at: 0,
        msg: "missing field `kind`".into(),
    })?;
    let kind = match kv.field_str("kind")? {
        "optimized" => RoundKind::Optimized {
            plus: Measurement::from_json_value(kv.get("plus").ok_or_else(|| json::Error {
                at: 0,
                msg: "missing field `plus`".into(),
            })?)?,
            minus: Measurement::from_json_value(kv.get("minus").ok_or_else(|| json::Error {
                at: 0,
                msg: "missing field `minus`".into(),
            })?)?,
            y_plus: kv.field_f64("yPlus")?,
            y_minus: kv.field_f64("yMinus")?,
            grad_norm: kv.field_f64("gradNorm")?,
        },
        "paused" => RoundKind::Paused {
            observed: Measurement::from_json_value(kv.get("observed").ok_or_else(|| {
                json::Error {
                    at: 0,
                    msg: "missing field `observed`".into(),
                }
            })?)?,
        },
        "reset" => RoundKind::Reset,
        "woke" => RoundKind::Woke,
        other => {
            return Err(json::Error {
                at: 0,
                msg: format!("unknown round kind `{other}`"),
            })
        }
    };
    Ok(RoundRecord {
        round: v.field_u64("round")?,
        k: v.field_u64("k")?,
        t_s: v.field_f64("tS")?,
        theta_scaled: v.field_f64_array("thetaScaled")?,
        theta_physical: v.field_f64_array("thetaPhysical")?,
        rho: v.field_f64("rho")?,
        a_k: v.field_f64("aK")?,
        c_k: v.field_f64("cK")?,
        paused_after: v.field_bool("pausedAfter")?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas() -> Measurement {
        Measurement {
            interval_s: 10.0,
            processing_s: 5.0,
            scheduling_delay_s: 0.0,
            end_to_end_s: 15.0,
            input_rate: 1_000.0,
            batches: 3,
        }
    }

    fn record(round: u64, kind: RoundKind, paused: bool) -> RoundRecord {
        RoundRecord {
            round,
            k: round,
            t_s: round as f64 * 60.0,
            theta_scaled: vec![10.0, 10.0],
            theta_physical: vec![20.0, 10.0],
            rho: 1.0,
            a_k: 1.0,
            c_k: 2.0,
            paused_after: paused,
            kind,
        }
    }

    fn optimized() -> RoundKind {
        RoundKind::Optimized {
            plus: meas(),
            minus: meas(),
            y_plus: 10.0,
            y_minus: 11.0,
            grad_norm: 0.5,
        }
    }

    #[test]
    fn counts_round_kinds() {
        let mut t = Trace::new();
        t.push(record(0, optimized(), false));
        t.push(record(1, RoundKind::Reset, false));
        t.push(record(2, optimized(), true));
        t.push(record(3, RoundKind::Paused { observed: meas() }, true));
        assert_eq!(t.len(), 4);
        assert_eq!(t.optimization_rounds(), 2);
        assert_eq!(t.resets(), 1);
    }

    #[test]
    fn convergence_time_is_start_of_final_pause_streak() {
        let mut t = Trace::new();
        t.push(record(0, optimized(), false));
        t.push(record(1, optimized(), true)); // paused at t=60…
        t.push(record(2, RoundKind::Paused { observed: meas() }, true));
        assert_eq!(t.convergence_time_s(), Some(60.0));
        // …but a later unpause invalidates that streak.
        t.push(record(3, optimized(), false));
        assert_eq!(t.convergence_time_s(), None);
        t.push(record(4, optimized(), true));
        assert_eq!(t.convergence_time_s(), Some(240.0));
    }

    #[test]
    fn series_extract_expected_columns() {
        let mut t = Trace::new();
        t.push(record(0, optimized(), false));
        t.push(record(1, RoundKind::Reset, false));
        t.push(record(2, RoundKind::Paused { observed: meas() }, true));
        let delays = t.delay_series();
        assert_eq!(delays.len(), 2); // reset rounds contribute no delay
        assert_eq!(delays[0], (0.0, 15.0));
        let intervals = t.interval_series();
        assert_eq!(intervals.len(), 3);
        assert_eq!(intervals[0], (0.0, 20.0));
    }

    #[test]
    fn json_round_trips() {
        let mut t = Trace::new();
        t.push(record(0, optimized(), false));
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.rounds, t.rounds);
    }
}
