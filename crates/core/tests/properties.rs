//! Property-based tests for the optimizer core.

use nostop_core::objective::PenaltySchedule;
use nostop_core::policy::PauseRule;
use nostop_core::sa::{GainSchedule, Spsa, SpsaParams};
use nostop_core::space::{ConfigSpace, ParamSpec};
use nostop_simcore::SimRng;
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    (1.0f64..50.0, 60.0f64..500.0, 1.0f64..10.0, 15.0f64..100.0).prop_map(
        |(min_a, max_a, min_b, max_b)| {
            ConfigSpace::new(
                vec![
                    ParamSpec::new("a", min_a, max_a, 0.0),
                    ParamSpec::new("b", min_b, max_b, 1.0),
                ],
                1.0,
                20.0,
            )
        },
    )
}

proptest! {
    #[test]
    fn scaling_round_trips_within_quantum(space in arb_space(), fa in 0.0f64..1.0, fb in 0.0f64..1.0) {
        let phys = vec![
            space.params[0].min + fa * (space.params[0].max - space.params[0].min),
            space.params[1].min + fb * (space.params[1].max - space.params[1].min),
        ];
        let back = space.to_physical(&space.to_scaled(&phys));
        // Continuous dim: exact (within float noise); quantized dim:
        // within half a quantum.
        prop_assert!((back[0] - phys[0]).abs() < 1e-6 * space.params[0].max);
        prop_assert!((back[1] - phys[1]).abs() <= 0.5 + 1e-9);
    }

    #[test]
    fn to_physical_always_in_range(space in arb_space(), s1 in -100.0f64..100.0, s2 in -100.0f64..100.0) {
        let phys = space.to_physical(&[s1, s2]);
        for (v, p) in phys.iter().zip(&space.params) {
            prop_assert!(*v >= p.min - 1e-9 && *v <= p.max + 1e-9);
        }
    }

    #[test]
    fn clamp_scaled_is_idempotent_and_bounded(space in arb_space(), s1 in -100.0f64..100.0, s2 in -100.0f64..100.0) {
        let once = space.clamp_scaled(&[s1, s2]);
        let twice = space.clamp_scaled(&once);
        prop_assert_eq!(&once, &twice);
        for v in once {
            prop_assert!((1.0..=20.0).contains(&v));
        }
    }

    #[test]
    fn valid_gain_exponents_pass_all_conditions(
        alpha in 0.51f64..1.0,
        gamma_frac in 0.01f64..0.99,
        a in 0.1f64..100.0,
        c in 0.1f64..10.0,
        big_a in 0.0f64..100.0,
    ) {
        // gamma < alpha - 0.5 guarantees 2(alpha - gamma) > 1.
        let gamma = (alpha - 0.5) * gamma_frac;
        prop_assume!(gamma > 0.0);
        let g = GainSchedule { a, big_a, c, alpha, gamma };
        prop_assert!(g.satisfies_convergence(), "{:?}", g.check_conditions());
        // Gains decay monotonically.
        prop_assert!(g.a_k(0) > g.a_k(10));
        prop_assert!(g.c_k(0) > g.c_k(10));
    }

    #[test]
    fn gain_violations_are_caught(alpha in 1.01f64..3.0) {
        let g = GainSchedule { alpha, ..GainSchedule::paper_default() };
        prop_assert!(!g.check_conditions().sum_ak_diverges);
    }

    #[test]
    fn spsa_iterates_never_leave_bounds(
        seed in any::<u64>(),
        start1 in 1.0f64..20.0,
        start2 in 1.0f64..20.0,
        ys in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40),
    ) {
        // Whatever (even adversarial) measurements come back, checkBound
        // keeps every iterate and every probe inside the box.
        let mut spsa = Spsa::new(
            SpsaParams::paper_default(2),
            vec![start1, start2],
            SimRng::seed_from_u64(seed),
        );
        for (y_plus, y_minus) in ys {
            let p = spsa.propose();
            for probe in [&p.theta_plus, &p.theta_minus] {
                for v in probe {
                    prop_assert!((1.0..=20.0).contains(v));
                }
            }
            let info = spsa.update(&p, y_plus, y_minus);
            for v in &info.theta {
                prop_assert!((1.0..=20.0).contains(v));
            }
        }
    }

    #[test]
    fn spsa_identical_measurements_freeze_the_iterate(seed in any::<u64>(), y in -50.0f64..50.0) {
        let mut spsa = Spsa::new(
            SpsaParams::paper_default(2),
            vec![10.0, 10.0],
            SimRng::seed_from_u64(seed),
        );
        let before = spsa.theta().to_vec();
        let p = spsa.propose();
        let info = spsa.update(&p, y, y);
        prop_assert_eq!(info.theta, before, "zero gradient, zero step");
    }

    #[test]
    fn penalty_objective_properties(
        interval in 0.1f64..40.0,
        proc in 0.0f64..80.0,
        advances in 0usize..40,
    ) {
        let mut p = PenaltySchedule::paper_default();
        for _ in 0..advances {
            p.advance();
        }
        let g = p.objective(interval, proc);
        // Never below the interval; equal exactly when stable.
        prop_assert!(g >= interval - 1e-12);
        if proc <= interval {
            prop_assert!((g - interval).abs() < 1e-12);
        } else {
            prop_assert!(g > interval);
        }
        // Rho stays within [init, max].
        prop_assert!(p.rho() >= 1.0 - 1e-12 && p.rho() <= 2.0 + 1e-12);
    }

    #[test]
    fn pause_rule_keeps_the_n_smallest(delays in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut rule = PauseRule::new(10, 1.0);
        for &d in &delays {
            rule.record(d);
        }
        let mut sorted = delays.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect_min = sorted[0];
        prop_assert_eq!(rule.best_delay(), Some(expect_min));
        prop_assert!(rule.tracked() <= 10);
        // should_pause only possible once 10 samples exist.
        if delays.len() < 10 {
            prop_assert!(!rule.should_pause());
        }
    }
}
