//! A self-contained, offline drop-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The real `criterion` crate lives on crates.io; this environment builds
//! hermetically with no registry access, so the workspace ships the slice
//! its benches exercise: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`Throughput`], [`Bencher::iter`],
//! [`Bencher::iter_batched`] with [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark warms up for
//! ~100 ms, then measures wall-clock time for ~400 ms (tunable with
//! `CRITERION_MEASURE_MS`) and reports the mean time per iteration plus
//! derived throughput. There is no statistical machinery — the numbers
//! are for regression *trajectories*, not microsecond-level claims.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub use std::hint::black_box;

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400u64);
    Duration::from_millis(ms)
}

fn warmup_budget() -> Duration {
    measure_budget() / 4
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How batched inputs are grouped; the shim times each routine call
/// individually, so the variants are behaviorally identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion would batch many per allocation.
    SmallInput,
    /// Inputs are large; criterion would batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One benchmark's measured result.
#[derive(Debug, Clone, Copy)]
struct Sample {
    total: Duration,
    iters: u64,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    sample: Option<Sample>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { sample: None }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = warmup_budget();
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // Size inner batches to ~1 ms so Instant overhead stays negligible
        // even for nanosecond-scale routines.
        let per_iter = start.elapsed().as_nanos() as u64 / warm_iters;
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);
        let budget = measure_budget();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.sample = Some(Sample { total, iters });
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup = warmup_budget();
        let start = Instant::now();
        let mut warmed = false;
        while start.elapsed() < warmup || !warmed {
            let input = setup();
            black_box(routine(input));
            warmed = true;
        }
        let budget = measure_budget();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.sample = Some(Sample { total, iters });
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Read the benchmark-name filter from the command line (the first
    /// non-flag argument, as `cargo bench -- <filter>` passes it).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(".rs"));
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one standalone benchmark.
    pub fn bench_function<R>(&mut self, name: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self, &name, None, routine);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

fn run_one<R: FnMut(&mut Bencher)>(
    c: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut routine: R,
) {
    if !c.matches(name) {
        return;
    }
    let mut b = Bencher::new();
    routine(&mut b);
    let Some(sample) = b.sample else {
        println!("{name:<50} (no measurement recorded)");
        return;
    };
    let ns = sample.ns_per_iter();
    let time = if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:>12.1} elem/s", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>12.1} B/s", n as f64 * 1e9 / ns)
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: {time:>12}/iter  ({} iters){thrpt}",
        sample.iters
    );
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &full, self.throughput, routine);
        self
    }

    /// Finish the group (a no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "20");
        let mut b = Bencher::new();
        b.iter(|| black_box(41u64) + 1);
        let s = b.sample.expect("sample recorded");
        assert!(s.iters > 0);
        assert!(s.total > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_MEASURE_MS", "20");
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.sample.expect("sample").iters > 0);
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("engine".into()),
        };
        assert!(c.matches("engine_batches/word_count"));
        assert!(!c.matches("controller/propose"));
        let open = Criterion { filter: None };
        assert!(open.matches("anything"));
    }
}
