//! Adversarial arrival combinators: the traffic shapes production sees
//! and the paper's evaluation does not.
//!
//! Three composable wrappers over any base [`RateProcess`]:
//!
//! * [`FlashCrowdRate`] — Poisson onsets whose *magnitude* is drawn
//!   per-event from a capped Pareto. Over a diurnal sinusoid this is the
//!   "flash crowd" regime where NoStop's std-dev reset trigger fires
//!   constantly.
//! * [`ParetoBurstRate`] — Poisson onsets each injecting a Pareto-sized
//!   *record count*, spread over a burst window as surplus rate. Models
//!   heavy-tailed upload/batch-arrival sizes rather than multiplicative
//!   load.
//! * [`CorrelatedSurgeRate`] — surges driven by a *shared* trigger
//!   stream: every instance built with the same `trigger_seed` surges at
//!   the same instants, independent of its own fork — N tenants spike
//!   together the way correlated production incidents make them.
//!
//! ## RNG stream map
//!
//! Like `FaultPlan`, every draw comes off a dedicated fork so trajectories
//! are pure functions of `(spec, rng)` and composition never perturbs the
//! base process's stream:
//!
//! | stream | constant | used for |
//! |---|---|---|
//! | base | [`ADV_BASE_STREAM`] | the wrapped base process's own draws |
//! | event | [`ADV_EVENT_STREAM`] | onset gaps + Pareto magnitudes/sizes |
//! | trigger | [`TRIGGER_STREAM`] | shared onsets, forked off `trigger_seed` (not the build rng) |
//!
//! `RateSpecExt::build` applies this split when instantiating the
//! composite `RateSpec` variants; nesting composites re-splits at every
//! level, so a flash crowd over a Pareto-burst base is well-defined.

use crate::rate::{RateProcess, SurgeRate};
use nostop_simcore::{SimDuration, SimRng, SimTime};

/// Fork stream for a composite's wrapped base process.
pub const ADV_BASE_STREAM: u64 = 0xADB0;
/// Fork stream for a composite's own event draws (onsets, Pareto draws).
pub const ADV_EVENT_STREAM: u64 = 0xADE1;
/// Fork stream applied to `trigger_seed` for correlated-surge onsets.
pub const TRIGGER_STREAM: u64 = 0xAD72;

/// One draw from a Pareto(shape, scale) distribution, truncated at `cap`
/// by clamping (the tail mass lands on the cap rather than being
/// redrawn — one RNG draw per event keeps replay trivially aligned).
///
/// Inverse-CDF: `scale / U^(1/shape)` with `U = 1 - u ∈ (0, 1]`, so the
/// result is always `>= scale` and finite before the cap applies.
pub fn pareto_draw(rng: &mut SimRng, shape: f64, scale: f64, cap: f64) -> f64 {
    debug_assert!(shape > 0.0 && scale > 0.0 && cap >= scale);
    let u = rng.uniform(0.0, 1.0); // [0, 1) => 1 - u in (0, 1]
    (scale / (1.0 - u).powf(1.0 / shape)).min(cap)
}

/// Poisson flash crowds with per-event Pareto magnitudes over any base.
///
/// Between crowds the base passes through untouched; during a crowd the
/// base is multiplied by that crowd's magnitude. Onset bookkeeping is
/// lazy, exactly like [`SurgeRate`]: state advances inside `rate_at`, and
/// `next_change_at` refuses to promise anything for stale queries.
pub struct FlashCrowdRate {
    base: Box<dyn RateProcess>,
    mean_gap_secs: f64,
    crowd_secs: f64,
    pareto_shape: f64,
    min_magnitude: f64,
    max_magnitude: f64,
    rng: SimRng,
    crowd_until: SimTime,
    magnitude: f64,
    next_onset: SimTime,
}

impl FlashCrowdRate {
    /// Wrap `base` with flash crowds: exponential gaps with mean
    /// `mean_gap_secs` between onsets, each crowd lasting `crowd_secs`
    /// with magnitude `Pareto(pareto_shape, min_magnitude)` capped at
    /// `max_magnitude`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        base: Box<dyn RateProcess>,
        mean_gap_secs: f64,
        crowd_secs: f64,
        pareto_shape: f64,
        min_magnitude: f64,
        max_magnitude: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            mean_gap_secs > 0.0 && crowd_secs > 0.0,
            "durations must be positive"
        );
        assert!(pareto_shape > 0.0, "pareto shape must be positive");
        assert!(
            min_magnitude >= 1.0 && max_magnitude >= min_magnitude,
            "magnitudes must satisfy 1 <= min <= max"
        );
        let first = rng.exponential(1.0 / mean_gap_secs);
        FlashCrowdRate {
            base,
            mean_gap_secs,
            crowd_secs,
            pareto_shape,
            min_magnitude,
            max_magnitude,
            rng,
            crowd_until: SimTime::ZERO,
            magnitude: 1.0,
            next_onset: SimTime::from_secs_f64(first),
        }
    }
}

impl RateProcess for FlashCrowdRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        while t >= self.next_onset {
            self.crowd_until = self.next_onset + SimDuration::from_secs_f64(self.crowd_secs);
            self.magnitude = pareto_draw(
                &mut self.rng,
                self.pareto_shape,
                self.min_magnitude,
                self.max_magnitude,
            );
            let gap = self.rng.exponential(1.0 / self.mean_gap_secs);
            self.next_onset += SimDuration::from_secs_f64(self.crowd_secs + gap);
        }
        let base = self.base.rate_at(t);
        if t < self.crowd_until {
            base * self.magnitude
        } else {
            base
        }
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        self.base
            .bounds()
            .map(|(lo, hi)| (lo, hi * self.max_magnitude))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        if after >= self.next_onset {
            return after;
        }
        let mut t = self.base.next_change_at(after).min(self.next_onset);
        if after < self.crowd_until {
            t = t.min(self.crowd_until);
        }
        t
    }
}

/// Poisson bursts each injecting a Pareto-sized record count over any
/// base, spread across the burst window as additive surplus rate.
pub struct ParetoBurstRate {
    base: Box<dyn RateProcess>,
    mean_gap_secs: f64,
    burst_secs: f64,
    pareto_shape: f64,
    min_burst_records: f64,
    max_burst_records: f64,
    rng: SimRng,
    burst_until: SimTime,
    surplus: f64,
    next_onset: SimTime,
}

impl ParetoBurstRate {
    /// Wrap `base` with record bursts: exponential gaps with mean
    /// `mean_gap_secs`, each burst injecting
    /// `Pareto(pareto_shape, min_burst_records)` records (capped at
    /// `max_burst_records`) spread uniformly over `burst_secs`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        base: Box<dyn RateProcess>,
        mean_gap_secs: f64,
        burst_secs: f64,
        pareto_shape: f64,
        min_burst_records: f64,
        max_burst_records: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            mean_gap_secs > 0.0 && burst_secs > 0.0,
            "durations must be positive"
        );
        assert!(pareto_shape > 0.0, "pareto shape must be positive");
        assert!(
            min_burst_records > 0.0 && max_burst_records >= min_burst_records,
            "burst sizes must satisfy 0 < min <= max"
        );
        let first = rng.exponential(1.0 / mean_gap_secs);
        ParetoBurstRate {
            base,
            mean_gap_secs,
            burst_secs,
            pareto_shape,
            min_burst_records,
            max_burst_records,
            rng,
            burst_until: SimTime::ZERO,
            surplus: 0.0,
            next_onset: SimTime::from_secs_f64(first),
        }
    }
}

impl RateProcess for ParetoBurstRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        while t >= self.next_onset {
            self.burst_until = self.next_onset + SimDuration::from_secs_f64(self.burst_secs);
            let size = pareto_draw(
                &mut self.rng,
                self.pareto_shape,
                self.min_burst_records,
                self.max_burst_records,
            );
            self.surplus = size / self.burst_secs;
            let gap = self.rng.exponential(1.0 / self.mean_gap_secs);
            self.next_onset += SimDuration::from_secs_f64(self.burst_secs + gap);
        }
        let base = self.base.rate_at(t);
        if t < self.burst_until {
            base + self.surplus
        } else {
            base
        }
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        self.base
            .bounds()
            .map(|(lo, hi)| (lo, hi + self.max_burst_records / self.burst_secs))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        if after >= self.next_onset {
            return after;
        }
        let mut t = self.base.next_change_at(after).min(self.next_onset);
        if after < self.burst_until {
            t = t.min(self.burst_until);
        }
        t
    }
}

/// Surges whose onsets come from a *shared* trigger stream: all
/// instances built with the same `trigger_seed` surge at identical
/// instants — the multi-source correlated-incident scenario. The base
/// process still runs off the builder's own fork, so two correlated
/// sources can follow different base trajectories while spiking in
/// lockstep.
pub struct CorrelatedSurgeRate {
    inner: SurgeRate,
}

impl CorrelatedSurgeRate {
    /// `trigger_seed` selects the shared onset stream; `magnitude`,
    /// `surge_secs`, `mean_gap_secs` behave as in [`SurgeRate`].
    pub fn new(
        base: Box<dyn RateProcess>,
        trigger_seed: u64,
        magnitude: f64,
        surge_secs: f64,
        mean_gap_secs: f64,
    ) -> Self {
        let trigger = SimRng::seed_from_u64(trigger_seed).fork(TRIGGER_STREAM);
        CorrelatedSurgeRate {
            inner: SurgeRate::new(base, magnitude, surge_secs, mean_gap_secs, trigger),
        }
    }

    /// True if a surge is active at instant `t` (state as of the last
    /// `rate_at` call).
    pub fn surging(&self, t: SimTime) -> bool {
        self.inner.surging(t)
    }
}

impl RateProcess for CorrelatedSurgeRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        self.inner.rate_at(t)
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        self.inner.bounds()
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        self.inner.next_change_at(after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{ConstantRate, SinusoidRate};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn pareto_draw_respects_scale_and_cap() {
        let mut rng = SimRng::seed_from_u64(17);
        let mut capped = 0;
        for _ in 0..10_000 {
            let x = pareto_draw(&mut rng, 1.1, 2.0, 50.0);
            assert!((2.0..=50.0).contains(&x), "draw {x}");
            if x == 50.0 {
                capped += 1;
            }
        }
        // Shape 1.1 is heavy-tailed enough that the cap must bind sometimes.
        assert!(capped > 0, "cap never bound in 10k draws");
    }

    #[test]
    fn flash_crowd_multiplies_with_varied_magnitudes() {
        let mk = || {
            FlashCrowdRate::new(
                Box::new(ConstantRate::new(100.0)),
                60.0,
                20.0,
                1.5,
                1.5,
                8.0,
                SimRng::seed_from_u64(5),
            )
        };
        let mut r = mk();
        let mut magnitudes = std::collections::BTreeSet::new();
        for i in 0..4000 {
            let rate = r.rate_at(t(i as f64));
            assert!((100.0..=800.0).contains(&rate), "rate {rate}");
            if rate > 100.0 {
                magnitudes.insert((rate * 1e6) as u64);
            }
        }
        assert!(
            magnitudes.len() >= 3,
            "per-crowd Pareto magnitudes should vary, saw {}",
            magnitudes.len()
        );
        // Deterministic replay with the same seed.
        let mut a = mk();
        let mut b = mk();
        for i in 0..500 {
            assert_eq!(a.rate_at(t(i as f64)), b.rate_at(t(i as f64)));
        }
    }

    #[test]
    fn flash_crowd_bounds_scale_by_cap() {
        let r = FlashCrowdRate::new(
            Box::new(SinusoidRate::new(100.0, 40.0, 600.0)),
            120.0,
            30.0,
            2.0,
            1.2,
            5.0,
            SimRng::seed_from_u64(1),
        );
        assert_eq!(r.bounds(), Some((60.0, 140.0 * 5.0)));
    }

    #[test]
    fn pareto_burst_adds_surplus_during_window() {
        let mut r = ParetoBurstRate::new(
            Box::new(ConstantRate::new(50.0)),
            40.0,
            10.0,
            1.3,
            1_000.0,
            80_000.0,
            SimRng::seed_from_u64(9),
        );
        let mut burst_seconds = 0;
        for i in 0..4000 {
            let rate = r.rate_at(t(i as f64));
            assert!(rate >= 50.0, "rate {rate}");
            if rate > 50.0 {
                // Surplus = size / burst_secs, so within [min, max] / 10.
                let surplus = rate - 50.0;
                assert!((100.0..=8_000.0).contains(&surplus), "surplus {surplus}");
                burst_seconds += 1;
            }
        }
        // ~4000s / (50s cycle) * 10s burst ≈ 800 burst seconds; loose bounds.
        assert!(
            burst_seconds > 200 && burst_seconds < 2_000,
            "burst seconds {burst_seconds}"
        );
        let (lo, hi) = r.bounds().unwrap();
        assert_eq!(lo, 50.0);
        assert_eq!(hi, 50.0 + 8_000.0);
    }

    #[test]
    fn correlated_surges_share_onsets_across_instances() {
        // Two sources with different bases but the same trigger seed.
        let mut a =
            CorrelatedSurgeRate::new(Box::new(ConstantRate::new(100.0)), 777, 2.0, 15.0, 70.0);
        let mut b =
            CorrelatedSurgeRate::new(Box::new(ConstantRate::new(9_000.0)), 777, 3.0, 15.0, 70.0);
        let mut c = CorrelatedSurgeRate::new(
            Box::new(ConstantRate::new(100.0)),
            778, // different trigger
            2.0,
            15.0,
            70.0,
        );
        let mut agree = 0;
        let mut c_disagrees = false;
        let mut a_surges = 0;
        for i in 0..3000 {
            let now = t(i as f64);
            let sa = a.rate_at(now) > 100.0;
            let sb = b.rate_at(now) > 9_000.0;
            let sc = c.rate_at(now) > 100.0;
            assert_eq!(sa, sb, "same trigger seed must surge in lockstep at t={i}");
            if sa {
                a_surges += 1;
            }
            if sa == sc {
                agree += 1;
            } else {
                c_disagrees = true;
            }
        }
        assert!(a_surges > 100, "surges must actually occur ({a_surges})");
        assert!(
            c_disagrees && agree < 3000,
            "different trigger seeds must decorrelate"
        );
    }

    #[test]
    fn next_change_at_is_sound_for_combinators() {
        let mut r = FlashCrowdRate::new(
            Box::new(ConstantRate::new(10.0)),
            50.0,
            10.0,
            1.5,
            2.0,
            6.0,
            SimRng::seed_from_u64(21),
        );
        let mut clock = 0.25f64;
        for _ in 0..60 {
            let base = r.rate_at(t(clock));
            let until = r.next_change_at(t(clock));
            if until > t(clock) && until < SimTime::MAX {
                let mut probe = t(clock);
                let step = SimDuration::from_millis(250);
                while probe + step < until {
                    probe += step;
                    assert_eq!(r.rate_at(probe), base, "changed before promised instant");
                }
                clock = clock.max(probe.as_secs_f64());
            }
            clock += 1.3;
        }
    }
}
