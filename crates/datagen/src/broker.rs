//! A Kafka-like partitioned broker model.
//!
//! The paper deploys a Kafka broker on every node and provisions more
//! partitions than the cluster has cores so Kafka is never the bottleneck
//! (§6.1). What the streaming engine observes from Kafka is *offsets*: how
//! many records are available per partition and how many it has consumed.
//! This model tracks exactly that — per-partition produced/consumed offsets
//! and lag — plus the consumer-side rate limit that Spark's back pressure
//! mechanism manipulates (`spark.streaming.kafka.maxRatePerPartition`).
//!
//! Record payloads are *not* stored: the simulator's cost models operate on
//! counts, and workload kernels draw payloads from
//! [`crate::records::RecordGenerator`] on demand. This keeps simulating a
//! 230k-records/second stream (the paper's Page Analyze rate) allocation-free.

/// Identifies a partition within the broker.
pub type PartitionId = usize;

/// Broker construction parameters.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Number of partitions. The paper sets this larger than the cluster's
    /// total core count.
    pub partitions: usize,
    /// Consumer-side rate limit in records/second across all partitions
    /// (`None` = unlimited). This is the back-pressure knob.
    pub max_consume_rate: Option<f64>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            partitions: 32,
            max_consume_rate: None,
        }
    }
}

/// Per-partition offset state.
///
/// Production is uniform by construction — every partition receives the
/// *identical* fractional share with the identical carry evolution — so
/// the produced offset and its carry live once on [`Broker`] instead of
/// per partition, making `produce` O(1). This matters: the generator
/// integrates rates in 100 ms steps, so a single batch cut calls
/// `produce` dozens of times. Only the consumed offset diverges across
/// partitions (the consume side distributes remainders).
#[derive(Debug, Clone, Default)]
struct Partition {
    consumed: u64,
}

/// Per-partition production state for skewed (hot-key) traffic.
///
/// When the paper's skew-avoidance rule is deliberately broken, the O(1)
/// shared-offset trick no longer applies: each partition gets its own
/// weighted share of every produce call with its own fractional carry.
/// Only brokers built via [`Broker::with_skew`] pay this O(partitions)
/// produce cost; the uniform path is untouched.
#[derive(Debug, Clone)]
struct SkewState {
    /// Normalized per-partition produce weights (sum = 1).
    weights: Vec<f64>,
    /// Per-partition produced offsets.
    produced: Vec<u64>,
    /// Per-partition fractional carries.
    carry: Vec<f64>,
}

/// A partitioned broker with offset/lag accounting and a consume-rate limit.
#[derive(Debug, Clone)]
pub struct Broker {
    partitions: Vec<Partition>,
    /// Produced offset, identical for every partition (uniform production).
    /// Unused (stays zero) when `skew` is set.
    produced_per_partition: u64,
    /// Fractional record carry of the uniform production share, identical
    /// for every partition. Unused when `skew` is set.
    produce_carry: f64,
    /// Weighted per-partition production, when the skew-free assumption is
    /// deliberately broken.
    skew: Option<SkewState>,
    max_consume_rate: Option<f64>,
    /// Fractional budget carry for the rate limiter.
    rate_carry: f64,
}

impl Broker {
    /// Create a broker per `config`. Panics when `partitions == 0`.
    pub fn new(config: BrokerConfig) -> Self {
        assert!(
            config.partitions >= 1,
            "broker needs at least one partition"
        );
        Broker {
            partitions: vec![Partition::default(); config.partitions],
            produced_per_partition: 0,
            produce_carry: 0.0,
            skew: None,
            max_consume_rate: config.max_consume_rate,
            rate_carry: 0.0,
        }
    }

    /// Switch production to weighted per-partition shares (hot-key skew).
    ///
    /// `weights` must have one entry per partition; they are normalized
    /// internally, so only ratios matter. Must be applied before any
    /// production. Panics on length mismatch or non-positive weights.
    pub fn with_skew(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            self.partitions.len(),
            "need one weight per partition"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        assert_eq!(
            self.total_produced(),
            0,
            "skew must be set before producing"
        );
        let total: f64 = weights.iter().sum();
        let n = weights.len();
        self.skew = Some(SkewState {
            weights: weights.into_iter().map(|w| w / total).collect(),
            produced: vec![0; n],
            carry: vec![0.0; n],
        });
        self
    }

    /// True when production is weighted rather than uniform.
    pub fn is_skewed(&self) -> bool {
        self.skew.is_some()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn produced_of(&self, i: usize) -> u64 {
        match &self.skew {
            Some(s) => s.produced[i],
            None => self.produced_per_partition,
        }
    }

    fn lag_of(&self, i: usize) -> u64 {
        self.produced_of(i) - self.partitions[i].consumed
    }

    /// Produce `count` records. Uniform production (the paper's
    /// skew-avoidance rule) spreads them identically across partitions in
    /// O(1); a skewed broker gives each partition its weighted share with
    /// a per-partition fractional carry, conserving the long-run total
    /// exactly.
    pub fn produce(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(skew) = &mut self.skew {
            for i in 0..skew.weights.len() {
                let want = count as f64 * skew.weights[i] + skew.carry[i];
                let whole = want.floor();
                skew.carry[i] = want - whole;
                skew.produced[i] += whole as u64;
            }
            return;
        }
        let n = self.partitions.len() as f64;
        let share = count as f64 / n;
        let want = share + self.produce_carry;
        let whole = want.floor();
        self.produce_carry = want - whole;
        self.produced_per_partition += whole as u64;
    }

    /// Total records ever produced.
    pub fn total_produced(&self) -> u64 {
        match &self.skew {
            Some(s) => s.produced.iter().sum(),
            None => self.produced_per_partition * self.partitions.len() as u64,
        }
    }

    /// Total records ever consumed.
    pub fn total_consumed(&self) -> u64 {
        self.partitions.iter().map(|p| p.consumed).sum()
    }

    /// Records available but not yet consumed, across all partitions.
    pub fn total_lag(&self) -> u64 {
        self.total_produced() - self.total_consumed()
    }

    /// Per-partition lag snapshot.
    pub fn partition_lags(&self) -> Vec<u64> {
        (0..self.partitions.len()).map(|i| self.lag_of(i)).collect()
    }

    /// Set (or clear) the consumer-side rate limit in records/second.
    pub fn set_max_consume_rate(&mut self, rate: Option<f64>) {
        self.max_consume_rate = rate.map(|r| r.max(0.0));
        if self.max_consume_rate.is_none() {
            self.rate_carry = 0.0;
        }
    }

    /// The current consume-rate limit, if any.
    pub fn max_consume_rate(&self) -> Option<f64> {
        self.max_consume_rate
    }

    /// Consume up to the rate-limit budget for an `elapsed_secs` window,
    /// uniformly across partitions. Returns the number of records consumed.
    ///
    /// Without a rate limit, consumes the entire lag (Spark's direct stream
    /// takes every record available at batch-cut time).
    pub fn consume_window(&mut self, elapsed_secs: f64) -> u64 {
        let lag = self.total_lag();
        let budget = match self.max_consume_rate {
            None => lag,
            Some(rate) => {
                let allowed = rate * elapsed_secs.max(0.0) + self.rate_carry;
                let whole = allowed.floor().max(0.0);
                let take = (whole as u64).min(lag);
                // Carry only the fractional budget; unused whole budget does
                // not accumulate (Spark recomputes the cap per batch).
                self.rate_carry = (allowed - whole).clamp(0.0, 1.0);
                take
            }
        };
        self.take_uniform(budget);
        budget
    }

    /// Consume exactly `count` records (or all lag, whichever is smaller),
    /// uniformly across partitions. Returns the number consumed.
    pub fn consume_exact(&mut self, count: u64) -> u64 {
        let take = count.min(self.total_lag());
        self.take_uniform(take);
        take
    }

    /// Produced offset per partition. Only meaningful for uniform
    /// production (the fast paths that call this refuse skewed brokers).
    pub fn produced_per_partition(&self) -> u64 {
        debug_assert!(
            self.skew.is_none(),
            "per-partition offset is not shared under skew"
        );
        self.produced_per_partition
    }

    /// Bit pattern of the fractional production carry — a bitwise
    /// stationarity probe for closed-form fast paths.
    pub fn produce_carry_bits(&self) -> u64 {
        self.produce_carry.to_bits()
    }

    /// Advance every partition by `per_partition` produced-and-consumed
    /// offsets in one step. Only valid at the lag-0 fixed point (every
    /// record cut as soon as it arrives), where production and consumption
    /// telescope to the same per-partition advance.
    pub fn fast_forward(&mut self, per_partition: u64) {
        assert!(
            self.skew.is_none(),
            "fast_forward requires uniform production"
        );
        debug_assert_eq!(self.total_lag(), 0, "fast_forward requires zero lag");
        self.produced_per_partition += per_partition;
        for p in &mut self.partitions {
            p.consumed = self.produced_per_partition;
        }
    }

    fn take_uniform(&mut self, mut remaining: u64) {
        if remaining == 0 {
            return;
        }
        // Round-robin by repeatedly taking proportional shares. Two passes
        // suffice for the uniform broker (lags are near-uniform by
        // construction); a skewed broker converges in a few more rounds
        // because the hot partitions dominate the remaining lag.
        loop {
            let lagging = (0..self.partitions.len())
                .filter(|&i| self.lag_of(i) > 0)
                .count() as u64;
            if lagging == 0 || remaining == 0 {
                break;
            }
            let share = (remaining / lagging).max(1);
            for i in 0..self.partitions.len() {
                if remaining == 0 {
                    break;
                }
                let lag = self.lag_of(i);
                if lag == 0 {
                    continue;
                }
                let take = share.min(lag).min(remaining);
                self.partitions[i].consumed += take;
                remaining -= take;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker(parts: usize) -> Broker {
        Broker::new(BrokerConfig {
            partitions: parts,
            max_consume_rate: None,
        })
    }

    #[test]
    fn produce_conserves_count_in_long_run() {
        let mut b = broker(7);
        for _ in 0..1000 {
            b.produce(13);
        }
        let total = b.total_produced();
        // Fractional carries mean at most `partitions` records still in carry.
        assert!((13_000 - 7..=13_000).contains(&total), "total {total}");
    }

    #[test]
    fn produce_is_uniform_across_partitions() {
        let mut b = broker(8);
        b.produce(8_000);
        let lags = b.partition_lags();
        for lag in lags {
            assert!((999..=1001).contains(&lag), "lag {lag}");
        }
    }

    #[test]
    fn unlimited_consume_takes_entire_lag() {
        let mut b = broker(4);
        b.produce(1_000);
        let got = b.consume_window(1.0);
        assert_eq!(got, b.total_consumed());
        assert_eq!(b.total_lag(), 0);
    }

    #[test]
    fn rate_limit_caps_consumption() {
        let mut b = broker(4);
        b.set_max_consume_rate(Some(100.0));
        b.produce(1_000);
        let got = b.consume_window(2.0); // budget = 200
        assert_eq!(got, 200);
        assert_eq!(b.total_lag(), 800);
    }

    #[test]
    fn rate_limit_fractional_budget_carries() {
        let mut b = broker(1);
        b.set_max_consume_rate(Some(0.5));
        b.produce(10);
        assert_eq!(b.consume_window(1.0), 0); // 0.5 budget -> carry
        assert_eq!(b.consume_window(1.0), 1); // 1.0 budget
        assert_eq!(b.total_lag(), 9);
    }

    #[test]
    fn clearing_rate_limit_restores_full_drain() {
        let mut b = broker(2);
        b.set_max_consume_rate(Some(10.0));
        b.produce(100);
        b.consume_window(1.0);
        b.set_max_consume_rate(None);
        b.consume_window(0.0);
        assert_eq!(b.total_lag(), 0);
    }

    #[test]
    fn consume_exact_respects_lag() {
        let mut b = broker(3);
        b.produce(30);
        assert_eq!(b.consume_exact(10), 10);
        assert_eq!(b.total_lag(), 20);
        assert_eq!(b.consume_exact(100), 20);
        assert_eq!(b.total_lag(), 0);
        assert_eq!(b.consume_exact(5), 0);
    }

    #[test]
    fn consume_is_spread_across_partitions() {
        let mut b = broker(4);
        b.produce(400);
        b.consume_exact(200);
        for lag in b.partition_lags() {
            assert!((40..=60).contains(&lag), "lag {lag}");
        }
    }

    #[test]
    fn fast_forward_matches_produce_then_drain() {
        let mut slow = broker(4);
        let mut fast = broker(4);
        for _ in 0..3 {
            slow.produce(400);
            slow.consume_window(1.0);
            fast.fast_forward(100);
        }
        assert_eq!(slow.produced_per_partition(), fast.produced_per_partition());
        assert_eq!(slow.total_consumed(), fast.total_consumed());
        assert_eq!(fast.total_lag(), 0);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn zero_partitions_panics() {
        let _ = Broker::new(BrokerConfig {
            partitions: 0,
            max_consume_rate: None,
        });
    }

    fn skewed(parts: usize, weights: Vec<f64>) -> Broker {
        Broker::new(BrokerConfig {
            partitions: parts,
            max_consume_rate: None,
        })
        .with_skew(weights)
    }

    #[test]
    fn skewed_produce_conserves_and_follows_weights() {
        // One hot partition at 5x the cold weight.
        let mut b = skewed(4, vec![5.0, 1.0, 1.0, 1.0]);
        for _ in 0..1000 {
            b.produce(16);
        }
        let total = b.total_produced();
        // Per-partition carries hold back at most one record each.
        assert!((16_000 - 4..=16_000).contains(&total), "total {total}");
        let lags = b.partition_lags();
        let hot = lags[0] as f64;
        for &cold in &lags[1..] {
            let ratio = hot / cold as f64;
            assert!((4.9..=5.1).contains(&ratio), "hot/cold ratio {ratio}");
        }
    }

    #[test]
    fn skewed_lags_drain_completely() {
        let mut b = skewed(4, vec![10.0, 1.0, 1.0, 1.0]);
        b.produce(13_000);
        let got = b.consume_window(1.0);
        assert_eq!(got, b.total_consumed());
        assert_eq!(b.total_lag(), 0);
        for lag in b.partition_lags() {
            assert_eq!(lag, 0);
        }
    }

    #[test]
    fn skewed_consume_exact_is_bounded_by_lag() {
        let mut b = skewed(3, vec![8.0, 1.0, 1.0]);
        b.produce(100);
        let lag = b.total_lag();
        assert_eq!(b.consume_exact(lag + 50), lag);
        assert_eq!(b.total_lag(), 0);
    }

    #[test]
    fn uniform_weights_behave_like_uniform_broker() {
        let mut a = broker(4);
        let mut b = skewed(4, vec![2.0; 4]);
        for _ in 0..100 {
            a.produce(17);
            b.produce(17);
        }
        assert_eq!(a.total_produced(), b.total_produced());
        assert_eq!(a.partition_lags(), b.partition_lags());
    }

    #[test]
    #[should_panic(expected = "uniform production")]
    fn fast_forward_refuses_skewed_broker() {
        let mut b = skewed(2, vec![3.0, 1.0]);
        b.fast_forward(10);
    }

    #[test]
    #[should_panic(expected = "one weight per partition")]
    fn skew_weight_length_must_match() {
        let _ = skewed(3, vec![1.0, 2.0]);
    }
}
