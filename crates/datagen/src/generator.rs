//! The external data generator: rate process → broker.
//!
//! [`StreamGenerator`] integrates a [`RateProcess`] over virtual time and
//! produces the corresponding record counts into a [`Broker`], with
//! fractional-record accumulation so that total production equals the exact
//! integral of the rate (no drift at any step size).

use crate::broker::Broker;
use crate::rate::RateProcess;
use nostop_simcore::{SimDuration, SimTime};

/// Integration step for the rate process. Finer steps track fast-changing
/// rates more precisely at a small CPU cost; 100 ms matches Kafka producer
/// batching granularity well.
const INTEGRATION_STEP: SimDuration = SimDuration::from_millis(100);

/// Drives a broker from an arrival-rate process.
pub struct StreamGenerator {
    rate: Box<dyn RateProcess>,
    /// Where we have integrated production up to.
    produced_until: SimTime,
    /// Fractional record carry.
    carry: f64,
    /// Most recent instantaneous rate (records/s), for observers.
    last_rate: f64,
}

impl StreamGenerator {
    /// A generator over `rate` starting at t = 0.
    pub fn new(rate: Box<dyn RateProcess>) -> Self {
        StreamGenerator {
            rate,
            produced_until: SimTime::ZERO,
            carry: 0.0,
            last_rate: 0.0,
        }
    }

    /// Advance production to instant `t`, producing into `broker`.
    /// Returns the number of records produced by this call.
    pub fn advance_to(&mut self, t: SimTime, broker: &mut Broker) -> u64 {
        // A constant process has an exact closed-form integral, so the
        // whole window collapses to one step: `r * dt + carry`. Stepping
        // would chain the same telescoping sum through per-step floors —
        // identical total up to fractional-carry rounding — while costing
        // `interval / 100 ms` iterations per batch on the engine's hot
        // ingest path.
        if let Some(r) = self.rate.constant() {
            if self.produced_until >= t {
                return 0;
            }
            let dt = (t - self.produced_until).as_secs_f64();
            self.last_rate = r;
            let want = r * dt + self.carry;
            let whole = want.floor().max(0.0);
            self.carry = want - whole;
            self.produced_until = t;
            let n = whole as u64;
            broker.produce(n);
            return n;
        }
        let mut produced = 0u64;
        while self.produced_until < t {
            let step_end = (self.produced_until + INTEGRATION_STEP).min(t);
            let dt = (step_end - self.produced_until).as_secs_f64();
            // Sample at interval start: step-function integration matches
            // the hold-then-redraw semantics of the paper's generator.
            let r = self.rate.rate_at(self.produced_until);
            self.last_rate = r;
            let want = r * dt + self.carry;
            let whole = want.floor().max(0.0);
            self.carry = want - whole;
            let n = whole as u64;
            broker.produce(n);
            produced += n;
            self.produced_until = step_end;
        }
        produced
    }

    /// The instantaneous rate at the last integration step (records/s).
    pub fn current_rate(&self) -> f64 {
        self.last_rate
    }

    /// The rate the process will produce at instant `t` (peeks the process).
    pub fn rate_at(&mut self, t: SimTime) -> f64 {
        self.rate.rate_at(t)
    }

    /// Declared bounds of the underlying rate process, if known.
    pub fn rate_bounds(&self) -> Option<(f64, f64)> {
        self.rate.bounds()
    }

    /// How far production has been integrated.
    pub fn produced_until(&self) -> SimTime {
        self.produced_until
    }

    /// The earliest instant strictly after `after` at which the rate process
    /// may change value ([`SimTime::MAX`] when it never will). See
    /// [`RateProcess::next_change_at`] for the guarantee.
    pub fn next_change_at(&self, after: SimTime) -> SimTime {
        self.rate.next_change_at(after)
    }

    /// Bit pattern of the fractional record carry — a bitwise stationarity
    /// probe for closed-form fast paths.
    pub fn carry_bits(&self) -> u64 {
        self.carry.to_bits()
    }

    /// Bit pattern of the last sampled instantaneous rate.
    pub fn last_rate_bits(&self) -> u64 {
        self.last_rate.to_bits()
    }

    /// Shift the integration watermark forward by `delta` without touching
    /// the carry or the rate process. Only valid when the caller has already
    /// accounted the window's production elsewhere (the fleet fast path
    /// replays a proven-periodic epoch whose per-window production and carry
    /// evolution are bit-identical to the previous one).
    pub fn fast_forward(&mut self, delta: SimDuration) {
        self.produced_until += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::rate::{ConstantRate, RampRate, UniformRandomRate};
    use nostop_simcore::SimRng;

    fn broker() -> Broker {
        Broker::new(BrokerConfig {
            partitions: 4,
            max_consume_rate: None,
        })
    }

    #[test]
    fn constant_rate_integrates_exactly() {
        let mut g = StreamGenerator::new(Box::new(ConstantRate::new(1_000.0)));
        let mut b = broker();
        let produced = g.advance_to(SimTime::from_secs_f64(10.0), &mut b);
        assert_eq!(produced, 10_000);
        assert_eq!(g.current_rate(), 1_000.0);
    }

    #[test]
    fn production_is_independent_of_step_pattern() {
        // Advancing in many small steps vs one big step must produce the
        // same total (carry accumulation, no drift).
        let run = |steps: &[f64]| {
            let mut g = StreamGenerator::new(Box::new(ConstantRate::new(777.0)));
            let mut b = broker();
            let mut total = 0;
            let mut t = 0.0;
            for &dt in steps {
                t += dt;
                total += g.advance_to(SimTime::from_secs_f64(t), &mut b);
            }
            total
        };
        let fine = run(&[0.1; 100]);
        let coarse = run(&[10.0]);
        assert_eq!(fine, coarse);
        assert_eq!(fine, 7_770);
    }

    #[test]
    fn ramp_rate_integrates_to_trapezoid_approximately() {
        let mut g = StreamGenerator::new(Box::new(RampRate::new(0.0, 1_000.0, 10.0)));
        let mut b = broker();
        let produced = g.advance_to(SimTime::from_secs_f64(10.0), &mut b);
        // Exact integral is 5_000; left-Riemann at 100 ms steps gives 4_950.
        assert!((4_900..=5_050).contains(&produced), "produced {produced}");
    }

    #[test]
    fn advance_is_monotone_and_idempotent_at_same_t() {
        let mut g = StreamGenerator::new(Box::new(ConstantRate::new(100.0)));
        let mut b = broker();
        g.advance_to(SimTime::from_secs_f64(5.0), &mut b);
        let again = g.advance_to(SimTime::from_secs_f64(5.0), &mut b);
        assert_eq!(again, 0);
        assert_eq!(g.produced_until(), SimTime::from_secs_f64(5.0));
    }

    /// The constant-rate closed form integrates each window in one step.
    /// Per-window production telescopes to the same sum the stepped path
    /// produces (both equal `r*T + carry_in - carry_out` with carries in
    /// [0,1)), so totals may differ by at most one in-flight fractional
    /// record at any boundary, and the final carry matches the exact
    /// integral's fractional part.
    #[test]
    fn constant_closed_form_matches_stepped_integral() {
        /// Constant in fact, but refuses to say so — forces the slow path.
        struct OpaqueConstant(f64);
        impl crate::rate::RateProcess for OpaqueConstant {
            fn rate_at(&mut self, _t: SimTime) -> f64 {
                self.0
            }
        }
        let rate = 9_731.7;
        let mut fast = StreamGenerator::new(Box::new(ConstantRate::new(rate)));
        let mut slow = StreamGenerator::new(Box::new(OpaqueConstant(rate)));
        let (mut bf, mut bs) = (broker(), broker());
        let mut t = 0.0;
        for &dt in &[0.05, 2.0, 0.13, 15.0, 0.1, 7.77, 40.0] {
            t += dt;
            let at = SimTime::from_secs_f64(t);
            fast.advance_to(at, &mut bf);
            slow.advance_to(at, &mut bs);
            let (f, s) = (bf.total_produced(), bs.total_produced());
            assert!(f.abs_diff(s) <= 4, "fast {f} vs stepped {s} at t={t}");
        }
        let exact = rate * t;
        let f = bf.total_produced() as f64;
        assert!((exact - f).abs() < 5.0, "fast {f} vs integral {exact}");
        assert_eq!(fast.current_rate(), slow.current_rate());
    }

    /// An exactly-representable constant rate over representable windows
    /// produces the exact integral with zero drift, batch after batch.
    #[test]
    fn constant_closed_form_is_exact_for_representable_rates() {
        let mut g = StreamGenerator::new(Box::new(ConstantRate::new(10_000.0)));
        let mut b = broker();
        for i in 1..=20u64 {
            let n = g.advance_to(SimTime::from_secs_f64(15.0 * i as f64), &mut b);
            assert_eq!(n, 150_000, "batch {i}");
        }
    }

    #[test]
    fn fast_forward_shifts_watermark_and_preserves_carry() {
        let mut g = StreamGenerator::new(Box::new(ConstantRate::new(333.3)));
        let mut b = broker();
        g.advance_to(SimTime::from_secs_f64(3.0), &mut b);
        let carry = g.carry_bits();
        g.fast_forward(SimDuration::from_secs(12));
        assert_eq!(g.produced_until(), SimTime::from_secs_f64(15.0));
        assert_eq!(g.carry_bits(), carry);
        assert_eq!(
            g.next_change_at(SimTime::ZERO),
            nostop_simcore::SimTime::MAX
        );
    }

    #[test]
    fn varying_rate_production_within_bounds() {
        let rate = UniformRandomRate::new(7_000.0, 13_000.0, 30.0, SimRng::seed_from_u64(2));
        let mut g = StreamGenerator::new(Box::new(rate));
        let mut b = broker();
        let secs = 300.0;
        let produced = g.advance_to(SimTime::from_secs_f64(secs), &mut b);
        let avg = produced as f64 / secs;
        assert!((7_000.0..=13_000.0).contains(&avg), "avg {avg}");
        assert_eq!(g.rate_bounds(), Some((7_000.0, 13_000.0)));
    }
}
