//! Streaming data generation for the NoStop reproduction.
//!
//! The paper (§6.1–6.2) deploys a data generator *outside* the cluster that
//! sends records to Kafka brokers at a varying rate, spread uniformly over
//! partitions to avoid skew. This crate reproduces that substrate:
//!
//! * [`rate`] — arrival-rate processes: the paper's uniform-random rate in
//!   `[MinRate, MaxRate]` redrawn periodically (§6.2.2), plus constant,
//!   sinusoidal, ramp, surge (e-commerce promotion spikes), and recorded
//!   traces, with composition.
//! * [`adversarial`] — the production-grade nasty cases: flash crowds with
//!   Pareto-sized magnitudes, heavy-tailed record bursts, and correlated
//!   multi-source surges off a shared trigger stream, each wrapping any
//!   base process deterministically.
//! * [`records`] — synthetic record generators for the four workloads:
//!   labelled feature vectors for (logistic|linear) regression, text lines
//!   for WordCount, and Nginx *combined log format* lines for Log Analyze.
//! * [`broker`] — a Kafka-like partitioned broker: per-partition FIFO queues
//!   with offsets, uniform round-robin production, consumer polling, lag
//!   accounting, and a producer-side rate limit hook (the knob Spark's back
//!   pressure turns).
//! * [`generator`] — [`generator::StreamGenerator`] ties a rate process to a
//!   broker: advancing virtual time materializes the right (fractional-
//!   accumulated) number of records in each partition.

pub mod adversarial;
pub mod broker;
pub mod generator;
pub mod rate;
pub mod records;

pub use adversarial::{CorrelatedSurgeRate, FlashCrowdRate, ParetoBurstRate};
pub use broker::{Broker, BrokerConfig, PartitionId};
pub use generator::StreamGenerator;
pub use rate::{tenant_seed, RateProcess, RateSpec, RateSpecExt};
pub use records::{Record, RecordGenerator, RecordKind};
