//! Arrival-rate processes.
//!
//! A [`RateProcess`] answers "how many records arrive per second at instant
//! `t`?". The paper's generator (§6.2.2) draws a random rate uniformly from
//! `[MinRate, MaxRate]` and holds it for a while before redrawing —
//! [`UniformRandomRate`] reproduces that. The other processes cover the
//! scenarios the paper motivates: constant feeds (the assumption prior work
//! makes, §2), diurnal sinusoids, linear ramps, and e-commerce surge spikes
//! (§5.5), plus recorded traces and composition.

use nostop_simcore::{SimRng, SimTime};

/// A (possibly stochastic, but seeded) arrival-rate process.
///
/// Implementations must be *deterministic in `t`* between mutations: calling
/// `rate_at` repeatedly with non-decreasing `t` yields a reproducible
/// trajectory for a given seed.
pub trait RateProcess: Send {
    /// Records per second arriving at instant `t`.
    ///
    /// `t` must be non-decreasing across calls (the generator integrates the
    /// rate forward in time).
    fn rate_at(&mut self, t: SimTime) -> f64;

    /// The inclusive bounds the process is expected to stay within, if known.
    /// Used by experiment drivers to size configuration ranges.
    fn bounds(&self) -> Option<(f64, f64)> {
        None
    }

    /// `Some(rate)` when the process returns this exact value for every
    /// `t`. Lets the generator skip the per-step virtual dispatch; the
    /// integration arithmetic is unchanged, so production is bit-identical
    /// either way.
    fn constant(&self) -> Option<f64> {
        None
    }

    /// The earliest instant strictly after `after` at which the process may
    /// return a different value — the rate is guaranteed constant over the
    /// open interval `(after, next_change_at(after))`. Fast paths use this
    /// to prove a horizon is event-free; returning `after` itself makes no
    /// guarantee at all, which is the safe default for processes that vary
    /// continuously (sinusoids, ramps mid-flight).
    fn next_change_at(&self, after: SimTime) -> SimTime {
        after
    }
}

/// A constant arrival rate — the idealized regime prior work assumes.
#[derive(Debug, Clone)]
pub struct ConstantRate {
    rate: f64,
}

impl ConstantRate {
    /// `rate` records per second, clamped to be non-negative.
    pub fn new(rate: f64) -> Self {
        ConstantRate {
            rate: rate.max(0.0),
        }
    }
}

impl RateProcess for ConstantRate {
    fn rate_at(&mut self, _t: SimTime) -> f64 {
        self.rate
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        Some((self.rate, self.rate))
    }
    fn constant(&self) -> Option<f64> {
        Some(self.rate)
    }
    fn next_change_at(&self, _after: SimTime) -> SimTime {
        SimTime::MAX
    }
}

/// The paper's varying-rate model: a rate drawn uniformly from
/// `[min_rate, max_rate]`, held for `hold_secs`, then redrawn (§6.2.2).
#[derive(Debug, Clone)]
pub struct UniformRandomRate {
    min_rate: f64,
    max_rate: f64,
    hold_secs: f64,
    rng: SimRng,
    current: f64,
    next_redraw: SimTime,
}

impl UniformRandomRate {
    /// Rates are redrawn every `hold_secs` of simulated time.
    pub fn new(min_rate: f64, max_rate: f64, hold_secs: f64, rng: SimRng) -> Self {
        assert!(
            min_rate >= 0.0 && max_rate >= min_rate,
            "invalid rate range"
        );
        assert!(hold_secs > 0.0, "hold duration must be positive");
        let mut s = UniformRandomRate {
            min_rate,
            max_rate,
            hold_secs,
            rng,
            current: 0.0,
            next_redraw: SimTime::ZERO,
        };
        s.current = s.draw();
        s.next_redraw = SimTime::from_secs_f64(hold_secs);
        s
    }

    /// The paper's four workload ranges (Fig. 5), by name.
    pub fn paper_range(workload: &str, rng: SimRng) -> Option<Self> {
        let (lo, hi) = match workload {
            "logistic-regression" => (7_000.0, 13_000.0),
            "linear-regression" => (80_000.0, 120_000.0),
            "wordcount" => (110_000.0, 190_000.0),
            "page-analyze" | "log-analyze" => (170_000.0, 230_000.0),
            _ => return None,
        };
        Some(UniformRandomRate::new(lo, hi, 30.0, rng))
    }

    fn draw(&mut self) -> f64 {
        self.rng.uniform(self.min_rate, self.max_rate)
    }
}

impl RateProcess for UniformRandomRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        while t >= self.next_redraw {
            self.current = self.draw();
            self.next_redraw += nostop_simcore::SimDuration::from_secs_f64(self.hold_secs);
        }
        self.current
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        Some((self.min_rate, self.max_rate))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        // `next_redraw` advances lazily inside `rate_at`; when the caller
        // asks past it the state is stale and no guarantee can be made.
        if after >= self.next_redraw {
            after
        } else {
            self.next_redraw
        }
    }
}

/// A sinusoidal (diurnal-style) rate: `base + amplitude * sin(2π t / period)`,
/// floored at zero.
#[derive(Debug, Clone)]
pub struct SinusoidRate {
    base: f64,
    amplitude: f64,
    period_secs: f64,
    phase: f64,
}

impl SinusoidRate {
    /// `period_secs` must be positive.
    pub fn new(base: f64, amplitude: f64, period_secs: f64) -> Self {
        assert!(period_secs > 0.0, "period must be positive");
        SinusoidRate {
            base,
            amplitude,
            period_secs,
            phase: 0.0,
        }
    }

    /// Shift the waveform by `phase` radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }
}

impl RateProcess for SinusoidRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        let x = 2.0 * std::f64::consts::PI * t.as_secs_f64() / self.period_secs + self.phase;
        (self.base + self.amplitude * x.sin()).max(0.0)
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        Some((
            (self.base - self.amplitude.abs()).max(0.0),
            self.base + self.amplitude.abs(),
        ))
    }
}

/// A linear ramp from `start_rate` to `end_rate` over `duration_secs`,
/// holding `end_rate` afterwards.
#[derive(Debug, Clone)]
pub struct RampRate {
    start_rate: f64,
    end_rate: f64,
    duration_secs: f64,
}

impl RampRate {
    /// `duration_secs` must be positive.
    pub fn new(start_rate: f64, end_rate: f64, duration_secs: f64) -> Self {
        assert!(duration_secs > 0.0, "ramp duration must be positive");
        RampRate {
            start_rate,
            end_rate,
            duration_secs,
        }
    }
}

impl RateProcess for RampRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        let frac = (t.as_secs_f64() / self.duration_secs).clamp(0.0, 1.0);
        (self.start_rate + frac * (self.end_rate - self.start_rate)).max(0.0)
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        Some((
            self.start_rate.min(self.end_rate).max(0.0),
            self.start_rate.max(self.end_rate),
        ))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        // The ramp holds `end_rate` forever once it completes.
        if after.as_secs_f64() >= self.duration_secs {
            SimTime::MAX
        } else {
            after
        }
    }
}

/// A base rate with occasional multiplicative surges — the "E-commerce
/// promotion, spike activities" scenario of §5.5 that triggers NoStop's
/// coefficient reset.
///
/// Surge onsets follow a Poisson process (`mean_gap_secs` between onsets);
/// each surge multiplies the base process by `magnitude` for
/// `surge_secs`.
pub struct SurgeRate {
    base: Box<dyn RateProcess>,
    magnitude: f64,
    surge_secs: f64,
    mean_gap_secs: f64,
    rng: SimRng,
    surge_until: SimTime,
    next_onset: SimTime,
}

impl SurgeRate {
    /// Wrap `base` with surges of `magnitude`× lasting `surge_secs`,
    /// separated by exponential gaps with mean `mean_gap_secs`.
    pub fn new(
        base: Box<dyn RateProcess>,
        magnitude: f64,
        surge_secs: f64,
        mean_gap_secs: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(magnitude >= 1.0, "surge magnitude must be >= 1");
        assert!(
            surge_secs > 0.0 && mean_gap_secs > 0.0,
            "durations must be positive"
        );
        let first = rng.exponential(1.0 / mean_gap_secs);
        SurgeRate {
            base,
            magnitude,
            surge_secs,
            mean_gap_secs,
            rng,
            surge_until: SimTime::ZERO,
            next_onset: SimTime::from_secs_f64(first),
        }
    }

    /// A surge at a fixed, known instant (for tests and the reset ablation).
    pub fn scheduled(
        base: Box<dyn RateProcess>,
        magnitude: f64,
        onset_secs: f64,
        surge_secs: f64,
    ) -> Self {
        SurgeRate {
            base,
            magnitude,
            surge_secs,
            mean_gap_secs: f64::INFINITY,
            rng: SimRng::seed_from_u64(0),
            surge_until: SimTime::ZERO,
            next_onset: SimTime::from_secs_f64(onset_secs),
        }
    }

    /// True if a surge is active at the last queried instant.
    pub fn surging(&self, t: SimTime) -> bool {
        t < self.surge_until
    }
}

impl RateProcess for SurgeRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        while t >= self.next_onset {
            self.surge_until =
                self.next_onset + nostop_simcore::SimDuration::from_secs_f64(self.surge_secs);
            let gap = if self.mean_gap_secs.is_finite() {
                self.rng.exponential(1.0 / self.mean_gap_secs)
            } else {
                f64::MAX
            };
            self.next_onset = if gap >= f64::MAX {
                SimTime::MAX
            } else {
                self.next_onset + nostop_simcore::SimDuration::from_secs_f64(self.surge_secs + gap)
            };
        }
        let base = self.base.rate_at(t);
        if t < self.surge_until {
            base * self.magnitude
        } else {
            base
        }
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        self.base.bounds().map(|(lo, hi)| (lo, hi * self.magnitude))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        // Onset state advances lazily in `rate_at`; a stale query makes no
        // guarantee. Otherwise the envelope is constant until the surge
        // window closes or the next onset fires, whichever the base allows.
        if after >= self.next_onset {
            return after;
        }
        let mut t = self.base.next_change_at(after).min(self.next_onset);
        if after < self.surge_until {
            t = t.min(self.surge_until);
        }
        t
    }
}

/// A rate replayed from recorded `(t_secs, rate)` breakpoints with
/// step-function semantics (the rate holds until the next breakpoint).
#[derive(Debug, Clone)]
pub struct TraceRate {
    /// Breakpoints sorted by time.
    points: Vec<(f64, f64)>,
}

impl TraceRate {
    /// Build from breakpoints; they are sorted internally. Panics when empty.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(
            !points.is_empty(),
            "trace must have at least one breakpoint"
        );
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        TraceRate { points }
    }

    /// Parse a recorded trace from two-column CSV (`t_secs,rate`), with an
    /// optional header row. Lines that fail to parse are reported, not
    /// skipped — silent data loss in a replayed trace corrupts experiments.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut points = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut cols = line.split(',');
            let (Some(a), Some(b)) = (cols.next(), cols.next()) else {
                return Err(format!("line {}: expected two columns", lineno + 1));
            };
            match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                (Ok(t), Ok(r)) => {
                    if !t.is_finite() || !r.is_finite() || t < 0.0 || r < 0.0 {
                        return Err(format!("line {}: out-of-domain value", lineno + 1));
                    }
                    points.push((t, r));
                }
                _ if lineno == 0 => continue, // header row
                _ => return Err(format!("line {}: not numeric", lineno + 1)),
            }
        }
        if points.is_empty() {
            return Err("trace has no data rows".into());
        }
        Ok(TraceRate::new(points))
    }

    /// Render the trace as two-column CSV with a header (the inverse of
    /// [`TraceRate::from_csv`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_secs,rate\n");
        for (t, r) in &self.points {
            out.push_str(&format!("{t},{r}\n"));
        }
        out
    }
}

impl RateProcess for TraceRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        let ts = t.as_secs_f64();
        let idx = self.points.partition_point(|&(bt, _)| bt <= ts);
        if idx == 0 {
            self.points[0].1.max(0.0)
        } else {
            self.points[idx - 1].1.max(0.0)
        }
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        let lo = self
            .points
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min);
        let hi = self.points.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
        Some((lo.max(0.0), hi))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        let ts = after.as_secs_f64();
        match self.points.iter().find(|&&(bt, _)| bt > ts) {
            Some(&(bt, _)) => SimTime::from_secs_f64(bt),
            None => SimTime::MAX,
        }
    }
}

/// Scale another process by a constant factor — used by back pressure tests
/// and to re-range a trace for a different workload.
pub struct ScaledRate {
    inner: Box<dyn RateProcess>,
    factor: f64,
}

impl ScaledRate {
    /// Multiply `inner` by `factor` (clamped non-negative).
    pub fn new(inner: Box<dyn RateProcess>, factor: f64) -> Self {
        ScaledRate {
            inner,
            factor: factor.max(0.0),
        }
    }
}

impl RateProcess for ScaledRate {
    fn rate_at(&mut self, t: SimTime) -> f64 {
        self.inner.rate_at(t) * self.factor
    }
    fn bounds(&self) -> Option<(f64, f64)> {
        self.inner
            .bounds()
            .map(|(lo, hi)| (lo * self.factor, hi * self.factor))
    }
    fn next_change_at(&self, after: SimTime) -> SimTime {
        self.inner.next_change_at(after)
    }
}

/// The declarative, `Clone`-able description of a rate process — what
/// fleet tenant specs and scenario files carry instead of a live
/// `Box<dyn RateProcess>` (trait objects hold RNG state and cannot be
/// cloned or compared). The enum itself lives in `nostop-core` (it is a
/// wire type shared with `ScenarioSpec`); this crate owns the
/// instantiation via [`RateSpecExt::build`], keeping the trajectory a
/// pure function of `(spec, rng)`.
pub use nostop_core::scenario::RateSpec;

/// Instantiation of a [`RateSpec`] into a live process. An extension
/// trait because the spec is defined in `nostop-core`, which must not
/// depend on the process implementations here.
pub trait RateSpecExt {
    /// Instantiate the described process. `rng` seeds the stochastic
    /// variants and is ignored by the deterministic ones — so two tenants
    /// sharing a spec but holding different [`SimRng`] forks follow
    /// independent trajectories, while rebuilding with the same fork
    /// replays bit-for-bit. Composite variants (flash crowds, Pareto
    /// bursts, correlated surges) split `rng` into dedicated sub-streams —
    /// see [`crate::adversarial`] for the stream map.
    fn build(&self, rng: SimRng) -> Box<dyn RateProcess>;
}

impl RateSpecExt for RateSpec {
    fn build(&self, rng: SimRng) -> Box<dyn RateProcess> {
        match self {
            RateSpec::Constant { rate } => Box::new(ConstantRate::new(*rate)),
            RateSpec::UniformRandom {
                min_rate,
                max_rate,
                hold_secs,
            } => Box::new(UniformRandomRate::new(
                *min_rate, *max_rate, *hold_secs, rng,
            )),
            RateSpec::Sinusoid {
                base,
                amplitude,
                period_secs,
            } => Box::new(SinusoidRate::new(*base, *amplitude, *period_secs)),
            RateSpec::Ramp {
                start_rate,
                end_rate,
                duration_secs,
            } => Box::new(RampRate::new(*start_rate, *end_rate, *duration_secs)),
            RateSpec::Surge {
                base_rate,
                magnitude,
                surge_secs,
                mean_gap_secs,
            } => Box::new(SurgeRate::new(
                Box::new(ConstantRate::new(*base_rate)),
                *magnitude,
                *surge_secs,
                *mean_gap_secs,
                rng,
            )),
            RateSpec::FlashCrowd {
                base,
                mean_gap_secs,
                crowd_secs,
                pareto_shape,
                min_magnitude,
                max_magnitude,
            } => Box::new(crate::adversarial::FlashCrowdRate::new(
                base.build(rng.fork(crate::adversarial::ADV_BASE_STREAM)),
                *mean_gap_secs,
                *crowd_secs,
                *pareto_shape,
                *min_magnitude,
                *max_magnitude,
                rng.fork(crate::adversarial::ADV_EVENT_STREAM),
            )),
            RateSpec::ParetoBurst {
                base,
                mean_gap_secs,
                burst_secs,
                pareto_shape,
                min_burst_records,
                max_burst_records,
            } => Box::new(crate::adversarial::ParetoBurstRate::new(
                base.build(rng.fork(crate::adversarial::ADV_BASE_STREAM)),
                *mean_gap_secs,
                *burst_secs,
                *pareto_shape,
                *min_burst_records,
                *max_burst_records,
                rng.fork(crate::adversarial::ADV_EVENT_STREAM),
            )),
            RateSpec::CorrelatedSurge {
                base,
                trigger_seed,
                magnitude,
                surge_secs,
                mean_gap_secs,
            } => Box::new(crate::adversarial::CorrelatedSurgeRate::new(
                base.build(rng.fork(crate::adversarial::ADV_BASE_STREAM)),
                *trigger_seed,
                *magnitude,
                *surge_secs,
                *mean_gap_secs,
            )),
        }
    }
}

/// Derive tenant `tenant`'s master seed from a fleet-wide master seed.
///
/// Forks a dedicated xoshiro stream per tenant and takes its first draw,
/// so (a) every tenant's engine sees a statistically independent seed,
/// (b) the mapping is a pure function of `(master, tenant)` — the fleet
/// determinism battery replays it bit-for-bit — and (c) adding tenant N+1
/// never perturbs tenants 0..N.
pub fn tenant_seed(master: u64, tenant: u32) -> u64 {
    SimRng::seed_from_u64(master)
        .fork(0x7E4A_4E7F ^ tenant as u64)
        .next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nostop_simcore::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn constant_rate_is_constant() {
        let mut r = ConstantRate::new(100.0);
        assert_eq!(r.rate_at(t(0.0)), 100.0);
        assert_eq!(r.rate_at(t(1e6)), 100.0);
        assert_eq!(r.bounds(), Some((100.0, 100.0)));
        assert_eq!(ConstantRate::new(-5.0).rate_at(t(0.0)), 0.0);
    }

    #[test]
    fn uniform_random_stays_in_range_and_holds() {
        let mut r = UniformRandomRate::new(7_000.0, 13_000.0, 30.0, SimRng::seed_from_u64(1));
        let mut last: Option<f64> = None;
        let mut changes = 0;
        for i in 0..600 {
            let rate = r.rate_at(t(i as f64));
            assert!((7_000.0..=13_000.0).contains(&rate), "rate {rate}");
            if let Some(prev) = last {
                if (rate - prev).abs() > 1e-9 {
                    changes += 1;
                }
            }
            last = Some(rate);
        }
        // 600 s / 30 s hold => ~19 redraw boundaries (some redraws may repeat values).
        assert!((10..=25).contains(&changes), "changes {changes}");
    }

    #[test]
    fn uniform_random_within_one_hold_is_constant() {
        let mut r = UniformRandomRate::new(100.0, 200.0, 10.0, SimRng::seed_from_u64(5));
        let first = r.rate_at(t(0.0));
        for i in 1..10 {
            assert_eq!(r.rate_at(t(i as f64 * 0.9)), first);
        }
    }

    #[test]
    fn paper_ranges_match_fig5() {
        for (name, lo, hi) in [
            ("logistic-regression", 7_000.0, 13_000.0),
            ("linear-regression", 80_000.0, 120_000.0),
            ("wordcount", 110_000.0, 190_000.0),
            ("page-analyze", 170_000.0, 230_000.0),
        ] {
            let r = UniformRandomRate::paper_range(name, SimRng::seed_from_u64(0)).unwrap();
            assert_eq!(r.bounds(), Some((lo, hi)));
        }
        assert!(UniformRandomRate::paper_range("nope", SimRng::seed_from_u64(0)).is_none());
    }

    #[test]
    fn sinusoid_oscillates_and_floors_at_zero() {
        let mut r = SinusoidRate::new(50.0, 100.0, 60.0);
        assert!((r.rate_at(t(0.0)) - 50.0).abs() < 1e-9);
        // Peak at quarter period.
        assert!((r.rate_at(t(15.0)) - 150.0).abs() < 1e-6);
        // Trough would be negative; must floor at zero.
        assert_eq!(r.rate_at(t(45.0)), 0.0);
    }

    #[test]
    fn ramp_interpolates_then_holds() {
        let mut r = RampRate::new(0.0, 100.0, 10.0);
        assert_eq!(r.rate_at(t(0.0)), 0.0);
        assert!((r.rate_at(t(5.0)) - 50.0).abs() < 1e-9);
        assert_eq!(r.rate_at(t(10.0)), 100.0);
        assert_eq!(r.rate_at(t(99.0)), 100.0);
    }

    #[test]
    fn scheduled_surge_multiplies_during_window() {
        let mut r = SurgeRate::scheduled(Box::new(ConstantRate::new(10.0)), 3.0, 100.0, 20.0);
        assert_eq!(r.rate_at(t(50.0)), 10.0);
        assert_eq!(r.rate_at(t(105.0)), 30.0);
        assert_eq!(r.rate_at(t(119.9)), 30.0);
        assert_eq!(r.rate_at(t(121.0)), 10.0);
        // Scheduled surges fire once.
        assert_eq!(r.rate_at(t(1000.0)), 10.0);
    }

    #[test]
    fn random_surges_recur() {
        let mut r = SurgeRate::new(
            Box::new(ConstantRate::new(10.0)),
            5.0,
            10.0,
            50.0,
            SimRng::seed_from_u64(3),
        );
        let mut surged = 0;
        let mut clock = SimTime::ZERO;
        for _ in 0..2000 {
            clock += SimDuration::from_secs(1);
            if r.rate_at(clock) > 10.0 {
                surged += 1;
            }
        }
        // ~2000s / (60s cycle) * 10s surge ≈ 330 surged seconds; loose bounds.
        assert!(surged > 100 && surged < 800, "surged {surged}");
    }

    #[test]
    fn trace_steps_between_breakpoints() {
        let mut r = TraceRate::new(vec![(10.0, 200.0), (0.0, 100.0), (20.0, 50.0)]);
        assert_eq!(r.rate_at(t(0.0)), 100.0);
        assert_eq!(r.rate_at(t(9.9)), 100.0);
        assert_eq!(r.rate_at(t(10.0)), 200.0);
        assert_eq!(r.rate_at(t(25.0)), 50.0);
        assert_eq!(r.bounds(), Some((50.0, 200.0)));
    }

    #[test]
    fn trace_csv_round_trips() {
        let original = TraceRate::new(vec![(0.0, 100.0), (30.0, 250.0), (90.0, 80.0)]);
        let csv = original.to_csv();
        let mut parsed = TraceRate::from_csv(&csv).expect("own output parses");
        for probe in [0.0, 15.0, 30.0, 60.0, 95.0] {
            let mut orig = original.clone();
            assert_eq!(
                orig.rate_at(t(probe)),
                parsed.rate_at(t(probe)),
                "at t={probe}"
            );
        }
    }

    #[test]
    fn trace_csv_accepts_header_and_rejects_garbage() {
        let ok = TraceRate::from_csv("t_secs,rate\n0,100\n10,200\n");
        assert!(ok.is_ok());
        assert!(TraceRate::from_csv("").is_err());
        assert!(TraceRate::from_csv("t,r\n").is_err(), "header only");
        assert!(TraceRate::from_csv("0,100\nbad,row\n").is_err());
        assert!(
            TraceRate::from_csv("0,100\n5,-3\n").is_err(),
            "negative rate"
        );
        assert!(TraceRate::from_csv("0,NaN\n").is_err());
        assert!(TraceRate::from_csv("0\n").is_err(), "one column");
    }

    #[test]
    fn scaled_rate_multiplies() {
        let mut r = ScaledRate::new(Box::new(ConstantRate::new(40.0)), 2.5);
        assert_eq!(r.rate_at(t(1.0)), 100.0);
        assert_eq!(r.bounds(), Some((100.0, 100.0)));
    }

    #[test]
    fn same_seed_reproduces_trajectory() {
        let mk = || UniformRandomRate::new(0.0, 1000.0, 5.0, SimRng::seed_from_u64(99));
        let mut a = mk();
        let mut b = mk();
        for i in 0..200 {
            assert_eq!(a.rate_at(t(i as f64)), b.rate_at(t(i as f64)));
        }
    }

    #[test]
    fn rate_spec_build_replays_with_same_fork() {
        let specs = [
            RateSpec::Constant { rate: 500.0 },
            RateSpec::UniformRandom {
                min_rate: 100.0,
                max_rate: 900.0,
                hold_secs: 7.0,
            },
            RateSpec::Sinusoid {
                base: 400.0,
                amplitude: 150.0,
                period_secs: 120.0,
            },
            RateSpec::Ramp {
                start_rate: 100.0,
                end_rate: 600.0,
                duration_secs: 300.0,
            },
            RateSpec::Surge {
                base_rate: 300.0,
                magnitude: 3.0,
                surge_secs: 20.0,
                mean_gap_secs: 90.0,
            },
        ];
        for spec in specs {
            let mut a = spec.build(SimRng::seed_from_u64(7).fork(4));
            let mut b = spec.build(SimRng::seed_from_u64(7).fork(4));
            for i in 0..100 {
                assert_eq!(a.rate_at(t(i as f64)), b.rate_at(t(i as f64)), "{spec:?}");
            }
        }
    }

    #[test]
    fn next_change_at_brackets_every_process() {
        // Constant: never changes.
        assert_eq!(ConstantRate::new(5.0).next_change_at(t(3.0)), SimTime::MAX);
        // Uniform-random: the next redraw boundary, stale queries refuse.
        let mut u = UniformRandomRate::new(10.0, 20.0, 30.0, SimRng::seed_from_u64(1));
        u.rate_at(t(5.0));
        assert_eq!(u.next_change_at(t(5.0)), t(30.0));
        assert_eq!(u.next_change_at(t(31.0)), t(31.0), "stale query");
        // Sinusoid varies continuously: no guarantee.
        assert_eq!(
            SinusoidRate::new(10.0, 5.0, 60.0).next_change_at(t(7.0)),
            t(7.0)
        );
        // Ramp: constant only after completion.
        let r = RampRate::new(0.0, 100.0, 10.0);
        assert_eq!(r.next_change_at(t(5.0)), t(5.0));
        assert_eq!(r.next_change_at(t(10.0)), SimTime::MAX);
        // Surge over a constant base: next onset bounds the guarantee.
        let mut s = SurgeRate::scheduled(Box::new(ConstantRate::new(10.0)), 3.0, 100.0, 20.0);
        assert_eq!(s.next_change_at(t(50.0)), t(100.0));
        s.rate_at(t(105.0)); // inside the surge window
        assert_eq!(s.next_change_at(t(105.0)), t(120.0));
        // Trace: the next breakpoint, MAX past the last one.
        let tr = TraceRate::new(vec![(0.0, 100.0), (10.0, 200.0)]);
        assert_eq!(tr.next_change_at(t(3.0)), t(10.0));
        assert_eq!(tr.next_change_at(t(10.0)), SimTime::MAX);
        // Scaled: delegates.
        let sc = ScaledRate::new(Box::new(ConstantRate::new(40.0)), 2.0);
        assert_eq!(sc.next_change_at(t(1.0)), SimTime::MAX);
    }

    /// The `(after, next_change_at)` guarantee holds empirically: replaying
    /// the process inside the promised window never changes the rate.
    #[test]
    fn next_change_at_guarantee_is_sound() {
        let mut r = UniformRandomRate::new(0.0, 1000.0, 7.0, SimRng::seed_from_u64(11));
        let mut clock = 0.25f64;
        for _ in 0..50 {
            let base = r.rate_at(t(clock));
            let until = r.next_change_at(t(clock));
            if until > t(clock) && until < SimTime::MAX {
                let mut probe = t(clock);
                let step = nostop_simcore::SimDuration::from_millis(500);
                while probe + step < until {
                    probe += step;
                    assert_eq!(r.rate_at(probe), base, "changed before promised instant");
                }
                clock = clock.max(probe.as_secs_f64());
            }
            clock += 1.1;
        }
    }

    #[test]
    fn tenant_seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = (0..256).map(|i| tenant_seed(42, i)).collect();
        // Stable across calls (pure function of master + tenant).
        assert_eq!(
            seeds,
            (0..256).map(|i| tenant_seed(42, i)).collect::<Vec<_>>()
        );
        // Pairwise distinct for any realistic fleet size.
        let unique: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
        // Different masters decorrelate every tenant.
        assert_ne!(tenant_seed(42, 0), tenant_seed(43, 0));
    }
}
