//! Synthetic record generators for the four paper workloads (§6.1).
//!
//! Each generator produces records a real job could process: the regression
//! generators emit labelled feature vectors drawn from a ground-truth model
//! (so the streaming learners in `nostop-workloads` actually converge), the
//! text generator emits Zipf-weighted word lines, and the log generator
//! emits syntactically valid Nginx combined-log-format lines.

use nostop_simcore::SimRng;

/// Which workload a record stream feeds. Mirrors the paper's four workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// Labelled points for streaming logistic regression.
    LabelledPoint,
    /// Real-valued regression targets for streaming linear regression.
    RegressionPoint,
    /// Text lines for WordCount.
    TextLine,
    /// Nginx combined-log-format lines for Log/Page Analyze.
    NginxLog,
}

/// One streaming record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `(features, label in {0, 1})` for logistic regression.
    LabelledPoint { features: Vec<f64>, label: u8 },
    /// `(features, target)` for linear regression.
    RegressionPoint { features: Vec<f64>, target: f64 },
    /// A line of whitespace-separated words.
    TextLine(String),
    /// A raw Nginx combined-log-format line.
    NginxLog(String),
}

impl Record {
    /// Approximate wire size in bytes, used for throughput accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Record::LabelledPoint { features, .. } => features.len() * 8 + 1,
            Record::RegressionPoint { features, .. } => features.len() * 8 + 8,
            Record::TextLine(s) | Record::NginxLog(s) => s.len(),
        }
    }

    /// The workload family this record belongs to.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::LabelledPoint { .. } => RecordKind::LabelledPoint,
            Record::RegressionPoint { .. } => RecordKind::RegressionPoint,
            Record::TextLine(_) => RecordKind::TextLine,
            Record::NginxLog(_) => RecordKind::NginxLog,
        }
    }
}

/// A seeded generator of [`Record`]s of one kind.
pub struct RecordGenerator {
    kind: RecordKind,
    rng: SimRng,
    dim: usize,
    /// Ground-truth weights for the regression generators (index 0 is bias).
    truth: Vec<f64>,
    vocab: Vec<String>,
    /// Cumulative Zipf weights over `vocab`.
    zipf_cdf: Vec<f64>,
    urls: Vec<String>,
    emitted: u64,
}

impl RecordGenerator {
    /// A generator for `kind` with feature dimension `dim` (regression kinds
    /// only; ignored otherwise).
    pub fn new(kind: RecordKind, dim: usize, mut rng: SimRng) -> Self {
        assert!(dim >= 1, "feature dimension must be at least 1");
        let truth: Vec<f64> = (0..=dim).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let vocab = default_vocab();
        let zipf_cdf = zipf_cdf(vocab.len(), 1.1);
        let urls = default_urls();
        RecordGenerator {
            kind,
            rng,
            dim,
            truth,
            vocab,
            zipf_cdf,
            urls,
            emitted: 0,
        }
    }

    /// The ground-truth weight vector `[bias, w_1, …, w_dim]` used by the
    /// regression generators — exposed so tests can verify learner recovery.
    pub fn ground_truth(&self) -> &[f64] {
        &self.truth
    }

    /// Total records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Generate the next record.
    pub fn next_record(&mut self) -> Record {
        self.emitted += 1;
        match self.kind {
            RecordKind::LabelledPoint => self.gen_labelled(),
            RecordKind::RegressionPoint => self.gen_regression(),
            RecordKind::TextLine => Record::TextLine(self.gen_text_line(8)),
            RecordKind::NginxLog => Record::NginxLog(self.gen_nginx_line()),
        }
    }

    /// Generate `n` records into a fresh vector.
    pub fn take(&mut self, n: usize) -> Vec<Record> {
        (0..n).map(|_| self.next_record()).collect()
    }

    fn gen_features(&mut self) -> Vec<f64> {
        (0..self.dim).map(|_| self.rng.normal(0.0, 1.0)).collect()
    }

    fn gen_labelled(&mut self) -> Record {
        let features = self.gen_features();
        let logit: f64 = self.truth[0]
            + features
                .iter()
                .zip(&self.truth[1..])
                .map(|(x, w)| x * w)
                .sum::<f64>();
        let p = 1.0 / (1.0 + (-logit).exp());
        let label = u8::from(self.rng.bernoulli(p));
        Record::LabelledPoint { features, label }
    }

    fn gen_regression(&mut self) -> Record {
        let features = self.gen_features();
        let target: f64 = self.truth[0]
            + features
                .iter()
                .zip(&self.truth[1..])
                .map(|(x, w)| x * w)
                .sum::<f64>()
            + self.rng.normal(0.0, 0.1);
        Record::RegressionPoint { features, target }
    }

    fn sample_word(&mut self) -> &str {
        let u = self.rng.uniform(0.0, 1.0);
        let idx = self
            .zipf_cdf
            .partition_point(|&c| c < u)
            .min(self.vocab.len() - 1);
        &self.vocab[idx]
    }

    fn gen_text_line(&mut self, words: usize) -> String {
        let n = self.rng.uniform_u64(3, words as u64) as usize;
        let mut line = String::with_capacity(n * 8);
        for i in 0..n {
            if i > 0 {
                line.push(' ');
            }
            let w = self.sample_word().to_owned();
            line.push_str(&w);
        }
        line
    }

    fn gen_nginx_line(&mut self) -> String {
        // ~2% of lines are malformed, exercising the "washing" step the
        // paper's Log Analyze workload performs.
        if self.rng.bernoulli(0.02) {
            return "!!corrupt log fragment".to_owned();
        }
        let octets = (
            self.rng.uniform_u64(1, 254),
            self.rng.uniform_u64(0, 254),
            self.rng.uniform_u64(0, 254),
            self.rng.uniform_u64(1, 254),
        );
        let url_idx = self.rng.uniform_u64(0, self.urls.len() as u64 - 1) as usize;
        let method = if self.rng.bernoulli(0.8) {
            "GET"
        } else {
            "POST"
        };
        let status = *pick(&mut self.rng, &[200, 200, 200, 200, 301, 404, 500]);
        let bytes = self.rng.uniform_u64(200, 50_000);
        let ts_sec = self.emitted % 60;
        let referer = if self.rng.bernoulli(0.5) {
            "https://example.com/"
        } else {
            "-"
        };
        format!(
            "{}.{}.{}.{} - - [07/Jul/2026:12:00:{:02} +0000] \"{} {} HTTP/1.1\" {} {} \"{}\" \"Mozilla/5.0\"",
            octets.0, octets.1, octets.2, octets.3, ts_sec, method, self.urls[url_idx], status, bytes, referer
        )
    }
}

fn pick<'a, T>(rng: &mut SimRng, xs: &'a [T]) -> &'a T {
    &xs[rng.uniform_u64(0, xs.len() as u64 - 1) as usize]
}

fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn default_vocab() -> Vec<String> {
    // A fixed 64-word vocabulary; Zipf weighting concentrates mass at the front.
    const WORDS: [&str; 64] = [
        "the",
        "of",
        "and",
        "to",
        "a",
        "in",
        "stream",
        "data",
        "batch",
        "spark",
        "system",
        "time",
        "rate",
        "delay",
        "executor",
        "interval",
        "config",
        "tune",
        "queue",
        "job",
        "task",
        "node",
        "core",
        "memory",
        "shuffle",
        "stage",
        "record",
        "event",
        "window",
        "state",
        "input",
        "output",
        "latency",
        "stable",
        "process",
        "engine",
        "cluster",
        "worker",
        "master",
        "kafka",
        "broker",
        "partition",
        "offset",
        "log",
        "line",
        "word",
        "count",
        "map",
        "reduce",
        "filter",
        "join",
        "group",
        "key",
        "value",
        "plan",
        "cost",
        "model",
        "noise",
        "step",
        "gain",
        "bound",
        "scale",
        "search",
        "optimal",
    ];
    WORDS.iter().map(|s| s.to_string()).collect()
}

fn default_urls() -> Vec<String> {
    [
        "/index.html",
        "/products",
        "/products/42",
        "/cart",
        "/checkout",
        "/api/v1/items",
        "/api/v1/users",
        "/static/app.js",
        "/static/site.css",
        "/search?q=stream",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(kind: RecordKind) -> RecordGenerator {
        RecordGenerator::new(kind, 4, SimRng::seed_from_u64(42))
    }

    #[test]
    fn labelled_points_have_dim_and_binary_labels() {
        let mut g = gen(RecordKind::LabelledPoint);
        let mut ones = 0;
        for _ in 0..1000 {
            match g.next_record() {
                Record::LabelledPoint { features, label } => {
                    assert_eq!(features.len(), 4);
                    assert!(label <= 1);
                    ones += label as u32;
                }
                other => panic!("wrong kind: {other:?}"),
            }
        }
        // Labels are Bernoulli(sigmoid(logit)); both classes should appear.
        assert!(ones > 50 && ones < 950, "ones {ones}");
        assert_eq!(g.emitted(), 1000);
    }

    #[test]
    fn regression_targets_correlate_with_truth() {
        let mut g = gen(RecordKind::RegressionPoint);
        let truth = g.ground_truth().to_vec();
        let mut err = 0.0;
        let n = 500;
        for _ in 0..n {
            if let Record::RegressionPoint { features, target } = g.next_record() {
                let pred: f64 = truth[0]
                    + features
                        .iter()
                        .zip(&truth[1..])
                        .map(|(x, w)| x * w)
                        .sum::<f64>();
                err += (pred - target).powi(2);
            } else {
                panic!("wrong kind");
            }
        }
        // Residual variance should match the 0.1-std injected noise.
        assert!((err / n as f64).sqrt() < 0.15);
    }

    #[test]
    fn text_lines_are_nonempty_and_zipfy() {
        let mut g = gen(RecordKind::TextLine);
        let mut the_count = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            if let Record::TextLine(line) = g.next_record() {
                assert!(!line.is_empty());
                for w in line.split_whitespace() {
                    total += 1;
                    if w == "the" {
                        the_count += 1;
                    }
                }
            } else {
                panic!("wrong kind");
            }
        }
        // Rank-1 Zipf word should dominate: well above uniform 1/64 share.
        assert!(the_count as f64 / total as f64 > 0.05);
    }

    #[test]
    fn nginx_lines_mostly_parse_shape() {
        let mut g = gen(RecordKind::NginxLog);
        let mut ok = 0;
        for _ in 0..1000 {
            if let Record::NginxLog(line) = g.next_record() {
                if line.contains("HTTP/1.1") && line.contains('[') {
                    ok += 1;
                }
            } else {
                panic!("wrong kind");
            }
        }
        // ~2% malformed by construction.
        assert!((950..=1000).contains(&ok), "ok {ok}");
    }

    #[test]
    fn wire_size_positive_and_kind_round_trip() {
        for kind in [
            RecordKind::LabelledPoint,
            RecordKind::RegressionPoint,
            RecordKind::TextLine,
            RecordKind::NginxLog,
        ] {
            let mut g = gen(kind);
            let r = g.next_record();
            assert!(r.wire_size() > 0);
            assert_eq!(r.kind(), kind);
        }
    }

    #[test]
    fn same_seed_same_records() {
        let mut a = gen(RecordKind::TextLine);
        let mut b = gen(RecordKind::TextLine);
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }
}
