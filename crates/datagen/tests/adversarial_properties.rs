//! Property suite for the adversarial arrival combinators and hot-key
//! partition skew (the `scenarios` CI leg's randomized half).
//!
//! Contracts pinned here:
//!
//! 1. **Pareto draws** respect their bounds — every sample lands in
//!    `[scale, cap]` for arbitrary shape/scale/cap — and are a pure
//!    function of the RNG seed (same seed ⇒ bitwise-identical samples).
//! 2. **Composite combinators are replayable**: a flash-crowd,
//!    Pareto-burst, or correlated-surge process built twice from the same
//!    [`RateSpec`] and seed answers arbitrary time queries bitwise
//!    identically, and never drops below its base process's floor.
//! 3. **Correlated surges share a trigger clock**: two processes over
//!    different bases but one `trigger_seed` surge at the same instants.
//! 4. **Hot-key skew conserves records**: a skewed broker's per-partition
//!    production sums to exactly the requested total for arbitrary
//!    weights and produce sequences, and hot partitions outproduce cold
//!    ones in weight proportion.

use nostop_core::scenario::{RateSpec, SkewSpec};
use nostop_datagen::adversarial::pareto_draw;
use nostop_datagen::broker::{Broker, BrokerConfig};
use nostop_datagen::rate::RateSpecExt;
use nostop_simcore::{SimRng, SimTime};
use proptest::prelude::*;

fn at(t: f64) -> SimTime {
    SimTime::from_micros((t * 1e6) as u64)
}

/// An arbitrary composite spec over a constant base, keyed by `variant`.
fn composite_spec(variant: u8, base_rate: f64, gap: f64, shape: f64) -> RateSpec {
    let base = Box::new(RateSpec::Constant { rate: base_rate });
    match variant % 3 {
        0 => RateSpec::FlashCrowd {
            base,
            mean_gap_secs: gap,
            crowd_secs: 30.0,
            pareto_shape: shape,
            min_magnitude: 1.5,
            max_magnitude: 6.0,
        },
        1 => RateSpec::ParetoBurst {
            base,
            mean_gap_secs: gap,
            burst_secs: 20.0,
            pareto_shape: shape,
            min_burst_records: 10_000.0,
            max_burst_records: 5_000_000.0,
        },
        _ => RateSpec::CorrelatedSurge {
            base,
            trigger_seed: 99,
            magnitude: 3.0,
            surge_secs: 45.0,
            mean_gap_secs: gap,
        },
    }
}

proptest! {
    #[test]
    fn pareto_draws_respect_cap_and_replay_per_seed(
        seed in 0u64..1_000_000,
        shape in 0.2f64..5.0,
        scale in 0.1f64..1_000.0,
        cap_factor in 1.0f64..100.0,
        draws in 1usize..200,
    ) {
        let cap = scale * cap_factor;
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..draws {
            let x = pareto_draw(&mut a, shape, scale, cap);
            prop_assert!(x >= scale, "draw {x} below scale {scale}");
            prop_assert!(x <= cap, "draw {x} above cap {cap}");
            // Same seed ⇒ bitwise-identical sample stream.
            prop_assert_eq!(x.to_bits(), pareto_draw(&mut b, shape, scale, cap).to_bits());
        }
    }

    #[test]
    fn composite_rates_replay_and_respect_base_floor(
        variant in 0u8..3,
        seed in 0u64..1_000_000,
        base_rate in 1_000.0f64..200_000.0,
        gap in 30.0f64..600.0,
        shape in 0.8f64..3.0,
        times in prop::collection::vec(0.0f64..3_600.0, 1..40),
    ) {
        let spec = composite_spec(variant, base_rate, gap, shape);
        let mut p = spec.build(SimRng::seed_from_u64(seed));
        let mut q = spec.build(SimRng::seed_from_u64(seed));
        // Combinators only answer monotone queries (lazy onset state).
        let mut times = times;
        times.sort_by(f64::total_cmp);
        for &t in &times {
            let r = p.rate_at(at(t));
            prop_assert_eq!(r.to_bits(), q.rate_at(at(t)).to_bits());
            prop_assert!(
                r >= base_rate - 1e-9,
                "composite rate {r} fell below its base {base_rate} at t={t}"
            );
        }
    }

    #[test]
    fn correlated_surges_share_trigger_instants(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        trigger in 0u64..1_000_000,
        base_a in 1_000.0f64..100_000.0,
        base_b in 1_000.0f64..100_000.0,
    ) {
        let spec = |rate: f64| RateSpec::CorrelatedSurge {
            base: Box::new(RateSpec::Constant { rate }),
            trigger_seed: trigger,
            magnitude: 4.0,
            surge_secs: 60.0,
            mean_gap_secs: 120.0,
        };
        let mut a = spec(base_a).build(SimRng::seed_from_u64(seed_a));
        let mut b = spec(base_b).build(SimRng::seed_from_u64(seed_b));
        for i in 0..360 {
            let t = at(i as f64 * 10.0);
            // Surging iff rate is above base — must agree at every probe
            // even though bases and build seeds differ.
            let sa = a.rate_at(t) > base_a + 1e-9;
            let sb = b.rate_at(t) > base_b + 1e-9;
            prop_assert_eq!(sa, sb, "trigger streams diverged at t={}", i * 10);
        }
    }

    #[test]
    fn hot_key_skew_conserves_records(
        partitions in 1usize..64,
        hot_fraction in 0.01f64..0.99,
        hot_weight in 1.5f64..50.0,
        ops in prop::collection::vec(0u64..50_000, 1..40),
    ) {
        let skew = SkewSpec::HotKey { hot_fraction, hot_weight };
        let Some(weights) = skew.weights(partitions) else {
            // Every partition hot ⇒ uniform again; nothing skewed to test.
            return Ok(());
        };
        let mut b = Broker::new(BrokerConfig { partitions, max_consume_rate: None })
            .with_skew(weights.clone());
        let mut want = 0u64;
        for n in ops {
            b.produce(n);
            want += n;
            // Conservation at every step, not just the end: whatever the
            // weighted split produced is fully accounted for across
            // partitions, and the fractional carries hold back at most
            // one record per partition — they never create records.
            prop_assert_eq!(b.total_produced(), b.total_consumed() + b.total_lag());
            let total = b.total_produced();
            prop_assert!(total <= want, "produced {total} > requested {want}");
            prop_assert!(
                want - total <= partitions as u64,
                "deficit {} exceeds one record per partition",
                want - total
            );
        }
        // Hot partitions outproduce cold ones in weight proportion
        // (±1 record of fractional carry per partition).
        let hot = skew.hot_partitions(partitions);
        if hot < partitions && want > 0 {
            let lags = b.partition_lags();
            let per_hot = want as f64 * weights[0];
            let per_cold = want as f64 * weights[partitions - 1];
            prop_assert!((lags[0] as f64 - per_hot).abs() <= 1.0);
            prop_assert!((lags[partitions - 1] as f64 - per_cold).abs() <= 1.0);
        }
    }
}
