//! Property-based tests for the data-generation substrate.

use nostop_datagen::broker::{Broker, BrokerConfig};
use nostop_datagen::rate::{ConstantRate, RampRate, RateProcess, TraceRate, UniformRandomRate};
use nostop_datagen::StreamGenerator;
use nostop_simcore::{SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn broker_conserves_records(
        partitions in 1usize..64,
        ops in prop::collection::vec((0u64..10_000, 0u64..10_000), 1..60),
    ) {
        // produced == consumed + lag at every point in any interleaving of
        // produce/consume operations.
        let mut b = Broker::new(BrokerConfig { partitions, max_consume_rate: None });
        for (produce, consume) in ops {
            b.produce(produce);
            b.consume_exact(consume);
            prop_assert_eq!(b.total_produced(), b.total_consumed() + b.total_lag());
        }
    }

    #[test]
    fn broker_lag_spread_is_uniform(partitions in 1usize..32, total in 0u64..100_000) {
        let mut b = Broker::new(BrokerConfig { partitions, max_consume_rate: None });
        b.produce(total);
        let lags = b.partition_lags();
        let max = lags.iter().max().copied().unwrap_or(0);
        let min = lags.iter().min().copied().unwrap_or(0);
        // Uniform production: spread at most 1 record (fractional carry).
        prop_assert!(max - min <= 1, "spread {max}-{min}");
    }

    #[test]
    fn rate_limit_is_respected(
        rate in 1.0f64..10_000.0,
        window in 0.01f64..100.0,
        backlog in 0u64..1_000_000,
    ) {
        let mut b = Broker::new(BrokerConfig { partitions: 8, max_consume_rate: Some(rate) });
        b.produce(backlog);
        let consumed = b.consume_window(window);
        prop_assert!(consumed as f64 <= rate * window + 1.0, "{consumed} vs {}", rate * window);
    }

    #[test]
    fn generator_total_is_step_pattern_independent(
        rate in 1.0f64..100_000.0,
        splits in prop::collection::vec(0.05f64..5.0, 1..30),
    ) {
        let total_secs: f64 = splits.iter().sum();
        let run_coarse = {
            let mut g = StreamGenerator::new(Box::new(ConstantRate::new(rate)));
            let mut b = Broker::new(BrokerConfig::default());
            g.advance_to(SimTime::from_secs_f64(total_secs), &mut b)
        };
        let run_fine = {
            let mut g = StreamGenerator::new(Box::new(ConstantRate::new(rate)));
            let mut b = Broker::new(BrokerConfig::default());
            let mut t = 0.0;
            let mut total = 0;
            for s in &splits {
                t += s;
                total += g.advance_to(SimTime::from_secs_f64(t), &mut b);
            }
            total
        };
        // SimTime rounding of the split points can shift the integration
        // grid by at most one microsecond per split.
        let tolerance = 1 + (rate * 1e-6 * splits.len() as f64).ceil() as u64;
        prop_assert!(
            run_coarse.abs_diff(run_fine) <= tolerance,
            "{run_coarse} vs {run_fine}"
        );
    }

    #[test]
    fn uniform_rate_stays_in_bounds_forever(
        lo in 0.0f64..1e5,
        width in 1.0f64..1e5,
        hold in 0.5f64..120.0,
        seed in any::<u64>(),
        ts in prop::collection::vec(0.0f64..1e5, 1..50),
    ) {
        let hi = lo + width;
        let mut r = UniformRandomRate::new(lo, hi, hold, SimRng::seed_from_u64(seed));
        let mut sorted = ts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for t in sorted {
            let rate = r.rate_at(SimTime::from_secs_f64(t));
            prop_assert!((lo..=hi).contains(&rate));
        }
    }

    #[test]
    fn ramp_is_monotone(start in 0.0f64..1e5, end in 0.0f64..1e5, dur in 0.1f64..1e4) {
        let mut r = RampRate::new(start, end, dur);
        let mut prev = r.rate_at(SimTime::ZERO);
        for i in 1..=20 {
            let t = SimTime::from_secs_f64(dur * i as f64 / 10.0);
            let v = r.rate_at(t);
            if end >= start {
                prop_assert!(v >= prev - 1e-9);
            } else {
                prop_assert!(v <= prev + 1e-9);
            }
            prev = v;
        }
    }

    #[test]
    fn trace_rate_is_piecewise_constant(points in prop::collection::vec((0.0f64..1e4, 0.0f64..1e5), 1..20)) {
        let mut r = TraceRate::new(points.clone());
        let mut sorted = points;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Between breakpoints the value equals the preceding breakpoint's.
        for w in sorted.windows(2) {
            let mid = (w[0].0 + w[1].0) / 2.0;
            if mid > w[0].0 && mid < w[1].0 {
                let got = r.rate_at(SimTime::from_secs_f64(mid));
                // The preceding breakpoint with the largest time wins; with
                // duplicate times the last sorted entry at that time wins.
                let expect = sorted
                    .iter().rfind(|(t, _)| *t <= mid)
                    .unwrap()
                    .1
                    .max(0.0);
                prop_assert!((got - expect).abs() < 1e-9);
            }
        }
    }
}
