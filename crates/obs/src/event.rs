//! The trace event model and its well-formedness rules.
//!
//! A trace is a sequence of events in *causal append order*: the order the
//! instrumented code emitted them, which is deterministic for a given seed.
//! Each event carries a DES timestamp (`at_us`, virtual microseconds —
//! never wall-clock) and a *track* naming the subsystem that emitted it.
//! Timestamps are monotone within a span pair but not globally: the
//! scheduler computes a whole job synchronously at submission, so stage
//! spans append before the job's own exit even though their timestamps lie
//! inside the job window.
//!
//! Well-formedness is therefore defined **per track**: on each track,
//! every `Exit` must name the innermost open `Enter`, all spans must be
//! closed at end of trace, a span's exit must not precede its entry, and
//! every counter's cumulative total must be monotone (`total == previous +
//! delta`). [`check_events`] validates an in-memory trace and
//! [`check_jsonl`] the exported form.

use nostop_simcore::Json;

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// DES timestamp, virtual microseconds.
    pub at_us: u64,
    /// Subsystem that emitted the event (`"engine"`, `"controller"`, ...).
    pub track: &'static str,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    Enter {
        /// Span name.
        span: &'static str,
        /// Numeric attributes captured at entry.
        fields: Vec<(&'static str, f64)>,
    },
    /// The innermost open span on this track closed.
    Exit {
        /// Span name (must match the innermost open entry).
        span: &'static str,
        /// Numeric attributes captured at exit.
        fields: Vec<(&'static str, f64)>,
    },
    /// A point event.
    Instant {
        /// Event name.
        name: &'static str,
        /// Numeric attributes.
        fields: Vec<(&'static str, f64)>,
    },
    /// A monotonic counter increment.
    Count {
        /// Counter name (global across tracks).
        name: &'static str,
        /// This increment.
        delta: u64,
        /// Cumulative total after the increment.
        total: u64,
    },
}

/// Aggregate statistics for one span name on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Track the span ran on.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Completed (entered and exited) instances.
    pub count: u64,
    /// Sum of exit − entry times, virtual microseconds.
    pub total_us: u64,
}

/// Validate an in-memory trace against the per-track nesting and
/// counter-monotonicity rules. Returns the first violation.
pub fn check_events(events: &[Event]) -> Result<(), String> {
    let mut checker = Checker::default();
    for (i, ev) in events.iter().enumerate() {
        let kind = match &ev.kind {
            EventKind::Enter { span, .. } => CheckedKind::Enter(span),
            EventKind::Exit { span, .. } => CheckedKind::Exit(span),
            EventKind::Instant { .. } => CheckedKind::Instant,
            EventKind::Count { name, delta, total } => CheckedKind::Count(name, *delta, *total),
        };
        checker.step(i, ev.at_us, ev.track, kind)?;
    }
    checker.finish()
}

/// Validate an exported JSONL trace. Every line must parse as JSON; the
/// event lines must satisfy the same rules as [`check_events`], and the
/// `counter_total` trailer lines must match the final cumulative totals.
pub fn check_jsonl(text: &str) -> Result<(), String> {
    let mut checker = Checker::default();
    let mut trailer_totals: Vec<(String, u64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ev = v
            .field_str("ev")
            .map_err(|e| format!("line {}: {e}", lineno + 1))?
            .to_string();
        let bad = |e: nostop_simcore::json::Error| format!("line {}: {e}", lineno + 1);
        match ev.as_str() {
            "meta" => {
                if v.field_u64_or_zero("dropped").unwrap_or(0) > 0 {
                    checker.truncated = true;
                }
            }
            "cell" => {}
            "counter_total" => {
                trailer_totals.push((v.field_str("name").map_err(bad)?.to_string(), {
                    v.field_u64("total").map_err(bad)?
                }));
            }
            "enter" | "exit" | "point" | "count" => {
                let at_us = v.field_u64("t_us").map_err(bad)?;
                let track = v.field_str("track").map_err(bad)?.to_string();
                let kind = match ev.as_str() {
                    "enter" => OwnedKind::Enter(v.field_str("span").map_err(bad)?.to_string()),
                    "exit" => OwnedKind::Exit(v.field_str("span").map_err(bad)?.to_string()),
                    "point" => OwnedKind::Instant,
                    _ => OwnedKind::Count(
                        v.field_str("name").map_err(bad)?.to_string(),
                        v.field_u64("delta").map_err(bad)?,
                        v.field_u64("total").map_err(bad)?,
                    ),
                };
                let kind = match &kind {
                    OwnedKind::Enter(s) => CheckedKind::Enter(s),
                    OwnedKind::Exit(s) => CheckedKind::Exit(s),
                    OwnedKind::Instant => CheckedKind::Instant,
                    OwnedKind::Count(n, d, t) => CheckedKind::Count(n, *d, *t),
                };
                checker.step(lineno, at_us, &track, kind)?;
            }
            other => return Err(format!("line {}: unknown ev `{other}`", lineno + 1)),
        }
    }
    checker.finish()?;
    for (name, total) in trailer_totals {
        let seen = checker
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| *t)
            .unwrap_or(0);
        if seen != total {
            return Err(format!(
                "counter_total for `{name}` says {total} but events sum to {seen}"
            ));
        }
    }
    Ok(())
}

/// Per-span aggregates over completed (entered-and-exited) spans, in
/// first-seen order — the data behind `trace_report`'s summary table.
pub fn span_stats(events: &[Event]) -> Vec<SpanStat> {
    let mut stacks: Vec<(String, Vec<(String, u64)>)> = Vec::new();
    let mut stats: Vec<SpanStat> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::Enter { span, .. } => {
                let stack = match stacks.iter_mut().find(|(t, _)| t == ev.track) {
                    Some((_, s)) => s,
                    None => {
                        stacks.push((ev.track.to_string(), Vec::new()));
                        &mut stacks.last_mut().expect("just pushed").1
                    }
                };
                stack.push((span.to_string(), ev.at_us));
            }
            EventKind::Exit { .. } => {
                let Some((_, stack)) = stacks.iter_mut().find(|(t, _)| t == ev.track) else {
                    continue;
                };
                let Some((name, entered)) = stack.pop() else {
                    continue;
                };
                let dur = ev.at_us.saturating_sub(entered);
                match stats
                    .iter_mut()
                    .find(|s| s.track == ev.track && s.name == name)
                {
                    Some(s) => {
                        s.count += 1;
                        s.total_us += dur;
                    }
                    None => stats.push(SpanStat {
                        track: ev.track.to_string(),
                        name,
                        count: 1,
                        total_us: dur,
                    }),
                }
            }
            _ => {}
        }
    }
    stats
}

enum OwnedKind {
    Enter(String),
    Exit(String),
    Instant,
    Count(String, u64, u64),
}

enum CheckedKind<'a> {
    Enter(&'a str),
    Exit(&'a str),
    Instant,
    Count(&'a str, u64, u64),
}

/// The shared state machine behind [`check_events`] and [`check_jsonl`].
#[derive(Default)]
struct Checker {
    /// Open-span stacks, one per track: `(track, [(span, entered_at_us)])`.
    stacks: Vec<(String, Vec<(String, u64)>)>,
    /// Cumulative counter totals by name.
    counters: Vec<(String, u64)>,
    /// When the trace declares ring evictions, a counter's first surviving
    /// event sets its baseline (the evicted prefix carried the rest);
    /// complete traces must build every total from zero.
    truncated: bool,
}

impl Checker {
    fn step(
        &mut self,
        at: usize,
        at_us: u64,
        track: &str,
        kind: CheckedKind,
    ) -> Result<(), String> {
        match kind {
            CheckedKind::Enter(span) => {
                let stack = match self.stacks.iter_mut().find(|(t, _)| t == track) {
                    Some((_, s)) => s,
                    None => {
                        self.stacks.push((track.to_string(), Vec::new()));
                        &mut self.stacks.last_mut().expect("just pushed").1
                    }
                };
                stack.push((span.to_string(), at_us));
            }
            CheckedKind::Exit(span) => {
                let stack = self
                    .stacks
                    .iter_mut()
                    .find(|(t, _)| t == track)
                    .map(|(_, s)| s)
                    .ok_or_else(|| {
                        format!("event {at}: exit `{span}` on unopened track `{track}`")
                    })?;
                let (open, entered) = stack.pop().ok_or_else(|| {
                    format!("event {at}: exit `{span}` with no open span on track `{track}`")
                })?;
                if open != span {
                    return Err(format!(
                        "event {at}: exit `{span}` does not match innermost open `{open}` on track `{track}`"
                    ));
                }
                if at_us < entered {
                    return Err(format!(
                        "event {at}: span `{span}` exits at {at_us} µs, before its entry at {entered} µs"
                    ));
                }
            }
            CheckedKind::Instant => {}
            CheckedKind::Count(name, delta, total) => {
                let entry = match self.counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, t)) => t,
                    None => {
                        let baseline = if self.truncated {
                            total.checked_sub(delta).ok_or_else(|| {
                                format!(
                                    "event {at}: counter `{name}` total {total} below its own delta {delta}"
                                )
                            })?
                        } else {
                            0
                        };
                        self.counters.push((name.to_string(), baseline));
                        &mut self.counters.last_mut().expect("just pushed").1
                    }
                };
                let expected = entry.checked_add(delta).ok_or_else(|| {
                    format!("event {at}: counter `{name}` overflows at delta {delta}")
                })?;
                if total != expected {
                    return Err(format!(
                        "event {at}: counter `{name}` total {total} breaks monotonicity (expected {expected})"
                    ));
                }
                *entry = expected;
            }
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), String> {
        for (track, stack) in &self.stacks {
            if let Some((span, _)) = stack.last() {
                return Err(format!(
                    "span `{span}` on track `{track}` never exited ({} open at end of trace)",
                    stack.len()
                ));
            }
        }
        Ok(())
    }
}
