//! JSONL export of a trace snapshot.
//!
//! One JSON object per line, serialized with simcore's deterministic
//! writer (insertion-ordered keys, shortest-round-trip numbers), so the
//! export is byte-identical across runs and `NOSTOP_JOBS` worker counts.
//! Layout: a `meta` header, the events in causal append order, then one
//! `counter_total` trailer per counter.

use crate::event::{Event, EventKind};
use crate::TraceSnapshot;
use nostop_simcore::json::{self, Json};

/// Schema tag stamped into every trace header.
pub const SCHEMA: &str = "nostop-trace/1";

/// Serialize a snapshot as JSONL (every line newline-terminated).
pub fn export(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let header = json::obj(vec![
        ("ev", json::str("meta")),
        ("schema", json::str(SCHEMA)),
        ("events", json::uint(snapshot.events.len() as u64)),
        ("dropped", json::uint(snapshot.dropped)),
    ]);
    push_line(&mut out, &header);
    for event in &snapshot.events {
        push_line(&mut out, &event_json(event));
    }
    for &(name, total) in &snapshot.counters {
        let trailer = json::obj(vec![
            ("ev", json::str("counter_total")),
            ("name", json::str(name)),
            ("total", json::uint(total)),
        ]);
        push_line(&mut out, &trailer);
    }
    out
}

fn push_line(out: &mut String, v: &Json) {
    out.push_str(&v.to_string());
    out.push('\n');
}

fn fields_json(fields: &[(&'static str, f64)]) -> Json {
    json::obj(fields.iter().map(|&(k, v)| (k, json::num(v))).collect())
}

fn event_json(event: &Event) -> Json {
    let mut pairs: Vec<(&str, Json)> = Vec::with_capacity(6);
    match &event.kind {
        EventKind::Enter { span, fields } => {
            pairs.push(("ev", json::str("enter")));
            pairs.push(("t_us", json::uint(event.at_us)));
            pairs.push(("track", json::str(event.track)));
            pairs.push(("span", json::str(*span)));
            if !fields.is_empty() {
                pairs.push(("fields", fields_json(fields)));
            }
        }
        EventKind::Exit { span, fields } => {
            pairs.push(("ev", json::str("exit")));
            pairs.push(("t_us", json::uint(event.at_us)));
            pairs.push(("track", json::str(event.track)));
            pairs.push(("span", json::str(*span)));
            if !fields.is_empty() {
                pairs.push(("fields", fields_json(fields)));
            }
        }
        EventKind::Instant { name, fields } => {
            pairs.push(("ev", json::str("point")));
            pairs.push(("t_us", json::uint(event.at_us)));
            pairs.push(("track", json::str(event.track)));
            pairs.push(("name", json::str(*name)));
            if !fields.is_empty() {
                pairs.push(("fields", fields_json(fields)));
            }
        }
        EventKind::Count { name, delta, total } => {
            pairs.push(("ev", json::str("count")));
            pairs.push(("t_us", json::uint(event.at_us)));
            pairs.push(("track", json::str(event.track)));
            pairs.push(("name", json::str(*name)));
            pairs.push(("delta", json::uint(*delta)));
            pairs.push(("total", json::uint(*total)));
        }
    }
    json::obj(pairs)
}
