//! Deterministic observability for the NoStop workspace.
//!
//! A [`Recorder`] collects lightweight spans, point events, and monotonic
//! counters from the simulator and controller. Three properties make it
//! safe to leave compiled into the hot path:
//!
//! * **DES-clock only.** Every event is stamped with virtual time
//!   ([`SimTime`]), never wall-clock, so a trace is a pure function of the
//!   seed — byte-identical across runs, machines, and `NOSTOP_JOBS`
//!   worker counts.
//! * **Zero overhead when disabled.** A disabled recorder is an `Option`
//!   that is `None`; every emission method is one predictable branch.
//!   Instrumented call sites additionally guard field construction behind
//!   [`Recorder::is_enabled`]. The `obs-off` cargo feature goes further
//!   and compiles the recorder to a ZST whose methods are empty `#[inline]`
//!   functions, erasing the instrumentation from the binary entirely.
//! * **Bounded memory.** Events land in a ring sink ([`sink::RingSink`])
//!   that evicts the oldest event when full and counts evictions; counter
//!   totals are kept separately and stay exact across eviction.
//!
//! Recorders clone cheaply and share one sink; [`Recorder::with_track`]
//! tags a clone's events with a subsystem name. Span nesting is
//! well-formed *per track* ([`event::check_events`]) — tracks interleave
//! freely in the shared ring.

pub mod event;
pub mod jsonl;
#[cfg(not(feature = "obs-off"))]
pub mod sink;

pub use event::{check_events, check_jsonl, span_stats, Event, EventKind, SpanStat};
use nostop_simcore::SimTime;

/// Intern a runtime-built track name into a `&'static str`.
///
/// [`Recorder::with_track`] takes `&'static str` so the hot path never
/// clones strings; fleet code needs per-tenant tracks like `"t17.engine"`
/// whose names only exist at runtime. Interning leaks each distinct name
/// once and returns the same `&'static str` for every later request, so
/// a fleet of N tenants costs N small leaks for the whole process, not
/// per-run allocations. Available in both obs builds (the `obs-off` ZST
/// recorder still accepts a track argument).
pub fn track_name(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let table = INTERNED.get_or_init(|| Mutex::new(Vec::new()));
    let mut table = table.lock().expect("track intern table poisoned");
    if let Some(existing) = table.iter().find(|s| **s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

/// A point-in-time copy of everything a recorder holds.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Buffered events in causal append order.
    pub events: Vec<Event>,
    /// Cumulative counter totals in first-increment order.
    pub counters: Vec<(&'static str, u64)>,
    /// Events evicted by the ring bound.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Export as JSONL (see [`jsonl::export`]).
    pub fn to_jsonl(&self) -> String {
        jsonl::export(self)
    }
}

#[cfg(not(feature = "obs-off"))]
mod recorder_impl {
    use super::*;
    use crate::sink::RingSink;
    use std::sync::{Arc, Mutex};

    /// A handle to a (possibly shared) trace sink. See the crate docs.
    #[derive(Clone, Default)]
    pub struct Recorder {
        inner: Option<Arc<Mutex<RingSink>>>,
        track: &'static str,
    }

    impl Recorder {
        /// A recorder that records nothing (the engine/controller default).
        pub fn disabled() -> Self {
            Recorder {
                inner: None,
                track: "main",
            }
        }

        /// A recorder backed by a ring sink of at most `capacity` events.
        pub fn ring(capacity: usize) -> Self {
            Recorder {
                inner: Some(Arc::new(Mutex::new(RingSink::new(capacity)))),
                track: "main",
            }
        }

        /// A clone sharing this recorder's sink, tagging events with `track`.
        pub fn with_track(&self, track: &'static str) -> Self {
            Recorder {
                inner: self.inner.clone(),
                track,
            }
        }

        /// Whether events will actually be recorded. Call sites use this to
        /// skip field construction on the disabled path.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Open a span at virtual time `at`.
        #[inline]
        pub fn enter(&self, at: SimTime, span: &'static str, fields: &[(&'static str, f64)]) {
            let Some(sink) = &self.inner else { return };
            sink.lock().expect("obs sink poisoned").push(Event {
                at_us: at.as_micros(),
                track: self.track,
                kind: EventKind::Enter {
                    span,
                    fields: fields.to_vec(),
                },
            });
        }

        /// Close the innermost open span on this track.
        #[inline]
        pub fn exit(&self, at: SimTime, span: &'static str, fields: &[(&'static str, f64)]) {
            let Some(sink) = &self.inner else { return };
            sink.lock().expect("obs sink poisoned").push(Event {
                at_us: at.as_micros(),
                track: self.track,
                kind: EventKind::Exit {
                    span,
                    fields: fields.to_vec(),
                },
            });
        }

        /// Record a point event.
        #[inline]
        pub fn instant(&self, at: SimTime, name: &'static str, fields: &[(&'static str, f64)]) {
            let Some(sink) = &self.inner else { return };
            sink.lock().expect("obs sink poisoned").push(Event {
                at_us: at.as_micros(),
                track: self.track,
                kind: EventKind::Instant {
                    name,
                    fields: fields.to_vec(),
                },
            });
        }

        /// Bump monotonic counter `name` by `delta`.
        #[inline]
        pub fn add(&self, at: SimTime, name: &'static str, delta: u64) {
            let Some(sink) = &self.inner else { return };
            sink.lock()
                .expect("obs sink poisoned")
                .add(at.as_micros(), self.track, name, delta);
        }

        /// Copy out everything recorded so far.
        pub fn snapshot(&self) -> TraceSnapshot {
            let Some(sink) = &self.inner else {
                return TraceSnapshot::default();
            };
            let sink = sink.lock().expect("obs sink poisoned");
            TraceSnapshot {
                events: sink.events().cloned().collect(),
                counters: sink.counters().to_vec(),
                dropped: sink.dropped(),
            }
        }

        /// Export the current contents as JSONL.
        pub fn to_jsonl(&self) -> String {
            self.snapshot().to_jsonl()
        }
    }
}

#[cfg(feature = "obs-off")]
mod recorder_impl {
    use super::*;

    /// The `obs-off` recorder: a ZST with the same API and no behavior.
    /// Every method is an empty inline function the optimizer erases.
    #[derive(Clone, Copy, Default)]
    pub struct Recorder;

    impl Recorder {
        /// See the enabled build.
        #[inline(always)]
        pub fn disabled() -> Self {
            Recorder
        }

        /// See the enabled build; under `obs-off` this records nothing.
        #[inline(always)]
        pub fn ring(_capacity: usize) -> Self {
            Recorder
        }

        /// See the enabled build.
        #[inline(always)]
        pub fn with_track(&self, _track: &'static str) -> Self {
            Recorder
        }

        /// Always false under `obs-off`.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn enter(&self, _at: SimTime, _span: &'static str, _fields: &[(&'static str, f64)]) {}

        /// No-op.
        #[inline(always)]
        pub fn exit(&self, _at: SimTime, _span: &'static str, _fields: &[(&'static str, f64)]) {}

        /// No-op.
        #[inline(always)]
        pub fn instant(&self, _at: SimTime, _name: &'static str, _fields: &[(&'static str, f64)]) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _at: SimTime, _name: &'static str, _delta: u64) {}

        /// Always empty under `obs-off`.
        pub fn snapshot(&self) -> TraceSnapshot {
            TraceSnapshot::default()
        }

        /// A header-only trace under `obs-off`.
        pub fn to_jsonl(&self) -> String {
            self.snapshot().to_jsonl()
        }
    }
}

pub use recorder_impl::Recorder;
