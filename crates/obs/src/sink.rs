//! The bounded ring sink behind an enabled recorder.

use crate::event::{Event, EventKind};
use std::collections::VecDeque;

/// A ring buffer of trace events with cumulative counter state.
///
/// Memory is bounded by `capacity`: when full, the oldest event is evicted
/// and counted in `dropped`. Counter *totals* survive eviction — they live
/// in a separate cumulative table, so a long run whose early increments
/// scrolled out of the ring still reports exact end-of-run totals.
#[derive(Debug)]
pub struct RingSink {
    events: VecDeque<Event>,
    capacity: usize,
    /// Cumulative counter totals in first-increment order.
    counters: Vec<(&'static str, u64)>,
    dropped: u64,
}

impl RingSink {
    /// An empty sink holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            counters: Vec::new(),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Bump counter `name` by `delta` and append the increment event.
    pub fn add(&mut self, at_us: u64, track: &'static str, name: &'static str, delta: u64) {
        let total = match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, t)) => {
                *t += delta;
                *t
            }
            None => {
                self.counters.push((name, delta));
                delta
            }
        };
        self.push(Event {
            at_us,
            track,
            kind: EventKind::Count { name, delta, total },
        });
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Cumulative counter totals in first-increment order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}
