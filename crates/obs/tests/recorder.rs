//! Recorder behavior: ring bounds, track sharing, JSONL export, and the
//! well-formedness checker itself.
#![cfg(not(feature = "obs-off"))]

use nostop_obs::{check_events, check_jsonl, span_stats, Event, EventKind, Recorder};
use nostop_simcore::SimTime;

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

#[test]
fn disabled_recorder_records_nothing() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    rec.enter(t(1), "job", &[("x", 1.0)]);
    rec.add(t(2), "batches", 1);
    let snap = rec.snapshot();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
    assert_eq!(snap.dropped, 0);
}

#[test]
fn spans_and_counters_round_trip_through_jsonl() {
    let rec = Recorder::ring(64);
    assert!(rec.is_enabled());
    rec.enter(t(100), "job", &[("batch_id", 0.0), ("records", 1e4)]);
    rec.enter(t(120), "stage", &[("idx", 0.0)]);
    rec.add(t(130), "tasks", 50);
    rec.exit(t(900), "stage", &[("busy_us", 780.0)]);
    rec.instant(t(950), "cut", &[]);
    rec.exit(t(1000), "job", &[("stages", 1.0)]);
    rec.add(t(1000), "batches_completed", 1);

    let snap = rec.snapshot();
    assert_eq!(snap.events.len(), 7);
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.counters, vec![("tasks", 50), ("batches_completed", 1)]);
    check_events(&snap.events).expect("trace is well-formed");

    let jsonl = rec.to_jsonl();
    check_jsonl(&jsonl).expect("export is well-formed");
    // Header + 7 events + 2 counter trailers.
    assert_eq!(jsonl.lines().count(), 10);
    let first = jsonl.lines().next().unwrap();
    assert!(first.contains("\"schema\":\"nostop-trace/1\""), "{first}");
}

#[test]
fn ring_bounds_memory_and_counts_evictions() {
    let rec = Recorder::ring(8);
    for i in 0..20u64 {
        rec.add(t(i), "ticks", 1);
    }
    let snap = rec.snapshot();
    assert_eq!(snap.events.len(), 8);
    assert_eq!(snap.dropped, 12);
    // Counter totals are exact even though early increments were evicted.
    assert_eq!(snap.counters, vec![("ticks", 20)]);
    // The export declares the evictions, so the checker baselines the
    // surviving counter suffix instead of demanding totals from zero.
    check_jsonl(&rec.to_jsonl()).expect("truncated trace still checks");
}

#[test]
fn tracks_share_a_sink_but_nest_independently() {
    let rec = Recorder::ring(64);
    let engine = rec.with_track("engine");
    let controller = rec.with_track("controller");
    // Interleaved non-hierarchically: fine, nesting is per track.
    controller.enter(t(0), "spsa_iter", &[]);
    engine.enter(t(10), "job", &[]);
    controller.instant(t(20), "probe", &[("sign", 1.0)]);
    engine.exit(t(30), "job", &[]);
    controller.exit(t(40), "spsa_iter", &[]);
    let snap = rec.snapshot();
    assert_eq!(snap.events.len(), 5);
    check_events(&snap.events).expect("per-track nesting holds");
    let stats = span_stats(&snap.events);
    assert_eq!(stats.len(), 2);
    let job = stats.iter().find(|s| s.name == "job").unwrap();
    assert_eq!(
        (job.track.as_str(), job.count, job.total_us),
        ("engine", 1, 20)
    );
}

#[test]
fn checker_rejects_mismatched_and_unclosed_spans() {
    let enter = |at_us, track, span| Event {
        at_us,
        track,
        kind: EventKind::Enter {
            span,
            fields: vec![],
        },
    };
    let exit = |at_us, track, span| Event {
        at_us,
        track,
        kind: EventKind::Exit {
            span,
            fields: vec![],
        },
    };
    // Exit does not match the innermost open entry.
    let bad = vec![
        enter(0, "engine", "job"),
        enter(1, "engine", "stage"),
        exit(2, "engine", "job"),
    ];
    assert!(check_events(&bad).unwrap_err().contains("innermost"));
    // Exit with nothing open.
    assert!(check_events(&[exit(0, "engine", "job")]).is_err());
    // Unclosed at end of trace.
    assert!(check_events(&[enter(0, "engine", "job")])
        .unwrap_err()
        .contains("never exited"));
    // Exit before entry in virtual time.
    let backwards = vec![enter(10, "engine", "job"), exit(5, "engine", "job")];
    assert!(check_events(&backwards)
        .unwrap_err()
        .contains("before its entry"));
}

#[test]
fn checker_rejects_non_monotone_counters() {
    let count = |at_us, delta, total| Event {
        at_us,
        track: "engine",
        kind: EventKind::Count {
            name: "batches",
            delta,
            total,
        },
    };
    assert!(check_events(&[count(0, 1, 1), count(1, 1, 2)]).is_ok());
    assert!(check_events(&[count(0, 1, 1), count(1, 1, 3)])
        .unwrap_err()
        .contains("monotonicity"));
}

#[test]
fn check_jsonl_rejects_corrupted_traces() {
    let rec = Recorder::ring(16);
    rec.enter(t(0), "job", &[]);
    rec.exit(t(5), "job", &[]);
    let good = rec.to_jsonl();
    check_jsonl(&good).expect("good trace passes");
    // Drop the exit line: the open span must be flagged.
    let truncated: String = good
        .lines()
        .filter(|l| !l.contains("\"ev\":\"exit\""))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(check_jsonl(&truncated).is_err());
    // Corrupt a counter trailer.
    let rec = Recorder::ring(16);
    rec.add(t(0), "ticks", 2);
    let tampered = rec.to_jsonl().replace("\"total\":2}", "\"total\":3}");
    assert!(check_jsonl(&tampered).is_err());
}

#[test]
fn export_is_deterministic() {
    let build = || {
        let rec = Recorder::ring(32);
        let engine = rec.with_track("engine");
        engine.enter(t(7), "job", &[("records", 12345.678)]);
        engine.add(t(8), "records_processed", 12345);
        engine.exit(t(99), "job", &[]);
        rec.to_jsonl()
    };
    assert_eq!(build(), build());
}
