//! A self-contained, offline drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The real `proptest` crate lives on crates.io; this environment builds
//! hermetically with no registry access, so the workspace ships the small
//! slice of the API its property tests actually exercise:
//!
//! * the [`proptest!`] macro (`arg in strategy` parameters),
//! * [`Strategy`] with `prop_map`, numeric range strategies, tuple
//!   strategies, [`collection::vec`], [`any`], and regex-subset string
//!   strategies (`"[a-z ]{0,40}"`-style character classes),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Generation is fully deterministic: each test case's RNG is seeded from
//! the test's module path and the case index, so failures reproduce
//! without shrinking machinery. Case count defaults to 64 and can be
//! raised with `PROPTEST_CASES`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic per-case random source strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Seeded from a test name and case index — stable across runs.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: Self::splitmix(h ^ Self::splitmix(case)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The trimmed-down analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(hi >= lo, "empty range strategy");
                if lo == 0 && hi == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(hi - lo + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// Regex-subset string strategies: literals, `.`, character classes
/// (`[a-z0-9/]`), and `{m,n}` / `{m}` repetition counts — the dialect the
/// workspace's property tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// Characters `.` can produce: printable ASCII plus a few multi-byte
/// code points so parsers see non-ASCII input.
const DOT_EXTRAS: [char; 6] = ['é', 'ß', '中', '\u{7f}', '\t', '🚀'];

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class, a dot, or a literal.
        let class: Vec<char> = match chars[i] {
            '[' => {
                let mut cls = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            cls.push(char::from_u32(c).expect("valid class range"));
                        }
                        i += 3;
                    } else {
                        cls.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ]
                cls
            }
            '.' => {
                let mut cls: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
                cls.extend(DOT_EXTRAS);
                i += 1;
                cls
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m,n} or {m} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse::<usize>().expect("repetition min"),
                    n.parse::<usize>().expect("repetition max"),
                ),
                None => {
                    let m = spec.parse::<usize>().expect("repetition count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!class.is_empty(), "empty character class in `{pattern}`");
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

/// Types with a canonical full-range strategy (the [`any`] function).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// The full-range strategy for `T` — `any::<u64>()` and friends.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The harness the [`proptest!`] macro expands into.
pub mod test_runner {
    use super::{TestCaseError, TestRng};

    /// Cases per property; `PROPTEST_CASES` overrides the default of 64.
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run `f` over `case_count()` generated cases, retrying rejections.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = case_count();
        let mut executed = 0u64;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while executed < cases {
            let mut rng = TestRng::for_case(name, case);
            match f(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    assert!(
                        rejected <= cases * 20,
                        "property `{name}` rejected too many cases ({rejected}): {reason}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed at case {case}:\n{msg}")
                }
            }
            case += 1;
        }
    }
}

/// Define deterministic property tests; mirrors proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        let mut __proptest_body =
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::std::result::Result::Ok(())
                            };
                        __proptest_body()
                    },
                );
            }
        )+
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Reject the current case (it is retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as prop;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let f = (1.5f64..9.5).generate(&mut rng);
            assert!((1.5..9.5).contains(&f));
            let u = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&u));
            let b = (1u8..=254).generate(&mut rng);
            assert!((1..=254).contains(&b));
        }
    }

    #[test]
    fn string_patterns_match_their_dialect() {
        let mut rng = TestRng::for_case("strings", 1);
        for _ in 0..200 {
            let s = "[a-z ]{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let url = "/[a-z0-9/]{0,30}".generate(&mut rng);
            assert!(url.starts_with('/'));
            let free = ".{0,300}".generate(&mut rng);
            assert!(free.chars().count() <= 300);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = collection::vec((0u64..100, 0.0f64..1.0), 1..20);
        let a = strat.generate(&mut TestRng::for_case("det", 7));
        let b = strat.generate(&mut TestRng::for_case("det", 7));
        let c = strat.generate(&mut TestRng::for_case("det", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1u64..5).prop_map(|x| x * 10);
        let v = strat.generate(&mut TestRng::for_case("map", 0));
        assert!((10..50).contains(&v) && v % 10 == 0);
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(x != 1000); // never rejects
        }
    }
}
