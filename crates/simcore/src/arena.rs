//! Bump (arena) allocation for per-event scratch state.
//!
//! The DES hot path wants many short-lived arrays per simulated job —
//! per-executor cursors, per-task durations, noise factors — whose sizes
//! are known up front and whose lifetimes all end when the job does.
//! Holding each as its own `Vec` works, but scatters the job's working set
//! across six heap blocks and re-derives capacity checks per buffer. An
//! [`Arena`] instead owns two contiguous lanes — one of `u64` words, one
//! of `f64` words — and hands a job a single *frame*: two mutable slices
//! sized exactly for that job, carved by the caller into sub-arrays with
//! `split_at_mut`. Steady state is allocation-free (the lanes only ever
//! grow), and the whole frame is one cache-friendly block per lane.
//!
//! Frames are not zeroed: a frame may expose words written by earlier
//! frames, so callers must initialize every sub-array before reading it —
//! the same contract reused `Vec` scratch already imposed. Nothing about
//! the arena is observable in simulation output; a fresh arena and a
//! reused one produce identical results.

/// A two-lane bump arena: integer words and float words.
#[derive(Debug, Default)]
pub struct Arena {
    ints: Vec<u64>,
    floats: Vec<f64>,
}

impl Arena {
    /// An empty arena; lanes grow on first use and are then reused.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Begin a frame with `ints` integer words and `floats` float words.
    ///
    /// Returns the two lanes as mutable slices of exactly the requested
    /// lengths, growing the backing storage if needed (never shrinking).
    /// Contents are unspecified — callers initialize before reading.
    pub fn frame(&mut self, ints: usize, floats: usize) -> (&mut [u64], &mut [f64]) {
        if self.ints.len() < ints {
            self.ints.resize(ints, 0);
        }
        if self.floats.len() < floats {
            self.floats.resize(floats, 0.0);
        }
        (&mut self.ints[..ints], &mut self.floats[..floats])
    }

    /// Capacity currently held, in words, as `(ints, floats)`.
    pub fn capacity(&self) -> (usize, usize) {
        (self.ints.len(), self.floats.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_returns_exactly_requested_lengths() {
        let mut a = Arena::new();
        let (i, f) = a.frame(7, 3);
        assert_eq!(i.len(), 7);
        assert_eq!(f.len(), 3);
        i[6] = 42;
        f[2] = 1.5;
    }

    #[test]
    fn lanes_grow_monotonically_and_are_reused() {
        let mut a = Arena::new();
        {
            let (i, _) = a.frame(100, 10);
            for (k, slot) in i.iter_mut().enumerate() {
                *slot = k as u64;
            }
        }
        assert_eq!(a.capacity(), (100, 10));
        // A smaller frame reuses the same storage without shrinking.
        let stale = {
            let (i, f) = a.frame(5, 5);
            assert_eq!(i.len(), 5);
            assert_eq!(f.len(), 5);
            i[3]
        };
        assert_eq!(a.capacity(), (100, 10));
        // Stale contents are visible — the caller-initializes contract.
        assert_eq!(stale, 3);
    }

    #[test]
    fn sub_arrays_carve_with_split_at_mut() {
        let mut a = Arena::new();
        let (ints, _) = a.frame(10, 0);
        let (first, rest) = ints.split_at_mut(4);
        let (second, third) = rest.split_at_mut(4);
        first.fill(1);
        second.fill(2);
        third.fill(3);
        assert_eq!(first.iter().sum::<u64>(), 4);
        assert_eq!(second.iter().sum::<u64>(), 8);
        assert_eq!(third.iter().sum::<u64>(), 6);
    }
}
