//! A generic discrete-event queue.
//!
//! Events are ordered by their scheduled [`SimTime`]; events scheduled for
//! the same instant pop in insertion (FIFO) order, which keeps simulations
//! deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-inserted) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// The instant of the next event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the next `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Remove and return the next event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.next_time()? <= t {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(
            q.pop_until(SimTime::from_millis(15)),
            Some((SimTime::from_millis(10), 1))
        );
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 10);
        q.schedule(SimTime::from_millis(40), 40);
        assert_eq!(q.pop().unwrap().1, 10);
        q.schedule(SimTime::from_millis(20), 20);
        q.schedule(SimTime::from_millis(30), 30);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![20, 30, 40]);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }
}
