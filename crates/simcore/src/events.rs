//! A generic discrete-event queue.
//!
//! Events are ordered by their scheduled [`SimTime`]; events scheduled for
//! the same instant pop in insertion (FIFO) order, which keeps simulations
//! deterministic regardless of queue internals.
//!
//! The default [`EventQueue`] is an index-bucketed *calendar queue*: a
//! time-wheel of `2^k`-microsecond buckets covering a sliding window, with a
//! min-heap overflow level for events beyond the window and a (rare) sorted
//! "past" level for events scheduled before the wheel origin. Amortised cost
//! is O(1) per operation when event times are spread across the window, and
//! the pop order is exactly the `(time, insertion seq)` minimum — the same
//! total order the previous binary-heap implementation produced.
//!
//! [`BinaryHeapEventQueue`] is that previous implementation, retained as the
//! reference model for differential tests.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-inserted) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-calendar binary-heap queue, kept as a reference implementation.
///
/// Differential tests pin [`EventQueue`]'s pop order (including same-instant
/// FIFO ties) against this model on randomized schedules.
pub struct BinaryHeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for BinaryHeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapEventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// The instant of the next event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the next `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Remove and return the next event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.next_time()? <= t {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Cheap always-on instrumentation for [`EventQueue`].
///
/// Four `u64` increments on the schedule/pop/rotate paths — too cheap to
/// gate — that the observability layer reads out after a run. `rotations`
/// counts wheel-window advances and `overflow_migrations` the events
/// redistributed from the overflow heap into the wheel by those rotations:
/// together they say how well the bucket width fits the workload's event
/// horizon (many migrations per rotation = healthy batching; rotations
/// with few migrations = the wheel is spinning through empty windows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events ever popped (`pop` and `pop_until` alike).
    pub popped: u64,
    /// Wheel-window advances ([`EventQueue::rotate`] calls that moved it).
    pub rotations: u64,
    /// Events migrated overflow → wheel by rotations.
    pub overflow_migrations: u64,
}

/// Number of wheel buckets (power of two).
const WHEEL_BUCKETS: usize = 256;
/// Default bucket width exponent: 2^13 µs ≈ 8.2 ms per bucket, so the wheel
/// window spans ~2.1 s — comfortably covering a micro-batch interval's worth
/// of in-flight events while keeping far-future cuts in the overflow level.
const DEFAULT_TICK_SHIFT: u32 = 13;

/// An event beyond the wheel window, min-ordered by `(at_us, seq)` on a
/// max-`BinaryHeap` via the inverted comparison.
struct Far<E> {
    at_us: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<E> Eq for Far<E> {}
impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at_us
            .cmp(&self.at_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking, implemented as
/// an index-bucketed calendar queue (time-wheel + heap overflow).
pub struct EventQueue<E> {
    /// Wheel buckets. Bucket `i` holds events with
    /// `start_us + i*tick <= at_us < start_us + (i+1)*tick`, unordered;
    /// pops select the `(at, seq)` minimum by linear scan.
    wheel: Vec<Vec<(u64, u64, E)>>,
    /// Events at or beyond the wheel window: a min-heap on `(at, seq)`, so
    /// far-future schedules cost O(log n) instead of a sorted-`Vec` insert's
    /// O(n) memmove.
    overflow: BinaryHeap<Far<E>>,
    /// Events scheduled before `start_us` (possible only by scheduling in
    /// the "past" after the wheel advanced), sorted descending likewise.
    past: Vec<(u64, u64, E)>,
    /// Inclusive lower bound of the wheel window, in µs, tick-aligned.
    start_us: u64,
    /// First wheel bucket that may be non-empty (cursor hint).
    cur: usize,
    /// log2 of the bucket width in µs.
    tick_shift: u32,
    len: usize,
    next_seq: u64,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the default bucket width.
    pub fn new() -> Self {
        Self::with_tick_shift(DEFAULT_TICK_SHIFT)
    }

    /// An empty queue whose wheel buckets span `2^tick_shift` µs each.
    pub fn with_tick_shift(tick_shift: u32) -> Self {
        assert!(tick_shift < 40, "bucket width out of range");
        EventQueue {
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            past: Vec::new(),
            start_us: 0,
            cur: 0,
            tick_shift,
            len: 0,
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }

    /// Lifetime operation counters (survive [`EventQueue::clear`]).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    #[inline]
    fn window_us(&self) -> u64 {
        (WHEEL_BUCKETS as u64) << self.tick_shift
    }

    /// Schedule `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at_us = at.as_micros();
        self.len += 1;
        self.stats.scheduled += 1;
        if at_us < self.start_us {
            let key = (at_us, seq);
            let pos = self.past.partition_point(|&(a, s, _)| (a, s) > key);
            self.past.insert(pos, (at_us, seq, event));
        } else if at_us - self.start_us < self.window_us() {
            let idx = ((at_us - self.start_us) >> self.tick_shift) as usize;
            self.wheel[idx].push((at_us, seq, event));
            if idx < self.cur {
                self.cur = idx;
            }
        } else {
            self.overflow.push(Far { at_us, seq, event });
        }
    }

    /// Index within `self.wheel[self.cur..]`-style search of the first
    /// non-empty bucket, advancing the cursor past drained buckets.
    fn advance_to_nonempty(&mut self) -> Option<usize> {
        while self.cur < WHEEL_BUCKETS {
            if !self.wheel[self.cur].is_empty() {
                return Some(self.cur);
            }
            self.cur += 1;
        }
        None
    }

    /// Rotate the wheel forward so it covers the window starting at the
    /// earliest overflow event, then redistribute overflow entries that now
    /// fall inside it. Requires the wheel and `past` to be empty.
    fn rotate(&mut self) {
        let Some(first) = self.overflow.peek() else {
            return;
        };
        self.stats.rotations += 1;
        self.start_us = (first.at_us >> self.tick_shift) << self.tick_shift;
        self.cur = 0;
        let window = self.window_us();
        // Pull every overflow event that now lands inside the window. The
        // heap pops them min-first, so the wheel fills in one pass.
        while let Some(f) = self.overflow.peek() {
            if f.at_us - self.start_us >= window {
                break;
            }
            let Far { at_us, seq, event } = self.overflow.pop().expect("peeked");
            let idx = ((at_us - self.start_us) >> self.tick_shift) as usize;
            self.wheel[idx].push((at_us, seq, event));
            self.stats.overflow_migrations += 1;
        }
    }

    /// Position of the `(at, seq)` minimum within bucket `idx`.
    fn bucket_min(&self, idx: usize) -> usize {
        let bucket = &self.wheel[idx];
        let mut best = 0;
        for i in 1..bucket.len() {
            let (a, s, _) = bucket[i];
            let (ba, bs, _) = bucket[best];
            if (a, s) < (ba, bs) {
                best = i;
            }
        }
        best
    }

    /// The instant of the next event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        if let Some(&(a, _, _)) = self.past.last() {
            return Some(SimTime::from_micros(a));
        }
        let mut cur = self.cur;
        while cur < WHEEL_BUCKETS {
            if !self.wheel[cur].is_empty() {
                let bucket = &self.wheel[cur];
                let mut best = bucket[0].0;
                for &(a, _, _) in &bucket[1..] {
                    if a < best {
                        best = a;
                    }
                }
                return Some(SimTime::from_micros(best));
            }
            cur += 1;
        }
        self.overflow.peek().map(|f| SimTime::from_micros(f.at_us))
    }

    /// Remove and return the next `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if let Some((a, _, event)) = self.past.pop() {
            self.len -= 1;
            self.stats.popped += 1;
            return Some((SimTime::from_micros(a), event));
        }
        loop {
            if let Some(idx) = self.advance_to_nonempty() {
                let min = self.bucket_min(idx);
                let (a, _, event) = self.wheel[idx].swap_remove(min);
                self.len -= 1;
                self.stats.popped += 1;
                return Some((SimTime::from_micros(a), event));
            }
            // Wheel drained: pull the next window out of the overflow level.
            debug_assert!(!self.overflow.is_empty());
            self.rotate();
        }
    }

    /// Remove and return the next event only if it fires at or before `t`.
    ///
    /// Single-pass: the wheel walk that finds the minimum also pops it,
    /// instead of scanning once for `next_time` and again for `pop`.
    pub fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let t_us = t.as_micros();
        if let Some(&(a, _, _)) = self.past.last() {
            if a > t_us {
                return None;
            }
            let (a, _, event) = self.past.pop().expect("checked non-empty");
            self.len -= 1;
            self.stats.popped += 1;
            return Some((SimTime::from_micros(a), event));
        }
        loop {
            if let Some(idx) = self.advance_to_nonempty() {
                let min = self.bucket_min(idx);
                if self.wheel[idx][min].0 > t_us {
                    return None;
                }
                let (a, _, event) = self.wheel[idx].swap_remove(min);
                self.len -= 1;
                self.stats.popped += 1;
                return Some((SimTime::from_micros(a), event));
            }
            debug_assert!(!self.overflow.is_empty());
            if self.overflow.peek().map(|f| f.at_us > t_us).unwrap_or(true) {
                return None;
            }
            self.rotate();
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.overflow.clear();
        self.past.clear();
        self.len = 0;
        self.cur = 0;
        self.start_us = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(
            q.pop_until(SimTime::from_millis(15)),
            Some((SimTime::from_millis(10), 1))
        );
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 10);
        q.schedule(SimTime::from_millis(40), 40);
        assert_eq!(q.pop().unwrap().1, 10);
        q.schedule(SimTime::from_millis(20), 20);
        q.schedule(SimTime::from_millis(30), 30);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![20, 30, 40]);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn stats_track_schedules_pops_and_rotations() {
        let mut q = EventQueue::with_tick_shift(4); // 4096 µs window
        assert_eq!(q.stats(), QueueStats::default());
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_secs_f64(1.0), 2); // beyond the window
        q.schedule(SimTime::from_secs_f64(1.0), 3);
        assert_eq!(q.stats().scheduled, 3);
        assert_eq!(q.stats().popped, 0);
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.popped, 3);
        // Draining past the window forced exactly one rotation, which
        // migrated both far events into the wheel.
        assert_eq!(s.rotations, 1);
        assert_eq!(s.overflow_migrations, 2);
        // Stats are lifetime counters: clear() keeps them.
        q.schedule(SimTime::ZERO, 4);
        q.clear();
        assert_eq!(q.stats().scheduled, 4);
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        let mut q = EventQueue::with_tick_shift(4);
        // Window is 256 * 16 µs = 4096 µs; spread events far beyond it.
        q.schedule(SimTime::from_secs_f64(100.0), "late");
        q.schedule(SimTime::from_micros(50), "early");
        q.schedule(SimTime::from_secs_f64(10.0), "mid");
        q.schedule(SimTime::from_secs_f64(10.0), "mid2");
        assert_eq!(q.next_time(), Some(SimTime::from_micros(50)));
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "mid2");
        // Scheduling in the past after the wheel rotated still pops first.
        q.schedule(SimTime::from_micros(60), "past");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    /// Events pinned to both sides of the wheel-window boundary: the last
    /// in-window microsecond stays on the wheel, the first out-of-window
    /// microsecond goes to overflow, and rotation stitches them back into
    /// one globally time-ordered stream with the expected rotation count.
    #[test]
    fn rotation_at_the_window_boundary_keeps_time_order() {
        let shift = 3u32; // 8 µs buckets → 2048 µs window
        let window = 256u64 << shift;
        let mut q = EventQueue::with_tick_shift(shift);
        for at in [window - 1, window, window + 1, 3 * window, 0, window / 2] {
            q.schedule(SimTime::from_micros(at), at);
        }
        // Nothing rotates at schedule time.
        assert_eq!(q.stats().rotations, 0);
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_micros(), e, "event popped at the wrong instant");
            popped.push(e);
        }
        assert_eq!(
            popped,
            vec![0, window / 2, window - 1, window, window + 1, 3 * window]
        );
        // One rotation into [window, 2·window) picking up two events, one
        // into [3·window, 4·window) picking up the last.
        assert_eq!(q.stats().rotations, 2);
        assert_eq!(q.stats().overflow_migrations, 3);
    }

    /// FIFO tie-breaking survives the overflow → wheel migration: two
    /// events at the same out-of-window instant keep schedule order.
    #[test]
    fn rotation_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let far = SimTime::from_micros((256u64 << DEFAULT_TICK_SHIFT) + 5);
        q.schedule(far, "a");
        q.schedule(far, "b");
        q.schedule(SimTime::from_micros(1), "now");
        assert_eq!(q.pop().unwrap().1, "now");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    /// `pop_until` at the boundary: a cutoff just before the overflow
    /// head must not rotate (the wheel window stays put), while a cutoff
    /// at the head's instant rotates and returns it.
    #[test]
    fn pop_until_rotates_only_when_the_cutoff_reaches_overflow() {
        let shift = 3u32;
        let window = 256u64 << shift;
        let mut q = EventQueue::with_tick_shift(shift);
        q.schedule(SimTime::from_micros(window + 8), "far");
        assert_eq!(q.pop_until(SimTime::from_micros(window + 7)), None);
        assert_eq!(q.stats().rotations, 0, "cutoff short of overflow rotated");
        let (t, e) = q.pop_until(SimTime::from_micros(window + 8)).unwrap();
        assert_eq!((t.as_micros(), e), (window + 8, "far"));
        assert_eq!(q.stats().rotations, 1);
        assert!(q.is_empty());
    }
}
