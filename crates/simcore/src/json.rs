//! A small, dependency-free JSON value model, parser, and writer.
//!
//! The workspace builds in fully offline environments, so the Fig-4 wire
//! format (status reports, controller commands, persisted configurations,
//! `BENCH_*.json` trajectories) is carried by this module instead of an
//! external serialization framework. The subset implemented is exactly the
//! subset the wire formats use: objects with ordered keys, arrays, finite
//! numbers, strings with standard escapes, booleans, and null.

use std::fmt;

/// A parsed JSON value. Object keys preserve insertion order so that
/// serialization is deterministic — byte-identical across runs and thread
/// counts, which the parallel experiment fabric relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse error with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Compact serialization (no whitespace); `Json::to_string()` comes from
/// this impl.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, Error> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Serialize pretty-printed with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Look a key up in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field helpers for manual deserializers: a missing or
    /// mistyped field becomes an [`Error`] naming the key.
    pub fn field_f64(&self, key: &str) -> Result<f64, Error> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| missing(key))
    }

    /// See [`Json::field_f64`].
    pub fn field_u64(&self, key: &str) -> Result<u64, Error> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| missing(key))
    }

    /// Like [`Json::field_u64`] but 0 when the key is absent — the wire
    /// format's "optional, 0 = default" convention.
    pub fn field_u64_or_zero(&self, key: &str) -> Result<u64, Error> {
        match self.get(key) {
            None => Ok(0),
            Some(v) => v.as_u64().ok_or_else(|| missing(key)),
        }
    }

    /// See [`Json::field_f64`].
    pub fn field_str(&self, key: &str) -> Result<&str, Error> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| missing(key))
    }

    /// See [`Json::field_f64`].
    pub fn field_bool(&self, key: &str) -> Result<bool, Error> {
        self.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| missing(key))
    }

    /// See [`Json::field_f64`].
    pub fn field_array(&self, key: &str) -> Result<&[Json], Error> {
        self.get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| missing(key))
    }

    /// A required array of numbers.
    pub fn field_f64_array(&self, key: &str) -> Result<Vec<f64>, Error> {
        self.field_array(key)?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| missing(key)))
            .collect()
    }
}

fn missing(key: &str) -> Error {
    Error {
        at: 0,
        msg: format!("missing or mistyped field `{key}`"),
    }
}

/// Build a JSON object from `(key, value)` pairs, preserving order.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A number value. Non-finite inputs serialize as `null`, which the wire
/// formats treat as absent.
pub fn num(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else {
        Json::Null
    }
}

/// An unsigned-integer value.
pub fn uint(x: u64) -> Json {
    Json::Num(x as f64)
}

/// A string value.
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

/// An array of numbers.
pub fn f64_array(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| num(x)).collect())
}

/// Append a number in the exact form [`Json::to_string`] uses — for
/// hand-rolled writers that must stay byte-identical to tree
/// serialization without building a tree.
pub fn write_number(out: &mut String, x: f64) {
    write_num(out, x);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        // Integers print without a trailing `.0`, matching the wire format.
        let _ = fmt::Write::write_fmt(out, format_args!("{}", x as i64));
    } else {
        // Shortest round-trip representation.
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the wire
                            // formats; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserializes_objects() {
        let text = r#"{"a":1,"b":[true,null,"x"],"c":{"d":2.5}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.field_u64("a").unwrap(), 1);
        assert_eq!(v.get("c").unwrap().field_f64("d").unwrap(), 2.5);
    }

    #[test]
    fn key_order_is_preserved() {
        let v = obj(vec![("z", uint(1)), ("a", uint(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(num(10_000.0).to_string(), "10000");
        assert_eq!(num(2.5).to_string(), "2.5");
        assert_eq!(num(-3.0).to_string(), "-3");
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.1, 1e-9, 123_456.789, -2.0e17, f64::MAX] {
            let text = num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let text = str(s).to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn whitespace_tolerated_everywhere() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.field_array("a").unwrap().len(), 2);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = obj(vec![("a", Json::Arr(vec![uint(1)]))]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\""), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\":}").unwrap_err();
        assert_eq!(e.at, 5);
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn optional_fields_default_to_zero() {
        let v = Json::parse(r#"{"a":1}"#).unwrap();
        assert_eq!(v.field_u64_or_zero("missing").unwrap(), 0);
        assert_eq!(v.field_u64_or_zero("a").unwrap(), 1);
        assert!(v.field_u64("missing").is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(num(f64::NAN).to_string(), "null");
        assert_eq!(num(f64::INFINITY).to_string(), "null");
    }
}
