//! Shared simulation primitives for the NoStop reproduction.
//!
//! This crate provides the foundational machinery that every other crate in
//! the workspace builds on:
//!
//! * [`time`] — a microsecond-resolution virtual clock ([`SimTime`],
//!   [`SimDuration`]) so that hours of streaming execution simulate in
//!   milliseconds, deterministically.
//! * [`events`] — a generic discrete-event queue with stable FIFO ordering
//!   for simultaneous events.
//! * [`rng`] — a seedable random source ([`SimRng`]) with the distributions
//!   the simulator and the SPSA optimizer need (normal via Box–Muller,
//!   log-normal, exponential, symmetric Bernoulli ±1), plus deterministic
//!   stream forking so independent subsystems draw from independent streams.
//! * [`stats`] — online (Welford) and windowed statistics used by both the
//!   metrics listener and the NoStop pause/reset policies.
//! * [`series`] — lightweight time-series recording for the figure
//!   regeneration binaries.
//!
//! Everything here is `no_std`-agnostic in spirit (no I/O, no wall-clock),
//! which is what makes the experiments reproducible bit-for-bit from a seed.

pub mod arena;
pub mod events;
pub mod json;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use arena::Arena;
pub use events::{BinaryHeapEventQueue, EventQueue, QueueStats};
pub use json::Json;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{RollingStats, Summary, Welford};
pub use time::{SimDuration, SimTime};
