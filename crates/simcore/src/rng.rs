//! Seeded randomness for reproducible experiments.
//!
//! [`SimRng`] is a self-contained deterministic generator (xoshiro256++
//! seeded through SplitMix64 — no external dependencies, so the workspace
//! builds hermetically offline) with the distributions this workspace
//! needs and deterministic *stream forking*: every subsystem (receiver
//! noise, task noise, SPSA perturbations, workload iteration counts, …)
//! forks its own independent stream from one experiment seed, so adding an
//! RNG consumer to one subsystem never perturbs another.

use std::sync::OnceLock;

/// SplitMix64 finalizer — used to derive well-mixed child seeds and to
/// expand one `u64` seed into the generator's 256-bit state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Number of equal-area layers in the normal ziggurat.
const ZIG_LAYERS: usize = 256;

/// Where the ziggurat's base layer hands off to the exact tail sampler.
/// This is the canonical 256-layer split point for `exp(-x²/2)`, quoted at
/// full published precision (the trailing digits round into the f64).
#[allow(clippy::excessive_precision)]
const ZIG_R: f64 = 3.654152885361008796;

/// Precomputed ziggurat layer boundaries for the standard normal.
///
/// Layer `k` (for `k ≥ 1`) is the rectangle `[0, x[k-1]] × [y[k-1], y[k]]`:
/// `y` ascends from `exp(-R²/2)` to `1` at the mode, and `x[k] = f⁻¹(y[k])`
/// descends from `R` to `0`. Layers have equal area by construction, so
/// picking a layer uniformly and accepting against the true density is an
/// exact sampler, not an approximation.
struct ZigTables {
    /// Fast-accept pair per layer: `(threshold, width)`. A draw whose
    /// 53-bit uniform `ui` satisfies `ui < threshold` accepts immediately
    /// with `x = ui · width`; the threshold is `floor(2^53 · x[k]/x[k-1])`
    /// (base layer: `floor(2^53 · R/base_width)`), conservatively rounded
    /// down so borderline draws fall through to the exact wedge/tail
    /// checks. One 16-byte load and an integer compare cover ~98% of
    /// draws.
    hot: [(u64, f64); ZIG_LAYERS],
    x: [f64; ZIG_LAYERS],
    y: [f64; ZIG_LAYERS],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let f = |x: f64| (-0.5 * x * x).exp();
        // Per-layer area: base rectangle plus the tail mass beyond ZIG_R,
        // with the tail integral evaluated by composite Simpson (the
        // integrand decays below 1e-30 well inside the chosen span).
        let tail = {
            let (a, span, n) = (ZIG_R, 10.0, 1 << 14);
            let h = span / n as f64;
            let mut acc = f(a) + f(a + span);
            for i in 1..n {
                acc += f(a + i as f64 * h) * if i % 2 == 1 { 4.0 } else { 2.0 };
            }
            acc * h / 3.0
        };
        let v = ZIG_R * f(ZIG_R) + tail;
        let mut x = [0.0; ZIG_LAYERS];
        let mut y = [0.0; ZIG_LAYERS];
        x[0] = ZIG_R;
        y[0] = f(ZIG_R);
        for k in 1..ZIG_LAYERS {
            y[k] = y[k - 1] + v / x[k - 1];
            x[k] = if y[k] < 1.0 {
                (-2.0 * y[k].ln()).sqrt()
            } else {
                0.0
            };
        }
        // With the canonical R the stack closes at the mode to ~1e-13; pin
        // the top edge so the final wedge interval is exactly [y[254], 1].
        debug_assert!(
            (y[ZIG_LAYERS - 1] - 1.0).abs() < 1e-9,
            "ziggurat layers failed to close at the mode: {}",
            y[ZIG_LAYERS - 1]
        );
        y[ZIG_LAYERS - 1] = 1.0;
        x[ZIG_LAYERS - 1] = 0.0;
        // Pseudo-width of the base layer: its area divided by its height,
        // so a uniform draw across it lands in the tail with the right
        // probability.
        let base_width = v / y[0];
        let two53 = (1u64 << 53) as f64;
        let mut hot = [(0u64, 0.0); ZIG_LAYERS];
        hot[0] = ((two53 * (ZIG_R / base_width)) as u64, base_width / two53);
        for k in 1..ZIG_LAYERS {
            // x[255] = 0 makes the top layer's threshold 0: every draw
            // there takes the wedge path, as it must.
            hot[k] = ((two53 * (x[k] / x[k - 1])) as u64, x[k - 1] / two53);
        }
        ZigTables { hot, x, y }
    })
}

/// `2^(j/32)` for `j in 0..32`, stored as raw IEEE bits — the
/// fractional-power table for [`fast_exp`]. Bits rather than values so the
/// integer exponent `e` folds into the entry with one add (see there).
fn exp2_frac_table() -> &'static [u64; 32] {
    static TABLE: OnceLock<[u64; 32]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0; 32];
        for (j, slot) in t.iter_mut().enumerate() {
            *slot = (j as f64 / 32.0 * std::f64::consts::LN_2).exp().to_bits();
        }
        t
    })
}

/// `32 / ln 2`: scales `x` so the rounded value indexes 2^(1/32) steps.
#[allow(clippy::excessive_precision)]
const INV_LN2_32: f64 = 46.166_241_308_446_828;
/// `ln 2 / 32` in two parts (high part has trailing zero bits, so
/// `k * LN2_32_HI` is exact for the |k| < 2^16 this path produces). Both
/// halves are quoted at full published precision and round into the f64.
#[allow(clippy::excessive_precision)]
const LN2_32_HI: f64 = 6.931_471_803_691_238_164_90e-1 / 32.0;
#[allow(clippy::excessive_precision)]
const LN2_32_LO: f64 = 1.908_214_929_270_587_700_02e-10 / 32.0;

/// `e^x` via table-driven argument reduction: `x = k·(ln2/32) + r`, so
/// `e^x = 2^(k/32) · e^r` with `|r| ≤ ln2/64` small enough for a degree-5
/// Taylor polynomial (error < 3·10⁻¹⁵ relative — about a dozen ulps).
///
/// The simulator draws a multiplicative log-normal noise factor per task,
/// and `exp` was the single hottest libm call on the DES hot path; this
/// runs ~3× faster. Used only where the caller samples a *stochastic*
/// model quantity (noise factors), never where exactness to the last ulp
/// matters (the ziggurat wedge test keeps libm `exp`).
#[inline]
fn fast_exp(x: f64) -> f64 {
    fast_exp_with(x, exp2_frac_table())
}

/// [`fast_exp`] against a pre-fetched fractional-power table — lets burst
/// samplers hoist the `OnceLock` load out of their loops.
#[inline]
fn fast_exp_with(x: f64, frac_bits: &[u64; 32]) -> f64 {
    // Near overflow/underflow, or NaN: defer to libm. One compare covers
    // both guards — NaN fails `<=` — instead of two predicted branches.
    // The negated form is load-bearing: `x.abs() > 500.0` is false for NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(x.abs() <= 500.0) {
        return x.exp();
    }
    // Round-to-nearest via the 1.5·2^52 magic constant (exact for the
    // |x·INV_LN2_32| ≤ 2^15 this path sees) — `f64::round` is a libm call
    // on baseline x86-64 and would cost as much as the exp it replaces.
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 · 2^52
    let y = x * INV_LN2_32 + MAGIC;
    // The magic sum's low mantissa bits ARE the rounded integer in two's
    // complement (|k| < 2^31 here) — reading them skips the int conversion.
    let ki = y.to_bits() as i32 as i64;
    let k = y - MAGIC;
    let r = (x - k * LN2_32_HI) - k * LN2_32_LO;
    // Degree-5 Taylor in Estrin form: r² and r⁴ compute in parallel, so the
    // dependency chain is ~3 multiplies deep instead of Horner's 5 — the
    // polynomial is the latency bottleneck of the noise-sampling burst.
    let r2 = r * r;
    let r4 = r2 * r2;
    let p = (1.0 + r) + r2 * (0.5 + r * (1.0 / 6.0)) + r4 * (1.0 / 24.0 + r * (1.0 / 120.0));
    // ki = 32·e + j with j in [0, 32): two's-complement mask and arithmetic
    // shift agree on that decomposition for negative ki too.
    let j = (ki & 31) as usize;
    let e = ki >> 5;
    // 2^(j/32) lies in [1, 2), so adding `e` to its exponent field is an
    // exact multiply by 2^e — and power-of-two scaling commutes with
    // rounding, so `(frac·2^e)·p` equals the naive `frac·p·2^e` bit for
    // bit while saving a multiply and the separate scale construction.
    let fs = f64::from_bits(frac_bits[j].wrapping_add((e as u64) << 52));
    fs * p
}

/// A deterministic random source with simulation-oriented helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state.
    s: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Create a generator from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with sequential SplitMix64 outputs — the
        // initialization xoshiro's authors recommend.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s, seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw xoshiro256++ state words — a position fingerprint.
    ///
    /// Two generators with equal state (and seed) produce identical future
    /// streams, so comparing states proves two simulations consumed
    /// exactly the same draws. Read-only: state can only advance through
    /// the drawing methods.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Derive an independent child stream identified by `stream`.
    ///
    /// Forking is a pure function of `(seed, stream)` — it does not consume
    /// state from `self` — so subsystems can be initialized in any order.
    pub fn fork(&self, stream: u64) -> SimRng {
        let child = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A_1234_5678)));
        SimRng::seed_from_u64(child)
    }

    /// The next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`SimRng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` or `false` with equal probability.
    fn gen_bool(&mut self) -> bool {
        // Use the top bit: xoshiro++'s high bits are its best-mixed.
        self.next_u64() >> 63 == 1
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty or inverted.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        let x = lo + self.gen_f64() * (hi - lo);
        // Guard the open upper bound against rounding.
        if x >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            x
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo + 1; // hi > lo, so this cannot overflow to 0
        if span == 0 {
            // `[0, u64::MAX]`: every output is in range.
            return self.next_u64();
        }
        // Rejection-free multiply-shift (Lemire); the tiny modulo bias of
        // the plain multiply is corrected by rejecting the biased region.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A standard-normal draw via the ziggurat method.
    ///
    /// One `u64` covers layer choice, sign, and position in the common case
    /// (~98% of draws accept without touching `exp`); wedge and tail
    /// rejection use the exact density, so the distribution is the true
    /// standard normal — only faster to sample than Box–Muller, which paid
    /// `ln`+`sqrt`+`sin`/`cos` on every pair.
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let t = zig_tables();
        self.standard_normal_with(t)
    }

    /// [`standard_normal`](Self::standard_normal) against a pre-fetched
    /// table reference — lets burst samplers hoist the `OnceLock` load out
    /// of their loops.
    #[inline]
    fn standard_normal_with(&mut self, t: &ZigTables) -> f64 {
        loop {
            let bits = self.next_u64();
            let k = (bits & 0xFF) as usize;
            // Branchless sign: bit 8 of the draw, moved onto the f64 sign
            // bit (bit 63). The magnitude below is always non-negative and
            // finite, so the XOR is exactly IEEE negation — bit-identical
            // to `if neg { -x }` — without a 50/50 branch the predictor
            // can only ever get half right.
            let sign = (bits & 0x100) << 55;
            // 53-bit uniform integer from the bits not spent on layer/sign.
            let ui = bits >> 11;
            let (thresh, w) = t.hot[k];
            // Fast accept: an integer compare that doesn't wait on any
            // floating-point latency. `ui < thresh` implies the draw lands
            // strictly inside the layer's rectangle core (or, for the base
            // layer, left of ZIG_R), so no density check is needed.
            if ui < thresh {
                let x = ui as f64 * w;
                return f64::from_bits(x.to_bits() ^ sign);
            }
            if let Some(x) = self.standard_normal_slow(t, k, ui as f64 * w) {
                return f64::from_bits(x.to_bits() ^ sign);
            }
        }
    }

    /// Wedge/tail path of the ziggurat — exact density checks for the ~2%
    /// of draws the hot table's conservative threshold doesn't cover.
    #[cold]
    fn standard_normal_slow(&mut self, t: &ZigTables, k: usize, x: f64) -> Option<f64> {
        if k == 0 {
            // Base layer: uniform over area/height; beyond ZIG_R this
            // falls through to Marsaglia's exact tail sampler.
            if x < ZIG_R {
                return Some(x);
            }
            loop {
                let ex = -(1.0 - self.gen_f64()).ln() / ZIG_R;
                let ey = -(1.0 - self.gen_f64()).ln();
                if ey + ey > ex * ex {
                    return Some(ZIG_R + ex);
                }
            }
        }
        if x >= t.x[k] {
            // Wedge: accept against the true density.
            let y = t.y[k - 1] + self.gen_f64() * (t.y[k] - t.y[k - 1]);
            if y >= (-0.5 * x * x).exp() {
                return None;
            }
        }
        Some(x)
    }

    /// A normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// A log-normal draw: `exp(N(mu, sigma))`.
    ///
    /// With `mu = -sigma^2 / 2` the draw has unit mean, which is how the
    /// simulator models multiplicative task-time noise without bias. Uses
    /// [`fast_exp`] — exact to ~3·10⁻¹⁵ relative, a dozen ulps — because
    /// this is the per-task hot distribution.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        fast_exp(self.normal(mu, sigma))
    }

    /// Append `count` log-normal draws to `out` in one burst.
    ///
    /// Draw-for-draw identical to `count` successive [`lognormal`]
    /// (Self::lognormal) calls — same stream consumption, same arithmetic —
    /// but the ziggurat and `fast_exp` table references are fetched once
    /// for the whole burst and the loop body inlines end to end, instead of
    /// paying a cross-crate call and two `OnceLock` loads per draw. The DES
    /// task loop draws its per-stage noise through this path.
    pub fn fill_lognormal(&mut self, mu: f64, sigma: f64, count: usize, out: &mut Vec<f64>) {
        let base = out.len();
        out.resize(base + count, 0.0);
        self.fill_lognormal_into(mu, sigma, &mut out[base..]);
    }

    /// Fill a pre-sized slice with log-normal draws, one per element.
    ///
    /// The slice-shaped core of [`fill_lognormal`](Self::fill_lognormal):
    /// identical draws and arithmetic, but writing into caller-owned
    /// storage (e.g. an arena lane) with no length bookkeeping at all.
    pub fn fill_lognormal_into(&mut self, mu: f64, sigma: f64, out: &mut [f64]) {
        let t = zig_tables();
        let frac = exp2_frac_table();
        let s = sigma.max(0.0);
        // Indexed writes into pre-sized storage: no per-element capacity
        // check or length bump in the hot loop. Two passes: the normal
        // draws first (their throughput is bound by the generator's serial
        // state chain), then the exp transform over contiguous memory
        // (pure floating point, pipelines freely) — fusing them would
        // chain the polynomial's latency onto every draw.
        for slot in out.iter_mut() {
            *slot = self.standard_normal_with(t);
        }
        for slot in out.iter_mut() {
            *slot = fast_exp_with(mu + s * *slot, frac);
        }
    }

    /// A unit-mean multiplicative noise factor with coefficient `sigma`.
    #[inline]
    pub fn noise_factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        self.lognormal(-sigma * sigma / 2.0, sigma)
    }

    /// An exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = 1.0 - self.gen_f64();
        -u.ln() / rate
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A symmetric Bernoulli ±1 draw — the SPSA perturbation distribution.
    pub fn bernoulli_pm1(&mut self) -> f64 {
        if self.gen_bool() {
            1.0
        } else {
            -1.0
        }
    }

    /// A Poisson draw (Knuth's method; suitable for the small means used by
    /// the contention-spike process).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.gen_f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                // Defensive cap; unreachable for the means we use.
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_parent_state() {
        let parent = SimRng::seed_from_u64(7);
        let mut used = SimRng::seed_from_u64(7);
        let _ = used.next_u64(); // consume parent state
        let mut f1 = parent.fork(3);
        let mut f2 = used.fork(3);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let parent = SimRng::seed_from_u64(7);
        let a: Vec<u64> = {
            let mut r = parent.fork(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = parent.fork(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    /// `fast_exp` must agree with libm to a few ulps across the full range
    /// the noise path produces, and defer to libm outside it.
    #[test]
    fn fast_exp_matches_libm() {
        let mut r = SimRng::seed_from_u64(9);
        for x in (0..200_000)
            .map(|_| r.uniform(-40.0, 40.0))
            .chain([1.0, -1.0])
        {
            let (fast, exact) = (fast_exp(x), x.exp());
            let rel = ((fast - exact) / exact).abs();
            assert!(rel < 1e-13, "fast_exp({x}) = {fast}, libm {exact}");
        }
        // Exact-agreement cases: r = 0 hits the table entry directly, and
        // the guard band defers to libm outright.
        for x in [0.0, -0.0, 700.0, -745.0, f64::NAN, f64::INFINITY] {
            let (fast, exact) = (fast_exp(x), x.exp());
            assert!(
                fast == exact || (fast.is_nan() && exact.is_nan()),
                "fast_exp({x}) = {fast}, libm {exact}"
            );
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::seed_from_u64(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    /// The ziggurat's wedge and tail paths must reproduce the true normal
    /// tail probabilities, not just the bulk moments.
    #[test]
    fn normal_tail_mass_matches_theory() {
        let mut r = SimRng::seed_from_u64(31);
        let n = 400_000;
        let (mut gt1, mut gt3, mut max) = (0u64, 0u64, 0.0f64);
        for _ in 0..n {
            let z = r.standard_normal();
            max = max.max(z.abs());
            if z > 1.0 {
                gt1 += 1;
            }
            if z.abs() > 3.0 {
                gt3 += 1;
            }
        }
        let p1 = gt1 as f64 / n as f64;
        let p3 = gt3 as f64 / n as f64;
        assert!((p1 - 0.1587).abs() < 0.005, "P(z>1) = {p1}");
        assert!((p3 - 0.0027).abs() < 0.001, "P(|z|>3) = {p3}");
        // The tail sampler must produce draws beyond the ziggurat base.
        assert!(max > 3.7, "max |z| = {max}");
    }

    /// The burst sampler must consume the stream and produce values
    /// exactly as per-draw calls do — the DES relies on this to keep
    /// simulated traces identical whichever path draws the noise.
    #[test]
    fn fill_lognormal_matches_per_draw_calls() {
        let (mu, sigma) = (-0.02, 0.2);
        let mut burst_rng = SimRng::seed_from_u64(11);
        let mut burst = Vec::new();
        burst_rng.fill_lognormal(mu, sigma, 10_000, &mut burst);
        let mut single_rng = SimRng::seed_from_u64(11);
        let single: Vec<f64> = (0..10_000)
            .map(|_| single_rng.lognormal(mu, sigma))
            .collect();
        assert_eq!(burst, single);
        assert_eq!(burst_rng.next_u64(), single_rng.next_u64());
    }

    #[test]
    fn noise_factor_has_unit_mean() {
        let mut r = SimRng::seed_from_u64(9);
        let n = 200_000;
        let mean = (0..n).map(|_| r.noise_factor(0.3)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert_eq!(r.noise_factor(0.0), 1.0);
    }

    #[test]
    fn bernoulli_pm1_is_balanced_and_unit_magnitude() {
        let mut r = SimRng::seed_from_u64(77);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = r.bernoulli_pm1();
            assert!(d == 1.0 || d == -1.0);
            sum += d;
        }
        assert!((sum / n as f64).abs() < 0.01);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_parameter() {
        let mut r = SimRng::seed_from_u64(6);
        let n = 50_000;
        let mean = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn uniform_edge_cases() {
        let mut r = SimRng::seed_from_u64(1);
        assert_eq!(r.uniform(3.0, 3.0), 3.0);
        assert_eq!(r.uniform(5.0, 2.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 4.0);
            assert!((2.0..4.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_covers_the_inclusive_range() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = r.uniform_u64(2, 7);
            assert!((2..=7).contains(&x));
            seen[(x - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SimRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    /// The guard edge at |x| = 500 and the extremes beyond it: both sides
    /// of the branch agree with libm, the deferred range is bit-exact
    /// (overflow to ∞, underflow through subnormals to zero), and inputs
    /// that land on half-bucket rounding ties stay within tolerance.
    #[test]
    fn fast_exp_boundary_and_extreme_inputs() {
        let inside = f64::from_bits(500.0f64.to_bits() - 1);
        let outside = f64::from_bits(500.0f64.to_bits() + 1);
        for x in [
            500.0,
            -500.0,
            inside,
            -inside,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324, // smallest subnormal input
            499.999_999,
            -499.999_999,
        ] {
            let (fast, exact) = (fast_exp(x), x.exp());
            let rel = ((fast - exact) / exact).abs();
            assert!(rel < 1e-13, "fast_exp({x}) = {fast}, libm {exact}");
        }
        // Just past the guard and far beyond: the deferral must be
        // bit-exact with libm, including overflow to +∞, graceful
        // underflow into subnormals, and flush to zero.
        for x in [
            outside,
            -outside,
            700.0,
            709.9,  // largest finite exp inputs
            710.0,  // overflows to +inf
            -709.0, // subnormal result
            -745.1, // smallest subnormal results
            -746.0, // underflows to zero
            -1e308,
            1e308,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            assert_eq!(
                fast_exp(x).to_bits(),
                x.exp().to_bits(),
                "deferred fast_exp({x}) not bit-exact"
            );
        }
        // Rounding ties of the bucket decomposition: x = (2k+1)·ln2/64
        // puts x·32/ln2 exactly between integers, the worst case for the
        // magic-constant round-to-nearest.
        for k in -80i64..80 {
            let x = (2 * k + 1) as f64 * std::f64::consts::LN_2 / 64.0;
            let (fast, exact) = (fast_exp(x), x.exp());
            let rel = ((fast - exact) / exact).abs();
            assert!(rel < 1e-13, "tie fast_exp({x}) = {fast}, libm {exact}");
        }
    }

    /// Burst-length edge cases: a zero-length burst is a no-op (stream
    /// position included), a one-draw burst equals the per-draw call, and
    /// a capacity-crossing burst still matches per-draw exactly.
    #[test]
    fn fill_lognormal_burst_length_edges() {
        // count = 0: contents, length, and RNG stream all untouched.
        let mut r = SimRng::seed_from_u64(5);
        let before = r.state();
        let mut out = vec![1.0, 2.0];
        r.fill_lognormal(0.1, 0.3, 0, &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
        assert_eq!(r.state(), before);

        // count = 1: appends exactly one per-draw value after the prefix
        // and leaves the stream where the per-draw call would.
        let mut single = SimRng::seed_from_u64(5);
        let expect = single.lognormal(0.1, 0.3);
        r.fill_lognormal(0.1, 0.3, 1, &mut out);
        assert_eq!(out, vec![1.0, 2.0, expect]);
        assert_eq!(r.state(), single.state());

        // A burst that outgrows a deliberately tiny capacity (multiple
        // reallocations mid-burst) matches per-draw element for element.
        let mut burst_rng = SimRng::seed_from_u64(6);
        let mut burst = Vec::with_capacity(1);
        burst_rng.fill_lognormal(-0.02, 0.2, 4096, &mut burst);
        let mut per = SimRng::seed_from_u64(6);
        let singles: Vec<f64> = (0..4096).map(|_| per.lognormal(-0.02, 0.2)).collect();
        assert_eq!(burst, singles);
        assert_eq!(burst_rng.state(), per.state());
    }

    /// Slice-shaped edge cases: an empty slice draws nothing, and a zero
    /// (or negative, clamped) sigma still consumes one normal per slot —
    /// stream parity with the noisy path — while landing exactly on
    /// `exp(mu)`.
    #[test]
    fn fill_lognormal_into_empty_and_degenerate_sigma() {
        let mut r = SimRng::seed_from_u64(7);
        let before = r.state();
        let mut empty: [f64; 0] = [];
        r.fill_lognormal_into(0.0, 1.0, &mut empty);
        assert_eq!(r.state(), before);

        let mut out = [0.0; 8];
        r.fill_lognormal_into(0.25, 0.0, &mut out);
        for v in out {
            assert_eq!(v, fast_exp(0.25));
        }
        // Negative sigma clamps to zero: same values, same consumption.
        let mut neg = SimRng::seed_from_u64(7);
        let mut skip: [f64; 0] = [];
        neg.fill_lognormal_into(0.0, 1.0, &mut skip);
        let mut out_neg = [0.0; 8];
        neg.fill_lognormal_into(0.25, -3.0, &mut out_neg);
        assert_eq!(out, out_neg);
        assert_eq!(r.state(), neg.state());
    }
}
