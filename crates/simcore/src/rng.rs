//! Seeded randomness for reproducible experiments.
//!
//! [`SimRng`] is a self-contained deterministic generator (xoshiro256++
//! seeded through SplitMix64 — no external dependencies, so the workspace
//! builds hermetically offline) with the distributions this workspace
//! needs and deterministic *stream forking*: every subsystem (receiver
//! noise, task noise, SPSA perturbations, workload iteration counts, …)
//! forks its own independent stream from one experiment seed, so adding an
//! RNG consumer to one subsystem never perturbs another.

/// SplitMix64 finalizer — used to derive well-mixed child seeds and to
/// expand one `u64` seed into the generator's 256-bit state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic random source with simulation-oriented helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state.
    s: [u64; 4],
    seed: u64,
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create a generator from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with sequential SplitMix64 outputs — the
        // initialization xoshiro's authors recommend.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng {
            s,
            seed,
            spare_normal: None,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream identified by `stream`.
    ///
    /// Forking is a pure function of `(seed, stream)` — it does not consume
    /// state from `self` — so subsystems can be initialized in any order.
    pub fn fork(&self, stream: u64) -> SimRng {
        let child = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A_1234_5678)));
        SimRng::seed_from_u64(child)
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`SimRng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` or `false` with equal probability.
    fn gen_bool(&mut self) -> bool {
        // Use the top bit: xoshiro++'s high bits are its best-mixed.
        self.next_u64() >> 63 == 1
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty or inverted.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        let x = lo + self.gen_f64() * (hi - lo);
        // Guard the open upper bound against rounding.
        if x >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            x
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo + 1; // hi > lo, so this cannot overflow to 0
        if span == 0 {
            // `[0, u64::MAX]`: every output is in range.
            return self.next_u64();
        }
        // Rejection-free multiply-shift (Lemire); the tiny modulo bias of
        // the plain multiply is corrected by rejecting the biased region.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A standard-normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - self.gen_f64();
        let u2: f64 = self.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// A log-normal draw: `exp(N(mu, sigma))`.
    ///
    /// With `mu = -sigma^2 / 2` the draw has unit mean, which is how the
    /// simulator models multiplicative task-time noise without bias.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A unit-mean multiplicative noise factor with coefficient `sigma`.
    pub fn noise_factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        self.lognormal(-sigma * sigma / 2.0, sigma)
    }

    /// An exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = 1.0 - self.gen_f64();
        -u.ln() / rate
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A symmetric Bernoulli ±1 draw — the SPSA perturbation distribution.
    pub fn bernoulli_pm1(&mut self) -> f64 {
        if self.gen_bool() {
            1.0
        } else {
            -1.0
        }
    }

    /// A Poisson draw (Knuth's method; suitable for the small means used by
    /// the contention-spike process).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.gen_f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                // Defensive cap; unreachable for the means we use.
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_parent_state() {
        let parent = SimRng::seed_from_u64(7);
        let mut used = SimRng::seed_from_u64(7);
        let _ = used.next_u64(); // consume parent state
        let mut f1 = parent.fork(3);
        let mut f2 = used.fork(3);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let parent = SimRng::seed_from_u64(7);
        let a: Vec<u64> = {
            let mut r = parent.fork(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = parent.fork(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::seed_from_u64(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn noise_factor_has_unit_mean() {
        let mut r = SimRng::seed_from_u64(9);
        let n = 200_000;
        let mean = (0..n).map(|_| r.noise_factor(0.3)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert_eq!(r.noise_factor(0.0), 1.0);
    }

    #[test]
    fn bernoulli_pm1_is_balanced_and_unit_magnitude() {
        let mut r = SimRng::seed_from_u64(77);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = r.bernoulli_pm1();
            assert!(d == 1.0 || d == -1.0);
            sum += d;
        }
        assert!((sum / n as f64).abs() < 0.01);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_parameter() {
        let mut r = SimRng::seed_from_u64(6);
        let n = 50_000;
        let mean = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn uniform_edge_cases() {
        let mut r = SimRng::seed_from_u64(1);
        assert_eq!(r.uniform(3.0, 3.0), 3.0);
        assert_eq!(r.uniform(5.0, 2.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 4.0);
            assert!((2.0..4.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_covers_the_inclusive_range() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = r.uniform_u64(2, 7);
            assert!((2..=7).contains(&x));
            seen[(x - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SimRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
