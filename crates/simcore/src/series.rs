//! Time-series recording for experiment output.
//!
//! Each figure regenerator collects one or more [`TimeSeries`] and prints
//! them as aligned columns or CSV, mirroring the series plotted in the paper.

use crate::stats::{summarize, Summary};
use crate::time::SimTime;
use std::fmt::Write as _;

/// A named sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Series name (used as the column header).
    pub name: String,
    /// Samples in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample at simulation instant `t`.
    pub fn push_at(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// Append a sample with an explicit x-coordinate (e.g. iteration index).
    pub fn push(&mut self, x: f64, value: f64) {
        self.points.push((x, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y-values.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Statistical summary of the y-values.
    pub fn summary(&self) -> Summary {
        summarize(&self.values())
    }

    /// The final sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Render as two-column CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 24 + 16);
        let _ = writeln!(out, "x,{}", self.name);
        for &(x, y) in &self.points {
            let _ = writeln!(out, "{x},{y}");
        }
        out
    }
}

/// Render multiple series sharing an x-axis as aligned CSV columns.
///
/// Rows are the union of x-values; series missing a given x emit an empty
/// cell. Useful when several metrics were sampled on slightly different
/// schedules (e.g. batch completions vs. controller rounds).
pub fn merged_csv(series: &[&TimeSeries]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut out = String::new();
    let _ = write!(out, "x");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    let _ = writeln!(out);

    // Per-series cursor: points are not required to be sorted, so index them.
    let indexed: Vec<std::collections::BTreeMap<u64, f64>> = series
        .iter()
        .map(|s| s.points.iter().map(|&(x, y)| (quantize(x), y)).collect())
        .collect();

    for x in xs {
        let _ = write!(out, "{x}");
        let key = quantize(x);
        for m in &indexed {
            match m.get(&key) {
                Some(y) => {
                    let _ = write!(out, ",{y}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn quantize(x: f64) -> u64 {
    // 1e-9 resolution is far finer than any x-grid we use.
    (x * 1e9).round() as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summary() {
        let mut s = TimeSeries::new("delay");
        s.push(0.0, 10.0);
        s.push(1.0, 20.0);
        s.push_at(SimTime::from_secs_f64(2.0), 30.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((2.0, 30.0)));
        let sum = s.summary();
        assert_eq!(sum.n, 3);
        assert!((sum.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = TimeSeries::new("y");
        s.push(1.0, 2.0);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("x,y"));
        assert_eq!(lines.next(), Some("1,2"));
    }

    #[test]
    fn merged_csv_aligns_union_of_x() {
        let mut a = TimeSeries::new("a");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = TimeSeries::new("b");
        b.push(2.0, 200.0);
        b.push(3.0, 300.0);
        let csv = merged_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.summary().n, 0);
        assert_eq!(s.to_csv(), "x,empty\n");
    }
}
