//! Online and windowed statistics.
//!
//! The NoStop policies are statistical: the pause rule compares the standard
//! deviation of the N best delays against a threshold S (§5.3.5), and the
//! reset rule watches the standard deviation of recent input rates (§5.5).
//! Both are built on the utilities here.

use std::collections::VecDeque;

/// Streaming mean/variance via Welford's algorithm — numerically stable and
/// O(1) per sample.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Snapshot as a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// A compact summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarize a slice in one pass.
pub fn summarize(xs: &[f64]) -> Summary {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w.summary()
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    summarize(xs).std_dev
}

/// Linear-interpolated percentile (`q` in `[0, 100]`) of an unsorted slice.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Fixed-capacity rolling window with O(1) mean/variance queries.
///
/// Used for the input-rate reset rule: push the observed rate of every batch
/// and compare `std_dev()` against `threshold_speed`.
#[derive(Debug, Clone)]
pub struct RollingStats {
    cap: usize,
    buf: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
}

impl RollingStats {
    /// A window holding at most `cap` samples (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be at least 1");
        RollingStats {
            cap,
            buf: VecDeque::with_capacity(cap),
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Push a sample, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.cap {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
                self.sum_sq -= old * old;
            }
        }
        self.buf.push_back(x);
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the window has no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Mean of the windowed samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Population standard deviation of the windowed samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.buf.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.sum / n as f64;
        // Guard against tiny negative values from float cancellation.
        let var = (self.sum_sq / n as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Iterate over the windowed samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Smoothing factor `alpha` in `(0, 1]`; larger tracks faster.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Fold a sample in and return the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.min(), None);
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.min(), Some(3.5));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn rolling_window_evicts_oldest() {
        let mut r = RollingStats::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            r.push(x);
        }
        assert_eq!(r.len(), 3);
        assert!((r.mean() - 3.0).abs() < 1e-12);
        let expect = std_dev(&[2.0, 3.0, 4.0]);
        assert!((r.std_dev() - expect).abs() < 1e-9);
        assert_eq!(r.last(), Some(4.0));
    }

    #[test]
    fn rolling_window_matches_batch_stats() {
        let mut r = RollingStats::new(50);
        let mut rng = crate::rng::SimRng::seed_from_u64(11);
        let mut tail = VecDeque::new();
        for _ in 0..500 {
            let x = rng.uniform(0.0, 100.0);
            r.push(x);
            tail.push_back(x);
            if tail.len() > 50 {
                tail.pop_front();
            }
            let xs: Vec<f64> = tail.iter().copied().collect();
            assert!((r.mean() - mean(&xs)).abs() < 1e-9);
            assert!((r.std_dev() - std_dev(&xs)).abs() < 1e-7);
        }
    }

    #[test]
    fn rolling_clear_resets() {
        let mut r = RollingStats::new(4);
        r.push(10.0);
        r.push(20.0);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
    }

    #[test]
    fn ewma_tracks_constant_input() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        for _ in 0..100 {
            e.push(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-12);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rolling_zero_capacity_panics() {
        let _ = RollingStats::new(0);
    }
}
