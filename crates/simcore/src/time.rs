//! Virtual time for discrete-event simulation.
//!
//! The paper's experiments run for tens of minutes of wall-clock time on a
//! five-node cluster; we replay them in virtual time. [`SimTime`] is an
//! absolute instant and [`SimDuration`] a span, both stored as integer
//! microseconds so event ordering is exact (no floating-point tie ambiguity)
//! and a simulated day fits comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from (possibly fractional) seconds. Negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// The instant as whole microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds. Negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e6).round() as u64)
    }

    /// The span as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(1_500).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(2.5).as_secs_f64(), 2.5);
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t = SimTime::from_secs_f64(10.0);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t - d).as_secs_f64(), 6.0);
        assert_eq!(((t + d) - t).as_secs_f64(), 4.0);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_secs_f64(1.0);
        let late = SimTime::from_secs_f64(5.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_secs_f64(), 4.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5).as_secs_f64(), 5.0);
        assert_eq!((d * 3).as_secs_f64(), 30.0);
        assert_eq!((d / 4).as_secs_f64(), 2.5);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs_f64(1e9));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(500)), "500us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
