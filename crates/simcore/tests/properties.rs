//! Property-based tests for the simulation primitives.

use nostop_simcore::stats::{mean, percentile, std_dev, RollingStats, Welford};
use nostop_simcore::{BinaryHeapEventQueue, EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Schedule(u64),
    Pop,
    PopUntil(u64),
}

proptest! {
    #[test]
    fn time_addition_is_associative(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let t = SimTime::from_micros(a);
        let d1 = SimDuration::from_micros(b);
        let d2 = SimDuration::from_micros(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
    }

    #[test]
    fn time_sub_then_add_round_trips(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let early = SimTime::from_micros(lo);
        let late = SimTime::from_micros(hi);
        let d = late - early;
        prop_assert_eq!(early + d, late);
        prop_assert_eq!(late.saturating_since(early), d);
        prop_assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn secs_round_trip_within_microsecond(secs in 0.0f64..1e7) {
        let t = SimTime::from_secs_f64(secs);
        prop_assert!((t.as_secs_f64() - secs).abs() < 1e-6);
    }

    #[test]
    fn welford_matches_two_pass_formulas(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!((w.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-6);
        prop_assert_eq!(w.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(w.min(), Some(min));
    }

    #[test]
    fn rolling_stats_equal_tail_statistics(
        xs in prop::collection::vec(0.0f64..1e5, 1..300),
        cap in 1usize..40,
    ) {
        let mut r = RollingStats::new(cap);
        for &x in &xs {
            r.push(x);
        }
        let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
        prop_assert!((r.mean() - mean(&tail)).abs() < 1e-6);
        prop_assert!((r.std_dev() - std_dev(&tail)).abs() < 1e-4);
        prop_assert_eq!(r.len(), tail.len());
    }

    #[test]
    fn percentile_is_bounded_and_monotone(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        let (lo_q, hi_q) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo_q).unwrap();
        let p_hi = percentile(&xs, hi_q).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-9 && p_hi <= max + 1e-9);
    }

    #[test]
    fn event_queue_pops_sorted_and_stable(events in prop::collection::vec((0u64..1000, 0u32..100), 0..200)) {
        let mut q = EventQueue::new();
        for (i, &(t, tag)) in events.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (tag, i));
        }
        let mut prev_time = SimTime::ZERO;
        let mut prev_seq_at_time = None::<usize>;
        let mut count = 0;
        while let Some((t, (_, seq))) = q.pop() {
            count += 1;
            prop_assert!(t >= prev_time);
            if t == prev_time {
                if let Some(ps) = prev_seq_at_time {
                    prop_assert!(seq > ps, "FIFO within an instant");
                }
            }
            prev_time = t;
            prev_seq_at_time = Some(seq);
        }
        prop_assert_eq!(count, events.len());
    }

    #[test]
    fn calendar_queue_matches_binary_heap_reference(
        ops in prop::collection::vec(
            // (selector, time) pairs: schedules across two magnitudes so
            // events land in wheel buckets, the overflow level, and (after
            // pops) the past level, interleaved with pops.
            (0u64..4, 0u64..20_000_000u64).prop_map(|(sel, t)| match sel {
                0 => Op::Schedule(t % 5_000),
                1 => Op::Schedule(t),
                2 => Op::Pop,
                _ => Op::PopUntil(t),
            }),
            0..400,
        )
    ) {
        let mut calendar = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut next_id = 0u32;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    calendar.schedule(SimTime::from_micros(t), next_id);
                    reference.schedule(SimTime::from_micros(t), next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(calendar.next_time(), reference.next_time());
                    prop_assert_eq!(calendar.pop(), reference.pop());
                }
                Op::PopUntil(t) => {
                    prop_assert_eq!(
                        calendar.pop_until(SimTime::from_micros(t)),
                        reference.pop_until(SimTime::from_micros(t))
                    );
                }
            }
            prop_assert_eq!(calendar.len(), reference.len());
        }
        // Drain both: pop order (incl. same-instant FIFO ties) must agree.
        loop {
            let (a, b) = (calendar.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rng_forks_are_deterministic_and_distinct(seed in any::<u64>(), s1 in 0u64..1000, s2 in 0u64..1000) {
        let parent = SimRng::seed_from_u64(seed);
        let take = |mut r: SimRng| -> Vec<f64> { (0..8).map(|_| r.uniform(0.0, 1.0)).collect() };
        prop_assert_eq!(take(parent.fork(s1)), take(parent.fork(s1)));
        if s1 != s2 {
            prop_assert_ne!(take(parent.fork(s1)), take(parent.fork(s2)));
        }
    }

    #[test]
    fn noise_factor_is_positive_and_finite(seed in any::<u64>(), sigma in 0.0f64..2.0) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let f = r.noise_factor(sigma);
            prop_assert!(f.is_finite() && f > 0.0);
        }
    }
}
