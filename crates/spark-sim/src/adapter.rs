//! The bridge between the simulator and the NoStop controller.
//!
//! [`SimSystem`] implements [`StreamingSystem`], so the controller tunes
//! the simulated cluster through exactly the interface a REST-driven
//! deployment would expose. To keep that claim honest, the observation
//! path round-trips through the JSON wire format: the engine's metrics are
//! serialized to a [`StatusReport`] (what a real listener would POST) and
//! parsed back before reaching the controller.

use crate::config::{ExtendedConfig, StreamConfig};
use crate::engine::StreamingEngine;
use nostop_core::listener::StatusReport;
use nostop_core::system::{BatchObservation, StreamingSystem};

/// A simulated cluster exposed as a tunable streaming system.
pub struct SimSystem {
    engine: StreamingEngine,
    /// When true (default), observations round-trip through the Fig-4 JSON
    /// wire format.
    json_roundtrip: bool,
    /// Reused serialization buffer for the per-batch round-trip.
    json_buf: String,
}

impl SimSystem {
    /// Wrap an engine.
    pub fn new(engine: StreamingEngine) -> Self {
        SimSystem {
            engine,
            json_roundtrip: true,
            json_buf: String::new(),
        }
    }

    /// Disable the JSON round-trip (saves a few allocations in benches).
    pub fn without_json_roundtrip(mut self) -> Self {
        self.json_roundtrip = false;
        self
    }

    /// Access the wrapped engine.
    pub fn engine(&self) -> &StreamingEngine {
        &self.engine
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut StreamingEngine {
        &mut self.engine
    }
}

impl StreamingSystem for SimSystem {
    fn apply_config(&mut self, physical: &[f64]) {
        // The vector length selects the surface: the paper's 2-knob
        // controller sends `[interval, executors]`; the tuner arena sends
        // the full `ConfigSpace::extended()` vector.
        if physical.len() >= 8 {
            self.engine
                .apply_extended_config(&ExtendedConfig::from_physical(physical));
        } else {
            self.engine
                .apply_config(StreamConfig::from_physical(physical));
        }
    }

    fn next_batch(&mut self) -> BatchObservation {
        self.engine.run_batches(1);
        let metrics = *self
            .engine
            .listener()
            .last()
            .expect("run_batches(1) completed a batch");
        if self.json_roundtrip {
            self.json_buf.clear();
            metrics.to_status_report().write_json(&mut self.json_buf);
            StatusReport::from_json(&self.json_buf)
                .expect("wire format must round-trip")
                .to_observation()
        } else {
            metrics.to_observation()
        }
    }

    fn now_s(&self) -> f64 {
        self.engine.now().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineParams;
    use crate::noise::NoiseParams;
    use nostop_datagen::rate::ConstantRate;
    use nostop_simcore::SimDuration;
    use nostop_workloads::WorkloadKind;

    fn system(seed: u64) -> SimSystem {
        let mut params = EngineParams::paper(WorkloadKind::LogisticRegression, seed);
        params.noise = NoiseParams::disabled();
        SimSystem::new(StreamingEngine::new(
            params,
            StreamConfig::new(SimDuration::from_secs(15), 12),
            Box::new(ConstantRate::new(10_000.0)),
        ))
    }

    #[test]
    fn next_batch_blocks_until_completion() {
        let mut s = system(1);
        let b1 = s.next_batch();
        let b2 = s.next_batch();
        assert!(b2.completed_at_s > b1.completed_at_s);
        assert!(b1.records > 0);
        assert_eq!(b1.interval_s, 15.0);
    }

    #[test]
    fn apply_config_reaches_engine() {
        let mut s = system(2);
        s.next_batch();
        s.apply_config(&[25.0, 16.0]);
        // Drain until the new interval shows up.
        let mut seen = false;
        for _ in 0..5 {
            if s.next_batch().interval_s == 25.0 {
                seen = true;
                break;
            }
        }
        assert!(seen, "new interval must take effect");
        assert_eq!(s.engine().config().num_executors, 16);
    }

    #[test]
    fn extended_config_reaches_engine_mechanics() {
        let mut s = system(7);
        s.next_batch();
        s.apply_config(&[25.0, 16.0, 128.0, 0.4, 2.0, 400.0, 5.0, 2.0]);
        for _ in 0..5 {
            if s.next_batch().interval_s == 25.0 {
                break;
            }
        }
        let engine = s.engine();
        assert_eq!(engine.config().num_executors, 16);
        // The real mechanics were retargeted...
        assert_eq!(
            engine.params().block_interval,
            SimDuration::from_millis(400)
        );
        assert_eq!(
            engine.params().speculation.map(|sp| sp.multiplier),
            Some(2.0)
        );
        // ...and a narrow 2-knob reconfiguration afterwards keeps the
        // overlay in force (it only re-derives on extended applies).
        s.apply_config(&[20.0, 12.0]);
        assert_eq!(
            s.engine().params().block_interval,
            SimDuration::from_millis(400)
        );
    }

    #[test]
    fn json_roundtrip_and_direct_paths_agree() {
        let mut via_json = system(3);
        let mut direct = system(3).without_json_roundtrip();
        for _ in 0..5 {
            let a = via_json.next_batch();
            let b = direct.next_batch();
            // JSON carries millisecond timestamps; agree to 1 ms.
            assert!((a.processing_s - b.processing_s).abs() < 2e-3);
            assert!((a.scheduling_delay_s - b.scheduling_delay_s).abs() < 2e-3);
            assert_eq!(a.records, b.records);
            assert_eq!(a.num_executors, b.num_executors);
        }
    }

    #[test]
    fn now_advances_with_batches() {
        let mut s = system(4);
        let t0 = s.now_s();
        s.next_batch();
        assert!(s.now_s() > t0);
    }
}
