//! The fleet executor arbiter.
//!
//! One streaming cluster, N tenant jobs, each with its own NoStop
//! controller asking for executors. The arbiter owns the fleet-wide
//! executor budget and decides, at every fleet barrier (see
//! [`crate::fleet`]), how many executors each tenant may actually hold.
//! Decisions are appended to a ledger of [`LedgerEvent`]s — every grant,
//! denial, queue entry, voluntary release, preemption decision, and
//! matured revocation — so the whole allocation history is auditable,
//! diffable, and checkable against a conservation invariant at every
//! entry.
//!
//! Three properties the test battery holds the arbiter to:
//!
//! * **Determinism.** The arbiter draws no RNG and iterates tenants in id
//!   order (or a priority order derived purely from the requests), so the
//!   ledger is a pure function of (budget, policy, request history).
//! * **Conservation.** `in_use` equals the sum of live allocations after
//!   every ledger entry, never exceeds the budget, and replaying
//!   [`LedgerEventKind::in_use_delta`] from zero reproduces it exactly.
//! * **Bounded grace.** Under [`ArbiterPolicy::PreemptWithGrace`], an
//!   involuntary cut is *decided* (a `Preempt` entry) at one barrier and
//!   *enforced* (a `Revoke` entry) exactly `grace_epochs` barriers later
//!   — by construction, not by scheduling luck. The immediate policies
//!   emit the same `Preempt`/`Revoke` pair within a single barrier, so
//!   `in_use` always moves on `Revoke` and the replay rule is uniform.

use nostop_core::arbiter::{
    ArbiterPolicy, LedgerCheckpoint, LedgerEvent, LedgerEventKind, ResourceRequest,
};
use nostop_obs::Recorder;
use nostop_simcore::SimTime;

/// Cumulative arbiter activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Grant entries appended.
    pub grants: u64,
    /// Deny entries appended.
    pub denies: u64,
    /// Queue entries appended.
    pub queues: u64,
    /// Release entries appended.
    pub releases: u64,
    /// Preemption decisions appended.
    pub preemptions: u64,
    /// Matured (enforced) revocations appended.
    pub revocations: u64,
    /// Barriers where at least `coalesce_threshold` tenants changed
    /// their demand simultaneously — a reconfiguration storm handled in
    /// one allocation pass instead of one pass per request.
    pub coalesced_rounds: u64,
}

/// What one tenant is told after a barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantGrant {
    /// Tenant id.
    pub tenant: u32,
    /// Executors the tenant may hold right now (its allocation).
    pub granted: u32,
    /// True when the allocation covers the tenant's full want.
    pub satisfied: bool,
    /// Fleet contention pressure to feed the tenant's noise model
    /// (1.0 = unconstrained; below 1.0 the whole fleet is oversubscribed
    /// and every tenant's tasks run proportionally slower — the
    /// noisy-neighbor term).
    pub pressure: f64,
}

/// A preemption decided but not yet enforced (grace policy).
#[derive(Debug, Clone, Copy)]
struct PendingRevocation {
    tenant: usize,
    amount: u64,
    mature_epoch: u64,
}

/// The global executor arbiter. See the module docs.
pub struct ExecutorArbiter {
    /// Fleet executor budget (`u64::MAX` = unlimited).
    budget: u64,
    policy: ArbiterPolicy,
    /// Barriers with at least this many simultaneous demand changes
    /// count as one coalesced storm (0 disables the counter).
    coalesce_threshold: usize,
    /// Live allocation per tenant id.
    alloc: Vec<u64>,
    /// Tenants currently short of their want (a live queued request).
    waiting: Vec<bool>,
    /// How many entries of `waiting` are true — the sparse barrier's
    /// cheapest license check.
    waiting_count: usize,
    /// Each tenant's want at the previous barrier (storm detection).
    last_want: Vec<Option<u32>>,
    /// Decided-but-unenforced cuts, in decision order.
    revocations: Vec<PendingRevocation>,
    /// The live ledger tail; entry `i` carries seq `base_seq + i`.
    ledger: Vec<LedgerEvent>,
    /// Sequence number of `ledger[0]` (= entries folded into the
    /// checkpoint so far; 0 until a fold happens).
    base_seq: u64,
    /// The folded, conservation-verified ledger prefix, if any.
    checkpoint: Option<LedgerCheckpoint>,
    /// Fold the tail once it exceeds this many entries (`None` = keep
    /// the whole ledger in memory, the default).
    checkpoint_capacity: Option<usize>,
    in_use: u64,
    stats: ArbiterStats,
    /// Recorder for `arbiter.*` instants and counters (its own track).
    obs: Recorder,
}

impl ExecutorArbiter {
    /// An arbiter over `budget` executors (`None` = unlimited) under
    /// `policy`. `coalesce_threshold` is the storm size K counted by
    /// [`ArbiterStats::coalesced_rounds`].
    pub fn new(budget: Option<u32>, policy: ArbiterPolicy, coalesce_threshold: usize) -> Self {
        ExecutorArbiter {
            budget: budget.map(|b| b as u64).unwrap_or(u64::MAX),
            policy,
            coalesce_threshold,
            alloc: Vec::new(),
            waiting: Vec::new(),
            waiting_count: 0,
            last_want: Vec::new(),
            revocations: Vec::new(),
            ledger: Vec::new(),
            base_seq: 0,
            checkpoint: None,
            checkpoint_capacity: None,
            in_use: 0,
            stats: ArbiterStats::default(),
            obs: Recorder::disabled(),
        }
    }

    /// Attach a trace recorder; arbiter events land on its `"arbiter"`
    /// track.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.obs = recorder.with_track("arbiter");
    }

    /// Change the storm-coalescing threshold K (0 disables the counter).
    pub fn set_coalesce_threshold(&mut self, k: usize) {
        self.coalesce_threshold = k;
    }

    /// The policy in force.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// The budget in force (`u64::MAX` = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Executors currently allocated fleet-wide.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// The tenant's current allocation (0 for unseen tenants).
    pub fn allocation(&self, tenant: usize) -> u64 {
        self.alloc.get(tenant).copied().unwrap_or(0)
    }

    /// The live ledger tail (the full history when checkpointing is off;
    /// otherwise everything since the last fold — see
    /// [`ExecutorArbiter::checkpoint`]).
    pub fn ledger(&self) -> &[LedgerEvent] {
        &self.ledger
    }

    /// Sequence number the next ledger entry will continue from minus the
    /// tail length — i.e. the seq of `ledger()[0]` (0 until a fold).
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The folded ledger prefix, if checkpointing has folded one.
    pub fn checkpoint(&self) -> Option<&LedgerCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Bound the in-memory ledger: once the tail exceeds `capacity`
    /// entries, the arbiter verifies conservation over it and folds it
    /// into an epoch-stamped [`LedgerCheckpoint`]. Off by default (the
    /// whole history stays in memory).
    pub fn enable_ledger_checkpointing(&mut self, capacity: usize) {
        self.checkpoint_capacity = Some(capacity);
    }

    /// Check the conservation invariant over everything the arbiter still
    /// holds: the tail replayed from the checkpoint base (or from zero
    /// when no fold has happened). Returns the final in-use total.
    pub fn check_conservation(&self) -> Result<u64, String> {
        let base_in_use = self.checkpoint.map(|c| c.in_use).unwrap_or(0);
        check_ledger_conservation_from(&self.ledger, self.base_seq, base_in_use)
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// Cuts decided but not yet enforced (grace policy only).
    pub fn pending_revocations(&self) -> usize {
        self.revocations.len()
    }

    fn push_event(
        &mut self,
        now: SimTime,
        epoch: u64,
        tenant: usize,
        kind: LedgerEventKind,
        amount: u64,
    ) {
        debug_assert!(self.in_use <= self.budget, "allocation exceeded budget");
        let event = LedgerEvent {
            epoch,
            seq: self.base_seq + self.ledger.len() as u64,
            tenant: tenant as u32,
            kind,
            amount: amount as u32,
            in_use: self.in_use,
            budget: self.budget,
        };
        self.ledger.push(event);
        if self.obs.is_enabled() {
            let name = match kind {
                LedgerEventKind::Grant => "arbiter.grant",
                LedgerEventKind::Deny => "arbiter.deny",
                LedgerEventKind::Queue => "arbiter.queue",
                LedgerEventKind::Release => "arbiter.release",
                LedgerEventKind::Preempt => "arbiter.preempt",
                LedgerEventKind::Revoke => "arbiter.revoke",
            };
            self.obs.instant(
                now,
                name,
                &[
                    ("tenant", tenant as f64),
                    ("amount", amount as f64),
                    ("in_use", self.in_use as f64),
                ],
            );
            self.obs.add(now, name, 1);
        }
    }

    /// The policy's ideal allocation vector for the given wants — capped
    /// at the budget but ignoring current holdings (the barrier then
    /// moves actual allocations toward these targets, immediately or
    /// with grace).
    fn targets(&self, requests: &[ResourceRequest]) -> Vec<u64> {
        let wants: Vec<u64> = requests.iter().map(|r| r.want as u64).collect();
        if self.budget == u64::MAX {
            return wants;
        }
        match self.policy {
            ArbiterPolicy::FairShare => fair_share(&wants, self.budget),
            ArbiterPolicy::StrictPriority | ArbiterPolicy::PreemptWithGrace { .. } => {
                strict_priority(requests, &wants, self.budget)
            }
        }
    }

    /// Run one fleet barrier: enforce matured revocations, absorb
    /// voluntary releases, recompute policy targets over the presented
    /// demands, and move allocations toward them. `requests[i].tenant`
    /// must equal `i` (the fleet presents a dense, id-ordered vector
    /// every barrier — demand is level-triggered, so there is no
    /// per-request handshake to lose; once aggregate demand fits the
    /// budget again, every queued request resolves at the next barrier).
    pub fn arbitrate(
        &mut self,
        epoch: u64,
        now: SimTime,
        requests: &[ResourceRequest],
    ) -> Vec<TenantGrant> {
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(
                r.tenant as usize, i,
                "requests must be dense and id-ordered"
            );
        }
        if self.alloc.len() < requests.len() {
            self.alloc.resize(requests.len(), 0);
            self.waiting.resize(requests.len(), false);
            self.last_want.resize(requests.len(), None);
        }

        // Storm detection before any mutation: how many tenants changed
        // their demand since the previous barrier?
        if self.coalesce_threshold > 0 {
            let changed = requests
                .iter()
                .enumerate()
                .filter(|(i, r)| self.last_want[*i].is_some_and(|w| w != r.want))
                .count();
            if changed >= self.coalesce_threshold {
                self.stats.coalesced_rounds += 1;
                if self.obs.is_enabled() {
                    self.obs
                        .instant(now, "arbiter.coalesce", &[("requests", changed as f64)]);
                    self.obs.add(now, "arbiter.coalesce", 1);
                }
            }
        }
        for (i, r) in requests.iter().enumerate() {
            self.last_want[i] = Some(r.want);
        }

        // 1. Enforce matured revocations (frees budget for step 4).
        let mut matured = Vec::new();
        self.revocations.retain(|r| {
            if r.mature_epoch <= epoch {
                matured.push(*r);
                false
            } else {
                true
            }
        });
        for r in matured {
            // Voluntary releases since the decision already returned some
            // (or all) of the cut; only the remainder is revoked.
            let cut = r.amount.min(self.alloc[r.tenant]);
            if cut > 0 {
                self.alloc[r.tenant] -= cut;
                self.in_use -= cut;
                self.stats.revocations += 1;
                self.push_event(now, epoch, r.tenant, LedgerEventKind::Revoke, cut);
            }
        }

        // 2. Voluntary releases: a tenant whose want dropped below its
        // allocation gives the difference back immediately.
        for (i, r) in requests.iter().enumerate() {
            let want = r.want as u64;
            if want < self.alloc[i] {
                let delta = self.alloc[i] - want;
                self.alloc[i] = want;
                self.in_use -= delta;
                self.stats.releases += 1;
                // The freed executors cover the oldest pending cuts first.
                let mut remaining = delta;
                for rev in self.revocations.iter_mut().filter(|r| r.tenant == i) {
                    let absorbed = rev.amount.min(remaining);
                    rev.amount -= absorbed;
                    remaining -= absorbed;
                }
                self.revocations.retain(|r| r.amount > 0);
                self.push_event(now, epoch, i, LedgerEventKind::Release, delta);
            }
        }

        // 3. Policy targets over the full demand vector.
        let targets = self.targets(requests);

        // 4a. Involuntary cuts: allocation above target despite live
        // demand. Immediate policies enforce within this barrier
        // (Preempt + Revoke back to back); the grace policy records the
        // decision now and enforces it `grace_epochs` barriers later.
        let grace = match self.policy {
            ArbiterPolicy::PreemptWithGrace { grace_epochs } => Some(grace_epochs as u64),
            _ => None,
        };
        for (i, &target) in targets.iter().enumerate() {
            let pending: u64 = self
                .revocations
                .iter()
                .filter(|r| r.tenant == i)
                .map(|r| r.amount)
                .sum();
            let effective = self.alloc[i].saturating_sub(pending);
            if target < effective {
                let amount = effective - target;
                self.stats.preemptions += 1;
                self.push_event(now, epoch, i, LedgerEventKind::Preempt, amount);
                match grace {
                    Some(g) => self.revocations.push(PendingRevocation {
                        tenant: i,
                        amount,
                        mature_epoch: epoch + g,
                    }),
                    None => {
                        self.alloc[i] -= amount;
                        self.in_use -= amount;
                        self.stats.revocations += 1;
                        self.push_event(now, epoch, i, LedgerEventKind::Revoke, amount);
                    }
                }
            }
        }

        // 4b. Grants, in the policy's service order, limited to budget
        // actually free right now — deferred cuts release their budget
        // only when the matching Revoke matures.
        let order = service_order(self.policy, requests);
        for i in order {
            if targets[i] > self.alloc[i] {
                let free = self.budget.saturating_sub(self.in_use);
                let give = (targets[i] - self.alloc[i]).min(free);
                if give > 0 {
                    self.alloc[i] += give;
                    self.in_use += give;
                    self.stats.grants += 1;
                    self.push_event(now, epoch, i, LedgerEventKind::Grant, give);
                }
            }
        }

        // 4c. Shortfall bookkeeping: Deny (nothing held) or Queue
        // (partially held) on entering the unsatisfied state; satisfied
        // tenants leave the waiting set.
        for (i, r) in requests.iter().enumerate() {
            let want = r.want as u64;
            if self.alloc[i] >= want {
                if self.waiting[i] {
                    self.waiting[i] = false;
                    self.waiting_count -= 1;
                }
            } else if !self.waiting[i] {
                self.waiting[i] = true;
                self.waiting_count += 1;
                let shortfall = want - self.alloc[i];
                if self.alloc[i] == 0 {
                    self.stats.denies += 1;
                    self.push_event(now, epoch, i, LedgerEventKind::Deny, shortfall);
                } else {
                    self.stats.queues += 1;
                    self.push_event(now, epoch, i, LedgerEventKind::Queue, shortfall);
                }
            }
        }

        // 5. Fleet pressure: oversubscription slows everyone (shared
        // network, disks, shuffle service), proportional to how far
        // aggregate demand exceeds the budget. Exactly 1.0 whenever the
        // budget covers demand, so an unconstrained fleet feeds a
        // bitwise no-op into every tenant's noise model.
        let total_want: u64 = requests.iter().map(|r| r.want as u64).sum();
        let pressure = if self.budget == u64::MAX || total_want <= self.budget {
            1.0
        } else {
            (self.budget as f64 / total_want as f64).max(0.05)
        };

        self.maybe_fold(epoch);

        requests
            .iter()
            .enumerate()
            .map(|(i, r)| TenantGrant {
                tenant: r.tenant,
                granted: self.alloc[i].min(u32::MAX as u64) as u32,
                satisfied: self.alloc[i] >= r.want as u64,
                pressure,
            })
            .collect()
    }

    /// The delta-driven barrier: `changed` is the ascending list of
    /// tenant indices whose want differs from the previous barrier's.
    /// When the fleet is in a state where touching only those tenants is
    /// *provably* identical to the full pass — no tenant waiting, no
    /// pending revocation, every changed tenant seen before, and the new
    /// aggregate demand within budget — the arbiter serves just the
    /// deltas and returns the full grant vector. Any condition failing
    /// returns `None` and the caller falls back to [`Self::arbitrate`].
    ///
    /// Why the license suffices: after any barrier with nobody waiting,
    /// every tenant holds exactly its want (step 4c put non-waiting
    /// tenants at `alloc >= want`, and steps 2/4a cut `alloc > want` down
    /// to the target, which equals the want whenever the budget covers
    /// aggregate demand). So unchanged tenants are fixed points of the
    /// full pass: no release (want == alloc), target == want == alloc so
    /// no preempt and no grant, and no 4c entry. Changed tenants see the
    /// same single Release or Grant the full pass would emit, in the same
    /// ledger order (releases iterate ascending ids = the dense step-2
    /// loop restricted to changed; grants follow the policy's service
    /// order, and a sorted subset of a sorted sequence preserves relative
    /// order). With demand within budget the dense pressure is the
    /// literal `1.0`, reproduced here bit for bit.
    pub fn arbitrate_sparse(
        &mut self,
        epoch: u64,
        now: SimTime,
        requests: &[ResourceRequest],
        changed: &[usize],
    ) -> Option<Vec<TenantGrant>> {
        debug_assert!(
            requests
                .iter()
                .enumerate()
                .all(|(i, r)| r.tenant as usize == i),
            "requests must be dense and id-ordered"
        );
        debug_assert!(
            changed.windows(2).all(|w| w[0] < w[1]),
            "changed indices must be strictly ascending"
        );

        // License: the sparse pass must be bit-identical to the dense
        // one. Any tenant the fleet has never presented (alloc too
        // short), any queued shortfall, any pending cut, or a first-ever
        // want for a changed tenant forces the full pass.
        if requests.len() != self.alloc.len()
            || self.waiting_count != 0
            || !self.revocations.is_empty()
            || changed.iter().any(|&i| self.last_want[i].is_none())
        {
            return None;
        }
        // New aggregate demand must fit the budget, else targets diverge
        // from wants and the full policy pass is required. Nobody is
        // waiting, so in_use == Σ want_prev; apply the changed deltas.
        if self.budget != u64::MAX {
            let drop_total: u64 = changed.iter().map(|&i| self.alloc[i]).sum();
            let add_total: u64 = changed.iter().map(|&i| requests[i].want as u64).sum();
            if self.in_use - drop_total + add_total > self.budget {
                return None;
            }
        }

        // Storm detection — same count the dense pass would compute,
        // because `changed` is exactly the set of tenants whose want
        // differs from `last_want` (all of which are `Some` here).
        if self.coalesce_threshold > 0 && changed.len() >= self.coalesce_threshold {
            self.stats.coalesced_rounds += 1;
            if self.obs.is_enabled() {
                self.obs.instant(
                    now,
                    "arbiter.coalesce",
                    &[("requests", changed.len() as f64)],
                );
                self.obs.add(now, "arbiter.coalesce", 1);
            }
        }

        // Releases first, ascending ids — the dense step-2 order.
        for &i in changed {
            let want = requests[i].want as u64;
            if want < self.alloc[i] {
                let delta = self.alloc[i] - want;
                self.alloc[i] = want;
                self.in_use -= delta;
                self.stats.releases += 1;
                self.push_event(now, epoch, i, LedgerEventKind::Release, delta);
            }
        }

        // Grants in the policy's service order restricted to the risers.
        let mut rising: Vec<usize> = changed
            .iter()
            .copied()
            .filter(|&i| (requests[i].want as u64) > self.alloc[i])
            .collect();
        match self.policy {
            ArbiterPolicy::FairShare => {}
            ArbiterPolicy::StrictPriority | ArbiterPolicy::PreemptWithGrace { .. } => {
                rising.sort_by_key(|&i| (std::cmp::Reverse(requests[i].priority), i));
            }
        }
        for i in rising {
            let give = requests[i].want as u64 - self.alloc[i];
            self.alloc[i] += give;
            self.in_use += give;
            self.stats.grants += 1;
            self.push_event(now, epoch, i, LedgerEventKind::Grant, give);
        }

        for &i in changed {
            self.last_want[i] = Some(requests[i].want);
        }

        self.maybe_fold(epoch);

        // Demand fits the budget, so the dense pass's pressure is the
        // literal 1.0 — reproduce it exactly.
        Some(
            requests
                .iter()
                .enumerate()
                .map(|(i, r)| TenantGrant {
                    tenant: r.tenant,
                    granted: self.alloc[i].min(u32::MAX as u64) as u32,
                    satisfied: self.alloc[i] >= r.want as u64,
                    pressure: 1.0,
                })
                .collect(),
        )
    }

    /// Fold the ledger tail into the checkpoint once it exceeds the
    /// configured capacity. The tail is conservation-checked *before*
    /// folding, so a checkpoint never hides a corrupt prefix.
    fn maybe_fold(&mut self, epoch: u64) {
        let Some(capacity) = self.checkpoint_capacity else {
            return;
        };
        if self.ledger.len() <= capacity {
            return;
        }
        let base_in_use = self.checkpoint.map(|c| c.in_use).unwrap_or(0);
        check_ledger_conservation_from(&self.ledger, self.base_seq, base_in_use)
            .expect("ledger conservation must hold before folding");
        self.base_seq += self.ledger.len() as u64;
        self.checkpoint = Some(LedgerCheckpoint {
            epoch,
            base_seq: self.base_seq,
            in_use: self.in_use,
            budget: self.budget,
        });
        self.ledger.clear();
    }
}

/// Max-min fair allocation (water-filling) with remainders to lower ids.
fn fair_share(wants: &[u64], budget: u64) -> Vec<u64> {
    let mut target = vec![0u64; wants.len()];
    let mut remaining = budget;
    loop {
        let unsat: Vec<usize> = (0..wants.len()).filter(|&i| target[i] < wants[i]).collect();
        if unsat.is_empty() || remaining == 0 {
            break;
        }
        let share = remaining / unsat.len() as u64;
        if share == 0 {
            // Fewer spare executors than unsatisfied tenants: one each,
            // lowest ids first.
            for &i in unsat.iter().take(remaining as usize) {
                target[i] += 1;
            }
            break;
        }
        let mut used = 0;
        for &i in &unsat {
            let give = share.min(wants[i] - target[i]);
            target[i] += give;
            used += give;
        }
        remaining -= used;
        if used == 0 {
            break;
        }
    }
    target
}

/// Greedy allocation in (priority desc, id asc) order.
fn strict_priority(requests: &[ResourceRequest], wants: &[u64], budget: u64) -> Vec<u64> {
    let mut target = vec![0u64; wants.len()];
    let mut remaining = budget;
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(requests[i].priority), i));
    for i in order {
        let give = wants[i].min(remaining);
        target[i] = give;
        remaining -= give;
    }
    target
}

/// The order grants are handed out in at a barrier.
fn service_order(policy: ArbiterPolicy, requests: &[ResourceRequest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    match policy {
        ArbiterPolicy::FairShare => {}
        ArbiterPolicy::StrictPriority | ArbiterPolicy::PreemptWithGrace { .. } => {
            order.sort_by_key(|&i| (std::cmp::Reverse(requests[i].priority), i));
        }
    }
    order
}

/// Replay a ledger's `in_use` trajectory from zero and check every entry
/// against the conservation invariant (`in_use` after each entry equals
/// the running sum of deltas and never exceeds the budget). Returns the
/// final in-use total.
pub fn check_ledger_conservation(ledger: &[LedgerEvent]) -> Result<u64, String> {
    check_ledger_conservation_from(ledger, 0, 0)
}

/// [`check_ledger_conservation`] for a ledger *tail*: entries must carry
/// dense sequence numbers starting at `base_seq`, and `in_use` replays
/// from `base_in_use` (a [`LedgerCheckpoint`]'s snapshot) instead of
/// zero. Returns the final in-use total.
pub fn check_ledger_conservation_from(
    ledger: &[LedgerEvent],
    base_seq: u64,
    base_in_use: u64,
) -> Result<u64, String> {
    let mut in_use: i64 = base_in_use as i64;
    for (i, e) in ledger.iter().enumerate() {
        if e.seq != base_seq + i as u64 {
            return Err(format!(
                "entry {i}: seq {} is not dense from base {base_seq}",
                e.seq
            ));
        }
        in_use += e.kind.in_use_delta(e.amount);
        if in_use < 0 {
            return Err(format!("entry {i}: in-use went negative ({in_use})"));
        }
        if e.in_use != in_use as u64 {
            return Err(format!(
                "entry {i}: recorded in_use {} != replayed {}",
                e.in_use, in_use
            ));
        }
        if e.in_use > e.budget {
            return Err(format!(
                "entry {i}: in_use {} exceeds budget {}",
                e.in_use, e.budget
            ));
        }
    }
    Ok(in_use as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant: u32, want: u32, priority: u32) -> ResourceRequest {
        ResourceRequest {
            tenant,
            priority,
            want,
        }
    }

    fn run_epochs(
        arb: &mut ExecutorArbiter,
        from: u64,
        rounds: u64,
        requests: &[ResourceRequest],
    ) -> Vec<TenantGrant> {
        let mut last = Vec::new();
        for e in from..from + rounds {
            last = arb.arbitrate(e, SimTime::from_secs_f64(e as f64), requests);
        }
        last
    }

    #[test]
    fn unlimited_budget_grants_everything_immediately() {
        let mut arb = ExecutorArbiter::new(None, ArbiterPolicy::FairShare, 0);
        let grants = arb.arbitrate(0, SimTime::ZERO, &[req(0, 14, 1), req(1, 99, 1)]);
        assert!(grants.iter().all(|g| g.satisfied));
        assert_eq!(grants[1].granted, 99);
        assert_eq!(grants[0].pressure, 1.0);
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn fair_share_is_starvation_free_under_a_hog() {
        // Golden scenario: budget 32, one hog wanting 100, three tenants
        // wanting 8. Max-min: everyone small is fully served, the hog
        // gets the rest — nobody starves.
        let mut arb = ExecutorArbiter::new(Some(32), ArbiterPolicy::FairShare, 0);
        let reqs = [req(0, 100, 1), req(1, 8, 1), req(2, 8, 1), req(3, 8, 1)];
        let grants = run_epochs(&mut arb, 0, 3, &reqs);
        assert_eq!(grants[1].granted, 8);
        assert_eq!(grants[2].granted, 8);
        assert_eq!(grants[3].granted, 8);
        assert_eq!(grants[0].granted, 8, "hog gets the remainder, not the pool");
        assert!(!grants[0].satisfied);
        assert!(grants[1].satisfied);
        // Oversubscribed: pressure below 1, shared by everyone.
        assert!(grants[0].pressure < 1.0);
        assert_eq!(grants[0].pressure, grants[1].pressure);
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn fair_share_remainders_go_to_lower_ids() {
        let mut arb = ExecutorArbiter::new(Some(10), ArbiterPolicy::FairShare, 0);
        let reqs = [req(0, 9, 1), req(1, 9, 1), req(2, 9, 1)];
        let grants = arb.arbitrate(0, SimTime::ZERO, &reqs);
        assert_eq!(
            grants.iter().map(|g| g.granted).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn strict_priority_preempts_immediately_in_order() {
        // Golden scenario: low-priority incumbent holds the pool; a
        // high-priority arrival takes what it needs the same barrier,
        // and the *lowest*-priority victim is cut first.
        let mut arb = ExecutorArbiter::new(Some(32), ArbiterPolicy::StrictPriority, 0);
        run_epochs(&mut arb, 0, 2, &[req(0, 20, 1), req(1, 12, 2)]);
        assert_eq!(arb.allocation(0), 20);
        assert_eq!(arb.allocation(1), 12);
        // Tenant 2 arrives with top priority wanting 16: tenant 0 (the
        // lowest priority) is preempted down to 4; tenant 1 untouched.
        let grants = arb.arbitrate(
            2,
            SimTime::from_secs_f64(2.0),
            &[req(0, 20, 1), req(1, 12, 2), req(2, 16, 9)],
        );
        assert_eq!(grants[2].granted, 16);
        assert_eq!(grants[1].granted, 12);
        assert_eq!(grants[0].granted, 4);
        // The cut is enforced within the same barrier: Preempt + Revoke.
        let kinds: Vec<_> = arb
            .ledger()
            .iter()
            .filter(|e| e.epoch == 2 && e.tenant == 0)
            .map(|e| e.kind)
            .collect();
        // Decision and enforcement land back to back; the victim's
        // still-outstanding shortfall is then queued.
        assert_eq!(
            kinds,
            vec![
                LedgerEventKind::Preempt,
                LedgerEventKind::Revoke,
                LedgerEventKind::Queue,
            ]
        );
        assert_eq!(arb.pending_revocations(), 0);
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn grace_defers_the_cut_exactly_grace_epochs() {
        let grace = 3u64;
        let mut arb = ExecutorArbiter::new(
            Some(32),
            ArbiterPolicy::PreemptWithGrace {
                grace_epochs: grace as u32,
            },
            0,
        );
        run_epochs(&mut arb, 0, 2, &[req(0, 32, 1)]);
        assert_eq!(arb.allocation(0), 32);
        // A high-priority tenant arrives at epoch 2 wanting 16.
        let reqs = [req(0, 32, 1), req(1, 16, 9)];
        for e in 2..2 + grace {
            let grants = arb.arbitrate(e, SimTime::from_secs_f64(e as f64), &reqs);
            // During grace the victim keeps its executors and the
            // beneficiary holds nothing (the budget is fully allocated).
            assert_eq!(grants[0].granted, 32, "epoch {e}");
            assert_eq!(grants[1].granted, 0, "epoch {e}");
        }
        // Exactly grace barriers after the decision the cut matures and
        // the freed executors flow to the beneficiary in the same
        // barrier.
        let grants = arb.arbitrate(2 + grace, SimTime::from_secs_f64((2 + grace) as f64), &reqs);
        assert_eq!(grants[0].granted, 16);
        assert_eq!(grants[1].granted, 16);
        let preempt = arb
            .ledger()
            .iter()
            .find(|e| e.kind == LedgerEventKind::Preempt)
            .unwrap();
        let revoke = arb
            .ledger()
            .iter()
            .find(|e| e.kind == LedgerEventKind::Revoke)
            .unwrap();
        assert_eq!(preempt.epoch, 2);
        assert_eq!(revoke.epoch, 2 + grace);
        assert_eq!(revoke.epoch - preempt.epoch, grace);
        // No duplicate decision was recorded while the first matured.
        assert_eq!(arb.stats().preemptions, 1);
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn voluntary_release_shrinks_a_pending_revocation() {
        let mut arb = ExecutorArbiter::new(
            Some(32),
            ArbiterPolicy::PreemptWithGrace { grace_epochs: 4 },
            0,
        );
        run_epochs(&mut arb, 0, 1, &[req(0, 32, 1)]);
        arb.arbitrate(
            1,
            SimTime::from_secs_f64(1.0),
            &[req(0, 32, 1), req(1, 16, 9)],
        );
        assert_eq!(arb.pending_revocations(), 1);
        // The victim's controller scales itself down to 10 before the
        // grace expires: the release covers the whole pending cut.
        arb.arbitrate(
            2,
            SimTime::from_secs_f64(2.0),
            &[req(0, 10, 1), req(1, 16, 9)],
        );
        assert_eq!(arb.pending_revocations(), 0, "release absorbed the cut");
        let grants = run_epochs(&mut arb, 3, 4, &[req(0, 10, 1), req(1, 16, 9)]);
        assert_eq!(grants[0].granted, 10, "no revoke fires after absorption");
        assert_eq!(grants[1].granted, 16);
        assert_eq!(arb.stats().revocations, 0);
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn storm_coalescing_counts_simultaneous_demand_changes() {
        // Golden scenario: K=4; five tenants all reconfigure at the same
        // barrier — one coalesced round, one allocation pass (one epoch
        // in the ledger), not five.
        let mut arb = ExecutorArbiter::new(Some(64), ArbiterPolicy::FairShare, 4);
        let calm: Vec<_> = (0..5).map(|i| req(i, 8, 1)).collect();
        run_epochs(&mut arb, 0, 2, &calm);
        assert_eq!(arb.stats().coalesced_rounds, 0);
        let storm: Vec<_> = (0..5).map(|i| req(i, 12, 1)).collect();
        arb.arbitrate(2, SimTime::from_secs_f64(2.0), &storm);
        assert_eq!(arb.stats().coalesced_rounds, 1);
        let storm_epochs: std::collections::BTreeSet<u64> = arb
            .ledger()
            .iter()
            .filter(|e| e.kind == LedgerEventKind::Grant && e.epoch >= 2)
            .map(|e| e.epoch)
            .collect();
        assert_eq!(storm_epochs.len(), 1, "one pass served the whole storm");
        // A single tenant changing demand is below K: not a storm.
        let mut one = storm.clone();
        one[3].want = 16;
        arb.arbitrate(3, SimTime::from_secs_f64(3.0), &one);
        assert_eq!(arb.stats().coalesced_rounds, 1);
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    #[test]
    fn queued_requests_resolve_once_demand_fits() {
        let mut arb = ExecutorArbiter::new(Some(18), ArbiterPolicy::FairShare, 0);
        let contended = [req(0, 16, 1), req(1, 16, 1)];
        let grants = run_epochs(&mut arb, 0, 3, &contended);
        assert!(grants.iter().all(|g| !g.satisfied));
        assert!(arb.stats().queues + arb.stats().denies > 0);
        // Tenant 0 finishes its burst; tenant 1's queued request must be
        // fully granted at the very next barrier.
        let relaxed = [req(0, 2, 1), req(1, 16, 1)];
        let grants = arb.arbitrate(3, SimTime::from_secs_f64(3.0), &relaxed);
        assert!(
            grants[1].satisfied,
            "queued demand resolves when budget frees"
        );
        assert_eq!(grants[1].pressure, 1.0, "fleet no longer oversubscribed");
        check_ledger_conservation(arb.ledger()).unwrap();
    }

    /// Drive a dense and a sparse arbiter through the same want
    /// schedule; the sparse one uses `arbitrate_sparse` whenever
    /// licensed (computing `changed` from its own last-want mirror) and
    /// falls back to `arbitrate` otherwise. Returns both final states
    /// rendered as comparable strings.
    fn dense_vs_sparse(
        budget: Option<u32>,
        policy: ArbiterPolicy,
        threshold: usize,
        schedule: &[Vec<ResourceRequest>],
    ) -> (String, String, u64) {
        let render = |arb: &ExecutorArbiter, grants: &[Vec<TenantGrant>]| {
            let mut out = String::new();
            for e in arb.ledger() {
                out.push_str(&e.to_json_value().to_string());
                out.push('\n');
            }
            out.push_str(&format!("{:?}\n", arb.stats()));
            for round in grants {
                for g in round {
                    out.push_str(&format!(
                        "{}:{}:{}:{} ",
                        g.tenant,
                        g.granted,
                        g.satisfied,
                        g.pressure.to_bits()
                    ));
                }
                out.push('\n');
            }
            out
        };

        let mut dense = ExecutorArbiter::new(budget, policy, threshold);
        let mut dense_grants = Vec::new();
        for (e, reqs) in schedule.iter().enumerate() {
            let now = SimTime::from_secs_f64(e as f64);
            dense_grants.push(dense.arbitrate(e as u64, now, reqs));
        }

        let mut sparse = ExecutorArbiter::new(budget, policy, threshold);
        let mut sparse_grants = Vec::new();
        let mut mirror: Vec<u32> = Vec::new();
        let mut sparse_rounds = 0u64;
        for (e, reqs) in schedule.iter().enumerate() {
            let now = SimTime::from_secs_f64(e as f64);
            let grants = if mirror.len() == reqs.len() {
                let changed: Vec<usize> = reqs
                    .iter()
                    .enumerate()
                    .filter(|(i, r)| r.want != mirror[*i])
                    .map(|(i, _)| i)
                    .collect();
                match sparse.arbitrate_sparse(e as u64, now, reqs, &changed) {
                    Some(g) => {
                        sparse_rounds += 1;
                        g
                    }
                    None => sparse.arbitrate(e as u64, now, reqs),
                }
            } else {
                sparse.arbitrate(e as u64, now, reqs)
            };
            mirror = reqs.iter().map(|r| r.want).collect();
            sparse_grants.push(grants);
        }

        (
            render(&dense, &dense_grants),
            render(&sparse, &sparse_grants),
            sparse_rounds,
        )
    }

    #[test]
    fn sparse_barrier_matches_dense_under_fair_share() {
        let mut schedule = vec![vec![req(0, 8, 1), req(1, 12, 2), req(2, 4, 1)]];
        // Quiet rounds, single-tenant wiggles, and a storm — all within
        // the budget, so every round after the first is licensed.
        for e in 1..12u32 {
            let mut reqs = schedule[0].clone();
            if e % 3 == 0 {
                reqs[1].want = 12 + e;
            }
            if e % 4 == 0 {
                reqs[0].want = 6;
                reqs[2].want = 9;
            }
            schedule.push(reqs);
        }
        let (dense, sparse, sparse_rounds) =
            dense_vs_sparse(Some(64), ArbiterPolicy::FairShare, 2, &schedule);
        assert_eq!(dense, sparse);
        assert!(sparse_rounds > 0, "the fast path never engaged");
    }

    #[test]
    fn sparse_barrier_matches_dense_under_priorities() {
        let mut schedule = Vec::new();
        for e in 0..10u32 {
            schedule.push(vec![
                req(0, 10 + (e % 4), 1),
                req(1, 6, 5),
                req(2, if e >= 5 { 14 } else { 3 }, 3),
            ]);
        }
        let (dense, sparse, sparse_rounds) =
            dense_vs_sparse(Some(40), ArbiterPolicy::StrictPriority, 0, &schedule);
        assert_eq!(dense, sparse);
        assert!(sparse_rounds > 0);
    }

    #[test]
    fn sparse_barrier_declines_when_not_licensed() {
        // Oversubscribed fleet: tenants wait, so the license must fail.
        let mut arb = ExecutorArbiter::new(Some(10), ArbiterPolicy::FairShare, 0);
        let reqs = [req(0, 8, 1), req(1, 8, 1)];
        arb.arbitrate(0, SimTime::ZERO, &reqs);
        assert!(arb
            .arbitrate_sparse(1, SimTime::from_secs_f64(1.0), &reqs, &[])
            .is_none());

        // Unseen tenant (request vector grew): decline.
        let mut arb = ExecutorArbiter::new(Some(64), ArbiterPolicy::FairShare, 0);
        arb.arbitrate(0, SimTime::ZERO, &[req(0, 4, 1)]);
        assert!(arb
            .arbitrate_sparse(
                1,
                SimTime::from_secs_f64(1.0),
                &[req(0, 4, 1), req(1, 4, 1)],
                &[1]
            )
            .is_none());

        // A change that would blow the budget: decline (the dense pass
        // must water-fill).
        let mut arb = ExecutorArbiter::new(Some(20), ArbiterPolicy::FairShare, 0);
        arb.arbitrate(0, SimTime::ZERO, &[req(0, 8, 1), req(1, 8, 1)]);
        assert!(arb
            .arbitrate_sparse(
                1,
                SimTime::from_secs_f64(1.0),
                &[req(0, 18, 1), req(1, 8, 1)],
                &[0]
            )
            .is_none());

        // Pending revocation under the grace policy: decline.
        let mut arb = ExecutorArbiter::new(
            Some(32),
            ArbiterPolicy::PreemptWithGrace { grace_epochs: 4 },
            0,
        );
        arb.arbitrate(0, SimTime::ZERO, &[req(0, 32, 1)]);
        arb.arbitrate(
            1,
            SimTime::from_secs_f64(1.0),
            &[req(0, 32, 1), req(1, 16, 9)],
        );
        assert!(arb.pending_revocations() > 0);
        assert!(arb
            .arbitrate_sparse(
                2,
                SimTime::from_secs_f64(2.0),
                &[req(0, 32, 1), req(1, 16, 9)],
                &[]
            )
            .is_none());
    }

    #[test]
    fn checkpoint_folds_preserve_conservation_and_seq_continuity() {
        let mut arb = ExecutorArbiter::new(Some(64), ArbiterPolicy::FairShare, 0);
        arb.enable_ledger_checkpointing(8);
        // Demand flaps every barrier so the ledger grows steadily.
        for e in 0..40u64 {
            let want = if e % 2 == 0 { 10 } else { 20 };
            let reqs = [req(0, want, 1), req(1, 30 - want, 1)];
            arb.arbitrate(e, SimTime::from_secs_f64(e as f64), &reqs);
            arb.check_conservation().unwrap();
        }
        let cp = *arb.checkpoint().expect("a fold must have happened");
        assert!(arb.ledger().len() <= 8, "tail stays bounded");
        assert_eq!(arb.base_seq(), cp.base_seq);
        assert!(cp.base_seq > 0);
        // The tail continues the folded sequence densely.
        if let Some(first) = arb.ledger().first() {
            assert_eq!(first.seq, cp.base_seq);
        }
        // Replaying the tail from the checkpoint lands on the live total.
        assert_eq!(arb.check_conservation().unwrap(), arb.in_use());
    }

    #[test]
    fn checkpointing_changes_no_decisions() {
        let run = |capacity: Option<usize>| {
            let mut arb = ExecutorArbiter::new(Some(24), ArbiterPolicy::StrictPriority, 3);
            if let Some(cap) = capacity {
                arb.enable_ledger_checkpointing(cap);
            }
            let mut out = String::new();
            for e in 0..30u64 {
                let reqs = [
                    req(0, ((e * 7) % 30) as u32, 1),
                    req(1, ((e * 13) % 30) as u32, 2),
                    req(2, ((e * 3) % 30) as u32, 2),
                ];
                for g in arb.arbitrate(e, SimTime::from_secs_f64(e as f64), &reqs) {
                    out.push_str(&format!("{e}:{}={} ", g.tenant, g.granted));
                }
            }
            out.push_str(&format!("{:?}", arb.stats()));
            out
        };
        assert_eq!(run(None), run(Some(6)));
    }

    #[test]
    fn arbitration_is_deterministic() {
        let run = || {
            let mut arb = ExecutorArbiter::new(Some(24), ArbiterPolicy::StrictPriority, 3);
            let mut out = String::new();
            for e in 0..20u64 {
                let reqs = [
                    req(0, ((e * 7) % 30) as u32, 1),
                    req(1, ((e * 13) % 30) as u32, 2),
                    req(2, ((e * 3) % 30) as u32, 2),
                ];
                for g in arb.arbitrate(e, SimTime::from_secs_f64(e as f64), &reqs) {
                    out.push_str(&format!("{e}:{}={} ", g.tenant, g.granted));
                }
            }
            for ev in arb.ledger() {
                out.push_str(&ev.to_json_value().to_string());
            }
            out
        };
        assert_eq!(run(), run());
    }
}
