//! The batch divider and queue.
//!
//! Spark Streaming "receives real-time input data streams and divides the
//! data into multiple batches" (Fig. 1). At every interval boundary the
//! divider cuts a batch from whatever the receivers have ingested; batches
//! wait FIFO in the batch queue for the (single, by default) job slot. The
//! time a batch spends in the queue *is* Spark's scheduling delay — when
//! processing time exceeds the interval, this queue is exactly where the
//! instability of §3.1 materializes.

use nostop_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A batch cut by the divider, waiting for or undergoing processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// Sequence number.
    pub id: u64,
    /// Records in the batch.
    pub records: u64,
    /// When the divider cut it (submission time).
    pub cut_at: SimTime,
    /// The interval this batch was cut with.
    pub interval: SimDuration,
    /// Actual time the receivers ingested for this batch (differs from
    /// `interval` for the first cut after an interval change).
    pub ingest_window: SimDuration,
    /// Records that *arrived* at the broker during the ingest window
    /// (equals `records` except during congestion, when consumption is
    /// capped and the remainder stays in the broker).
    pub arrived: u64,
}

impl Batch {
    /// Observed ingest rate for this batch, records/second — measured over
    /// the *actual* ingest window so interval transitions do not distort
    /// the rate samples NoStop's reset rule watches.
    pub fn input_rate(&self) -> f64 {
        let secs = self.ingest_window.as_secs_f64();
        let secs = if secs > 0.0 {
            secs
        } else {
            self.interval.as_secs_f64()
        };
        if secs > 0.0 {
            self.arrived as f64 / secs
        } else {
            0.0
        }
    }
}

/// FIFO batch queue.
#[derive(Debug, Clone, Default)]
pub struct BatchQueue {
    queue: VecDeque<Batch>,
    next_id: u64,
}

impl BatchQueue {
    /// An empty queue.
    pub fn new() -> Self {
        BatchQueue::default()
    }

    /// Cut a new batch and enqueue it. Returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        records: u64,
        arrived: u64,
        cut_at: SimTime,
        interval: SimDuration,
        ingest_window: SimDuration,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Batch {
            id,
            records,
            arrived,
            cut_at,
            interval,
            ingest_window,
        });
        id
    }

    /// Dequeue the oldest batch.
    pub fn pop(&mut self) -> Option<Batch> {
        self.queue.pop_front()
    }

    /// Batches waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no batches wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Records waiting across all queued batches.
    pub fn queued_records(&self) -> u64 {
        self.queue.iter().map(|b| b.records).sum()
    }

    /// Total batches ever cut.
    pub fn total_cut(&self) -> u64 {
        self.next_id
    }

    /// Reserve `n` ids without enqueueing anything — the fleet fast path
    /// accounts for batches it replays in closed form, so a later dense cut
    /// numbers exactly as if every skipped batch had been cut normally.
    pub(crate) fn skip_ids(&mut self, n: u64) {
        self.next_id += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_ids() {
        let mut q = BatchQueue::new();
        let i = SimDuration::from_secs(10);
        assert_eq!(q.push(100, 100, SimTime::from_secs_f64(10.0), i, i), 0);
        assert_eq!(q.push(200, 200, SimTime::from_secs_f64(20.0), i, i), 1);
        assert_eq!(q.pop().unwrap().id, 0);
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.pop().is_none());
        assert_eq!(q.total_cut(), 2);
    }

    #[test]
    fn rate_is_records_over_interval() {
        let b = Batch {
            id: 0,
            records: 50_000,
            arrived: 50_000,
            cut_at: SimTime::ZERO,
            interval: SimDuration::from_secs(10),
            ingest_window: SimDuration::from_secs(10),
        };
        assert_eq!(b.input_rate(), 5_000.0);
        // A shortened ingest window (interval just changed) must not
        // deflate the rate estimate.
        let b2 = Batch {
            ingest_window: SimDuration::from_secs(5),
            records: 25_000,
            arrived: 25_000,
            ..b
        };
        assert_eq!(b2.input_rate(), 5_000.0);
        // Congestion: consumption capped below arrivals — the rate
        // estimate follows the *arrivals*.
        let b3 = Batch {
            records: 10_000,
            ..b
        };
        assert_eq!(b3.input_rate(), 5_000.0);
    }

    #[test]
    fn queued_records_accumulate() {
        let mut q = BatchQueue::new();
        let i = SimDuration::from_secs(5);
        q.push(10, 10, SimTime::ZERO, i, i);
        q.push(20, 20, SimTime::ZERO, i, i);
        assert_eq!(q.queued_records(), 30);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.queued_records(), 20);
    }
}
