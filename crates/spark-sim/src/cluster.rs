//! Cluster topology: nodes, speeds, disks.
//!
//! Table 2 of the paper lists the evaluation cluster — one master and four
//! workers with three different CPU generations and a mix of SSD and HDD
//! storage. Heterogeneity enters the simulation as a per-node *speed
//! factor* (task CPU time divides by it) and a *disk class* (shuffle and
//! sink I/O cost multiplies by it). NoStop itself never sees any of this:
//! §1 claims it "tackles hardware heterogeneity in a transparent manner",
//! and the black-box boundary makes that claim structural.

/// Storage class of a node. HDDs pay more for shuffle and sink I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskClass {
    /// Solid-state storage.
    Ssd,
    /// Spinning disk ("HHD" in the paper's Table 2).
    Hdd,
}

impl DiskClass {
    /// Sequential throughput in MB/s used to convert shuffle/sink bytes to
    /// time.
    pub fn throughput_mb_s(self) -> f64 {
        match self {
            DiskClass::Ssd => 500.0,
            DiskClass::Hdd => 120.0,
        }
    }
}

/// One cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node index (0-based; matches Table 2's "Node ID" minus one).
    pub id: usize,
    /// Human-readable CPU name.
    pub cpu: String,
    /// Physical cores available for executors.
    pub cores: u32,
    /// Relative single-core speed (1.0 = the i5-9400 baseline).
    pub speed: f64,
    /// Storage class.
    pub disk: DiskClass,
    /// Masters run the driver, not executors.
    pub is_master: bool,
}

/// A cluster of nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// All nodes, masters included.
    pub nodes: Vec<NodeSpec>,
}

impl Cluster {
    /// The paper's Table 2 cluster: five nodes, one master.
    ///
    /// Speed factors approximate single-core performance relative to the
    /// i5-9400 @ 2.9 GHz: the Xeon Bronze 3204 runs at 1.9 GHz with no
    /// turbo (≈ 0.65×), the i5-10400 is a slightly newer core (≈ 1.05×).
    pub fn paper_heterogeneous() -> Self {
        Cluster {
            nodes: vec![
                NodeSpec {
                    id: 0,
                    cpu: "i5-9400 2.9GHz".into(),
                    cores: 6,
                    speed: 1.0,
                    disk: DiskClass::Ssd,
                    is_master: true,
                },
                NodeSpec {
                    id: 1,
                    cpu: "i5-9400 2.9GHz".into(),
                    cores: 6,
                    speed: 1.0,
                    disk: DiskClass::Ssd,
                    is_master: false,
                },
                NodeSpec {
                    id: 2,
                    cpu: "Xeon Bronze 3204 1.9GHz".into(),
                    cores: 6,
                    speed: 0.65,
                    disk: DiskClass::Hdd,
                    is_master: false,
                },
                NodeSpec {
                    id: 3,
                    cpu: "i5-10400 2.9GHz".into(),
                    cores: 6,
                    speed: 1.05,
                    disk: DiskClass::Hdd,
                    is_master: false,
                },
                NodeSpec {
                    id: 4,
                    cpu: "i5-10400 2.9GHz".into(),
                    cores: 6,
                    speed: 1.05,
                    disk: DiskClass::Hdd,
                    is_master: false,
                },
            ],
        }
    }

    /// The ten-node local testbed used for the parameter-effect experiments
    /// of §3.2 (Figs. 2 and 3): one master plus nine homogeneous workers.
    pub fn testbed_ten_nodes() -> Self {
        let mut nodes = vec![NodeSpec {
            id: 0,
            cpu: "testbed".into(),
            cores: 4,
            speed: 1.0,
            disk: DiskClass::Ssd,
            is_master: true,
        }];
        for id in 1..10 {
            nodes.push(NodeSpec {
                id,
                cpu: "testbed".into(),
                cores: 4,
                speed: 1.0,
                disk: DiskClass::Ssd,
                is_master: false,
            });
        }
        Cluster { nodes }
    }

    /// A homogeneous cluster: one master plus `workers` workers with
    /// `cores` cores each.
    pub fn homogeneous(workers: usize, cores: u32, speed: f64, disk: DiskClass) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(cores >= 1 && speed > 0.0, "invalid node spec");
        let mut nodes = vec![NodeSpec {
            id: 0,
            cpu: "generic".into(),
            cores,
            speed,
            disk,
            is_master: true,
        }];
        for id in 1..=workers {
            nodes.push(NodeSpec {
                id,
                cpu: "generic".into(),
                cores,
                speed,
                disk,
                is_master: false,
            });
        }
        Cluster { nodes }
    }

    /// Worker nodes only (executors never run on the master).
    pub fn workers(&self) -> impl Iterator<Item = &NodeSpec> {
        self.nodes.iter().filter(|n| !n.is_master)
    }

    /// Total executor slots (sum of worker cores).
    pub fn total_worker_cores(&self) -> u32 {
        self.workers().map(|n| n.cores).sum()
    }

    /// Node by id.
    pub fn node(&self, id: usize) -> &NodeSpec {
        &self.nodes[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_encoded_verbatim() {
        let c = Cluster::paper_heterogeneous();
        assert_eq!(c.nodes.len(), 5);
        assert_eq!(c.workers().count(), 4);
        assert!(c.nodes[0].is_master);
        // CPU roster matches the table.
        assert!(c.nodes[1].cpu.contains("i5-9400"));
        assert!(c.nodes[2].cpu.contains("Xeon Bronze 3204"));
        assert!(c.nodes[3].cpu.contains("i5-10400"));
        // Disk classes: nodes 1-2 SSD, 3-5 HDD (paper's "HHD").
        assert_eq!(c.nodes[0].disk, DiskClass::Ssd);
        assert_eq!(c.nodes[1].disk, DiskClass::Ssd);
        assert_eq!(c.nodes[2].disk, DiskClass::Hdd);
        assert_eq!(c.nodes[4].disk, DiskClass::Hdd);
        // The Xeon is the slow node.
        let min_speed = c.workers().map(|n| n.speed).fold(f64::INFINITY, f64::min);
        assert_eq!(min_speed, c.nodes[2].speed);
    }

    #[test]
    fn paper_cluster_supports_twenty_executors() {
        // §6.2.1 tunes executors up to 20 with one core each; the four
        // workers must offer at least that many cores.
        let c = Cluster::paper_heterogeneous();
        assert!(c.total_worker_cores() >= 20, "{}", c.total_worker_cores());
    }

    #[test]
    fn testbed_has_ten_nodes() {
        let c = Cluster::testbed_ten_nodes();
        assert_eq!(c.nodes.len(), 10);
        assert_eq!(c.workers().count(), 9);
        assert_eq!(c.total_worker_cores(), 36);
    }

    #[test]
    fn homogeneous_builder() {
        let c = Cluster::homogeneous(4, 8, 1.0, DiskClass::Ssd);
        assert_eq!(c.nodes.len(), 5);
        assert_eq!(c.total_worker_cores(), 32);
        assert!(c.nodes[0].is_master && !c.nodes[1].is_master);
    }

    #[test]
    fn disk_throughput_ordering() {
        assert!(DiskClass::Ssd.throughput_mb_s() > DiskClass::Hdd.throughput_mb_s());
    }
}
