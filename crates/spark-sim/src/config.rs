//! The runtime-tunable streaming configuration.
//!
//! [`StreamConfig`] is the paper's 2-knob surface. [`ExtendedConfig`] is
//! the 8-knob surface for the high-dimensional tuner arena
//! (`ConfigSpace::extended()` in `nostop-core`): the same two live knobs
//! plus six further Spark-meaningful parameters, each mapped onto a
//! simulator mechanic. Block interval and speculation threshold drive real
//! engine machinery (`tasks_for`, the straggler-capping pass); shuffle
//! partitions, memory fraction, receiver parallelism, and locality wait
//! act through a deterministic [`CostModel`] overlay derived fresh from
//! the workload preset on every apply (never compounded), with interior
//! optima so the extra dimensions are worth searching.

use nostop_simcore::SimDuration;
use nostop_workloads::CostModel;

/// The two parameters NoStop tunes (§3.2): batch interval and executor
/// count. Both are changeable while the application runs — batch interval
/// through the paper's "system modification", executors through Spark's
/// dynamic executor allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// The batch interval: how much wall time each micro-batch spans.
    pub batch_interval: SimDuration,
    /// Target number of executors (1 core / 1 GB each, §6.2.1).
    pub num_executors: u32,
}

impl StreamConfig {
    /// A configuration from explicit values.
    pub fn new(batch_interval: SimDuration, num_executors: u32) -> Self {
        assert!(!batch_interval.is_zero(), "batch interval must be positive");
        assert!(num_executors >= 1, "need at least one executor");
        StreamConfig {
            batch_interval,
            num_executors,
        }
    }

    /// From the physical vector the controller emits:
    /// `[batch_interval_s, num_executors]`.
    pub fn from_physical(physical: &[f64]) -> Self {
        assert!(
            physical.len() >= 2,
            "physical config needs [interval_s, executors]"
        );
        StreamConfig::new(
            SimDuration::from_secs_f64(physical[0].max(0.001)),
            physical[1].round().max(1.0) as u32,
        )
    }

    /// Back to the physical vector form.
    pub fn to_physical(&self) -> Vec<f64> {
        vec![self.batch_interval.as_secs_f64(), self.num_executors as f64]
    }

    /// The paper's default starting configuration: the middle of the
    /// parameter ranges — interval 20.5 s, 10 executors (θ_initial =
    /// {10, 10} in scaled space maps close to this).
    pub fn paper_initial() -> Self {
        StreamConfig::new(SimDuration::from_millis(20_500), 10)
    }
}

/// The extended 8-knob configuration (see module docs). Field order
/// mirrors `ConfigSpace::extended()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedConfig {
    /// The paper's two knobs (batch interval, executors).
    pub stream: StreamConfig,
    /// `spark.sql.shuffle.partitions` ∈ [8, 256].
    pub shuffle_partitions: u32,
    /// `spark.memory.fraction` ∈ [0.2, 0.9].
    pub memory_fraction: f64,
    /// Parallel receiver count ∈ [1, 8].
    pub receiver_parallelism: u32,
    /// `spark.streaming.blockInterval` ∈ [50 ms, 1 s] — drives the real
    /// task-count mechanic (`tasks_for`).
    pub block_interval: SimDuration,
    /// `spark.locality.wait` ∈ [0, 10] s.
    pub locality_wait: SimDuration,
    /// `spark.speculation.multiplier` ∈ [1.1, 3.0] — drives the real
    /// straggler-capping pass in the scheduler.
    pub speculation_multiplier: f64,
}

impl ExtendedConfig {
    /// From the 8-entry physical vector `ConfigSpace::extended()` emits.
    /// Values are clamped into their knob ranges, so un-quantized vectors
    /// are tolerated.
    pub fn from_physical(physical: &[f64]) -> Self {
        assert!(
            physical.len() >= 8,
            "extended config needs 8 physical entries"
        );
        ExtendedConfig {
            stream: StreamConfig::from_physical(physical),
            shuffle_partitions: physical[2].round().clamp(8.0, 256.0) as u32,
            memory_fraction: physical[3].clamp(0.2, 0.9),
            receiver_parallelism: physical[4].round().clamp(1.0, 8.0) as u32,
            block_interval: SimDuration::from_micros(
                (physical[5].clamp(50.0, 1000.0) * 1e3).round() as u64,
            ),
            locality_wait: SimDuration::from_micros((physical[6].clamp(0.0, 10.0) * 1e6) as u64),
            speculation_multiplier: physical[7].clamp(1.1, 3.0),
        }
    }

    /// Derive the overlay cost model from the workload's base preset.
    ///
    /// Each factor is a smooth deterministic function of one knob with an
    /// interior optimum (or a saturating trade-off), mirroring the
    /// qualitative Spark behaviors:
    ///
    /// * **shuffle partitions** — too few spill (per-record cost rises
    ///   toward small `p`), too many pay DAG/scheduler bookkeeping
    ///   (stage overhead rises past ~64);
    /// * **memory fraction** — below ~0.6 execution memory starves and
    ///   spills; above ~0.75 cache/GC pressure creeps in;
    /// * **receiver parallelism** — more receivers overlap ingestion
    ///   (per-record cost falls in `1/r`) but add per-batch coordination;
    /// * **locality wait** — waiting longer converts remote reads into
    ///   local ones (per-record cost falls in `1/(1+w)`) at the price of
    ///   task-launch latency.
    pub fn derive_cost(&self, base: &CostModel) -> CostModel {
        let mut cost = base.clone();
        let p = self.shuffle_partitions as f64;
        let spill_partitions = 0.25 * (64.0 / p - 1.0).max(0.0);
        let m = self.memory_fraction;
        let spill_memory = 0.8 * (0.6 - m).max(0.0) / 0.6 + 0.5 * (m - 0.75).max(0.0);
        let r = self.receiver_parallelism as f64;
        let receive = 0.15 * (1.0 / r - 0.25);
        let w = self.locality_wait.as_secs_f64();
        let remote_read = 0.15 / (1.0 + w);
        cost.per_record_us *=
            (1.0 + spill_partitions) * (1.0 + spill_memory) * (1.0 + receive) * (1.0 + remote_read);
        cost.stage_overhead_us *= 1.0 + 0.002 * (p - 64.0).max(0.0);
        cost.batch_overhead_us *= 1.0 + 0.05 * (r - 1.0);
        cost.task_overhead_us *= 1.0 + 0.02 * w;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_round_trip() {
        let c = StreamConfig::from_physical(&[10.5, 12.4]);
        assert_eq!(c.batch_interval, SimDuration::from_millis(10_500));
        assert_eq!(c.num_executors, 12);
        assert_eq!(c.to_physical(), vec![10.5, 12.0]);
    }

    #[test]
    fn degenerate_values_clamp() {
        let c = StreamConfig::from_physical(&[0.0, 0.0]);
        assert!(!c.batch_interval.is_zero());
        assert_eq!(c.num_executors, 1);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_rejected() {
        let _ = StreamConfig::new(SimDuration::from_secs(1), 0);
    }

    #[test]
    #[should_panic(expected = "interval_s")]
    fn short_physical_vector_rejected() {
        let _ = StreamConfig::from_physical(&[1.0]);
    }

    fn extended(physical: &[f64]) -> ExtendedConfig {
        ExtendedConfig::from_physical(physical)
    }

    const MID: [f64; 8] = [15.0, 10.0, 64.0, 0.6, 4.0, 200.0, 3.0, 1.5];

    #[test]
    fn extended_physical_parses_and_clamps() {
        let e = extended(&MID);
        assert_eq!(e.stream.batch_interval, SimDuration::from_secs(15));
        assert_eq!(e.stream.num_executors, 10);
        assert_eq!(e.shuffle_partitions, 64);
        assert_eq!(e.memory_fraction, 0.6);
        assert_eq!(e.receiver_parallelism, 4);
        assert_eq!(e.block_interval, SimDuration::from_millis(200));
        assert_eq!(e.locality_wait, SimDuration::from_secs(3));
        assert_eq!(e.speculation_multiplier, 1.5);
        // Out-of-range knobs clamp instead of panicking.
        let wild = extended(&[15.0, 10.0, 9999.0, -1.0, 0.0, 5.0, 99.0, 0.0]);
        assert_eq!(wild.shuffle_partitions, 256);
        assert_eq!(wild.memory_fraction, 0.2);
        assert_eq!(wild.receiver_parallelism, 1);
        assert_eq!(wild.block_interval, SimDuration::from_millis(50));
        assert_eq!(wild.locality_wait, SimDuration::from_secs(10));
        assert_eq!(wild.speculation_multiplier, 1.1);
    }

    #[test]
    fn derived_cost_has_interior_optima() {
        use nostop_workloads::WorkloadKind;
        let base = CostModel::preset(WorkloadKind::WordCount);
        let at = |idx: usize, v: f64| {
            let mut phys = MID;
            phys[idx] = v;
            extended(&phys).derive_cost(&base)
        };
        // Shuffle partitions: both extremes cost more than the middle.
        let total = |c: &CostModel| c.per_record_us * 1e3 + c.stage_overhead_us;
        assert!(total(&at(2, 8.0)) > total(&at(2, 64.0)));
        assert!(total(&at(2, 256.0)) > total(&at(2, 64.0)));
        // Memory fraction: starved and saturated both beat the sweet spot.
        assert!(at(3, 0.2).per_record_us > at(3, 0.6).per_record_us);
        assert!(at(3, 0.9).per_record_us > at(3, 0.6).per_record_us);
        // Locality wait trades task overhead against per-record cost.
        assert!(at(6, 0.0).per_record_us > at(6, 10.0).per_record_us);
        assert!(at(6, 10.0).task_overhead_us > at(6, 0.0).task_overhead_us);
        // Overlay derives from the base, never compounds.
        let once = extended(&MID).derive_cost(&base);
        let again = extended(&MID).derive_cost(&base);
        assert_eq!(once, again);
    }
}
