//! The runtime-tunable streaming configuration.

use nostop_simcore::SimDuration;

/// The two parameters NoStop tunes (§3.2): batch interval and executor
/// count. Both are changeable while the application runs — batch interval
/// through the paper's "system modification", executors through Spark's
/// dynamic executor allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// The batch interval: how much wall time each micro-batch spans.
    pub batch_interval: SimDuration,
    /// Target number of executors (1 core / 1 GB each, §6.2.1).
    pub num_executors: u32,
}

impl StreamConfig {
    /// A configuration from explicit values.
    pub fn new(batch_interval: SimDuration, num_executors: u32) -> Self {
        assert!(!batch_interval.is_zero(), "batch interval must be positive");
        assert!(num_executors >= 1, "need at least one executor");
        StreamConfig {
            batch_interval,
            num_executors,
        }
    }

    /// From the physical vector the controller emits:
    /// `[batch_interval_s, num_executors]`.
    pub fn from_physical(physical: &[f64]) -> Self {
        assert!(
            physical.len() >= 2,
            "physical config needs [interval_s, executors]"
        );
        StreamConfig::new(
            SimDuration::from_secs_f64(physical[0].max(0.001)),
            physical[1].round().max(1.0) as u32,
        )
    }

    /// Back to the physical vector form.
    pub fn to_physical(&self) -> Vec<f64> {
        vec![self.batch_interval.as_secs_f64(), self.num_executors as f64]
    }

    /// The paper's default starting configuration: the middle of the
    /// parameter ranges — interval 20.5 s, 10 executors (θ_initial =
    /// {10, 10} in scaled space maps close to this).
    pub fn paper_initial() -> Self {
        StreamConfig::new(SimDuration::from_millis(20_500), 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_round_trip() {
        let c = StreamConfig::from_physical(&[10.5, 12.4]);
        assert_eq!(c.batch_interval, SimDuration::from_millis(10_500));
        assert_eq!(c.num_executors, 12);
        assert_eq!(c.to_physical(), vec![10.5, 12.0]);
    }

    #[test]
    fn degenerate_values_clamp() {
        let c = StreamConfig::from_physical(&[0.0, 0.0]);
        assert!(!c.batch_interval.is_zero());
        assert_eq!(c.num_executors, 1);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_rejected() {
        let _ = StreamConfig::new(SimDuration::from_secs(1), 0);
    }

    #[test]
    #[should_panic(expected = "interval_s")]
    fn short_physical_vector_rejected() {
        let _ = StreamConfig::from_physical(&[1.0]);
    }
}
